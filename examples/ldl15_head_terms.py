"""LDL1.5 in action: complex head terms and body set patterns (Section 4).

The teacher/student/class/day relation from Section 4.2.1, written with
LDL1.5 head terms and compiled down to base LDL1 automatically by the
session (``ldl15=True``).

Run:  python examples/ldl15_head_terms.py
"""

from repro import LDL
from repro.parser import parse_rules
from repro.terms.pretty import format_program
from repro.transform import compile_head_terms

FACTS = [
    ("smith", "ann", "algebra", "mon"),
    ("smith", "ann", "algebra", "wed"),
    ("smith", "bob", "geometry", "tue"),
    ("jones", "ann", "logic", "mon"),
]


def show(db: LDL, pred: str) -> None:
    for row in db.extension(pred):
        print("  ", row)


def per_teacher_sets() -> None:
    print("== (T, <S>, <D>): students and days per teacher ==")
    db = LDL("out(T, <S>, <D>) <- r(T, S, C, D).", ldl15=True)
    db.facts("r", FACTS)
    show(db, "out")


def nested_grouping() -> None:
    print("== (T, <h(S, <D>)>): per teacher, students with *their* days ==")
    db = LDL("out(T, <h(S, <D>)>) <- r(T, S, C, D).", ldl15=True)
    db.facts("r", FACTS)
    show(db, "out")
    print("  note: ann's day set under jones includes wed — days she")
    print("  takes some class, not necessarily with this teacher.")


def alternative_semantics() -> None:
    print("== same head, alternative (ii)' semantics ==")
    db = LDL(
        "out(T, <h(S, <D>)>) <- r(T, S, C, D).",
        ldl15=True,
        alternative_semantics=True,
    )
    db.facts("r", FACTS)
    show(db, "out")
    print("  now jones sees only ann's days with jones.")


def compiled_rules() -> None:
    print("== what the compiler produces ==")
    program = parse_rules("out(T, <h(S, <D>)>) <- r(T, S, C, D).")
    print(format_program(compile_head_terms(program)))


def body_patterns() -> None:
    print("== body set pattern: <t> in a body (Section 4.1) ==")
    db = LDL("flat(X) <- nested(<<X>>).", ldl15=True)
    db.fact("nested", frozenset({frozenset({1, 2}), frozenset({3})}))
    db.fact("nested", frozenset({4}))  # not uniform: 4 is not a set
    show(db, "flat")


if __name__ == "__main__":
    per_teacher_sets()
    nested_grouping()
    alternative_semantics()
    compiled_rules()
    body_patterns()
