"""Section 5: LPS versus LDL1.

Runs Kuper's ``disj`` and ``subset`` examples under the direct LPS
interpreter and under the Theorem-3 translation into LDL1, checks the
extensions agree, and demonstrates the Proposition: LDL1 builds models
(sets of sets) that no LPS program can express.

Run:  python examples/lps_comparison.py
"""

from repro import LDL
from repro.lps import (
    LPSProgram,
    LPSRule,
    Quantifier,
    evaluate_lps,
    evaluate_translated,
    translate,
)
from repro.parser import parse_atom
from repro.program.rule import Atom, Literal
from repro.terms.pretty import format_atom, format_program
from repro.terms.term import Var
from repro.terms.universe import set_depth


def lps_program() -> LPSProgram:
    disj = LPSRule(
        parse_atom("disj(X, Y)"),
        [Quantifier("Ex", "X"), Quantifier("Ey", "Y")],
        [Literal(Atom("!=", (Var("Ex"), Var("Ey"))))],
    )
    subset = LPSRule(
        parse_atom("subs(X, Y)"),
        [Quantifier("Ex", "X")],
        [Literal(Atom("member", (Var("Ex"), Var("Y"))))],
        set_typed={"Y"},
    )
    return LPSProgram([disj, subset])


def compare() -> None:
    print("== disj/subset: direct LPS vs Theorem-3 translation ==")
    program = lps_program()
    facts = [
        parse_atom("s({1, 2})"),
        parse_atom("s({2, 3})"),
        parse_atom("s({4})"),
        parse_atom("s({})"),
    ]
    direct = evaluate_lps(program, facts)
    translated = evaluate_translated(program, facts)
    for pred in ("disj", "subs"):
        direct_ext = {format_atom(a) for a in direct.atoms(pred)}
        translated_ext = {format_atom(a) for a in translated.database.atoms(pred)}
        marker = "==" if direct_ext == translated_ext else "!="
        print(f"  {pred}: direct {len(direct_ext)} facts {marker} translated")
        for fact in sorted(direct_ext)[:4]:
            print("     e.g.", fact)
    print("== the translated LDL1 rules for disj ==")
    print(format_program(translate(LPSProgram([lps_program().rules[0]]))))


def richer_models() -> None:
    print("== Proposition: LDL1 models escape D ∪ P(D) ==")
    db = LDL(
        """
        q(1).
        p(<X>) <- q(X).
        w(<X>) <- p(X).
        """
    )
    ((nested,),) = db.extension("w")
    print("  w's argument:", nested)
    depth = set_depth(next(iter(db.database().atoms("w"))).args[0])
    print(f"  set-nesting depth {depth}: no LPS model (depth <= 1) matches.")


if __name__ == "__main__":
    compare()
    richer_models()
