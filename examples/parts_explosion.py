"""Parts explosion: the flagship Section 1 example, at three scales.

Reproduces the paper's bill-of-materials cost computation exactly
(``part(1, {2,7})``, ``tc({1}, 245)``, ...), then contrasts three
implementations of "total cost of a part" on generated BOM trees:

* the paper's ``tc`` program — recursion over *sets* with ``partition``
  (elegant, but bottom-up it derives a cost for every disjoint union of
  part sets: exponential in the total part count);
* a scoped ``tc`` — same program with the recursive rule restricted to
  subsets of actual subpart sets (the relevance idea of Section 6,
  hand-applied);
* a purely relational encoding that chains subparts in id order.

Run:  python examples/parts_explosion.py
"""

import time

from repro import LDL
from repro.workloads import (
    ORDERED_SUM_PROGRAM,
    TC_PROGRAM,
    TC_SCOPED_PROGRAM,
    bom,
)

PAPER_FACTS = """
p(1,2). p(1,7). p(2,3). p(2,4). p(3,5). p(3,6).
q(4,20). q(5,10). q(6,15). q(7,200).
"""


def paper_instance() -> None:
    print("== the paper's exact instance ==")
    db = LDL(PAPER_FACTS + TC_PROGRAM)
    for part, subs in db.extension("part"):
        print(f"  part({part}, {sorted(subs)})")
    for part, cost in sorted(db.extension("result")):
        print(f"  result({part}, {cost})")
    # the claims from Section 1:
    assert dict(db.extension("result"))[1] == 245
    assert dict(db.extension("result"))[2] == 45
    assert dict(db.extension("result"))[3] == 25


def generated_instances() -> None:
    print("== generated BOM trees: three encodings ==")
    print(f"  {'parts':>6} {'encoding':<12} {'ok':>3} {'seconds':>8}")
    for depth, fanout in ((2, 2), (3, 2), (3, 3)):
        facts, expected = bom(depth=depth, fanout=fanout, seed=7)
        parts = len(expected)
        variants = [("scoped-tc", TC_SCOPED_PROGRAM, "result"),
                    ("ordered-sum", ORDERED_SUM_PROGRAM, "result2")]
        if parts <= 7:
            variants.insert(0, ("paper-tc", TC_PROGRAM, "result"))
        for name, program, result_pred in variants:
            db = LDL(program).add_atoms(facts)
            start = time.perf_counter()
            computed = dict(db.extension(result_pred))
            elapsed = time.perf_counter() - start
            ok = computed == expected
            print(f"  {parts:>6} {name:<12} {'yes' if ok else 'NO':>3} {elapsed:>8.3f}")


if __name__ == "__main__":
    paper_instance()
    generated_instances()
