"""A small end-to-end application: warehouse stock management.

Shows the pieces a downstream user combines: CSV data loading,
set-valued relations, grouping, stratified negation, incremental
updates as shipments arrive and leave, and derivation trees to audit
an answer.

Run:  python examples/warehouse.py
"""

import tempfile
from pathlib import Path

from repro.data import load_delimited
from repro.engine.explain import explain
from repro.engine.incremental import IncrementalModel
from repro.parser import parse_atom, parse_rules
from repro.terms.pretty import format_atom

RULES = parse_rules(
    """
    % route(A, B): trucks drive from warehouse A to warehouse B
    reachable(A, B) <- route(A, B).
    reachable(A, B) <- route(A, C), reachable(C, B).

    % an item is obtainable at W if some warehouse reachable from W
    % (or W itself) stocks it
    here(W, I) <- stocked(W, I).
    obtainable(W, I) <- here(W, I).
    obtainable(W, I) <- reachable(W, V), here(V, I).

    % inventory: the set of items obtainable per warehouse
    inventory(W, <I>) <- obtainable(W, I).

    % items nobody stocks anywhere reachable: per-warehouse gaps
    wanted(W, I) <- demand(W, I).
    gap(W, I) <- wanted(W, I), ~obtainable(W, I).
    """
)

STOCK_CSV = """east,bolts
east,nuts
west,washers
north,gaskets
"""

ROUTES_CSV = """east,west
west,north
"""

DEMAND_CSV = """east,washers
east,turbines
north,bolts
"""


def load(tmp: Path) -> IncrementalModel:
    (tmp / "stock.csv").write_text(STOCK_CSV)
    (tmp / "routes.csv").write_text(ROUTES_CSV)
    (tmp / "demand.csv").write_text(DEMAND_CSV)
    facts = (
        load_delimited(tmp / "stock.csv", "stocked")
        + load_delimited(tmp / "routes.csv", "route")
        + load_delimited(tmp / "demand.csv", "demand")
    )
    return IncrementalModel(RULES, facts)


def report(model: IncrementalModel, title: str) -> None:
    print(f"== {title} ==")
    for atom in model.database.sorted_atoms("inventory"):
        warehouse, items = atom.args
        print(f"  {warehouse.value}: {sorted(i.value for i in items)}")
    gaps = model.database.sorted_atoms("gap")
    if gaps:
        print("  gaps:", ", ".join(format_atom(a) for a in gaps))
    else:
        print("  gaps: none")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmpdir:
        model = load(Path(tmpdir))
    report(model, "initial state (from CSV)")

    print()
    stats = model.add_facts([parse_atom("stocked(north, turbines)")])
    print(f"(north receives turbines — {stats.mode} update, "
          f"{stats.affected_predicates} predicates affected)")
    report(model, "after the turbine shipment")

    print()
    stats = model.remove_facts([parse_atom("route(west, north)")])
    print(f"(the west->north route closes — {stats.mode} update)")
    report(model, "after losing the route")

    print()
    print("== why does east still obtain washers? ==")
    derivation = explain(
        RULES, model.database, parse_atom("obtainable(east, washers)")
    )
    print(derivation.format())


if __name__ == "__main__":
    main()
