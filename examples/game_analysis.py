"""Beyond admissibility: solving games with the well-founded semantics.

The paper's §7 asks whether admissibility (stratification) is too
restrictive.  The canonical program it rules out is the win-move game::

    win(X) <- move(X, Y), ~win(Y).

— negation through recursion, no layering possible.  The well-founded
semantics assigns it a three-valued model: forced wins are *true*,
forced losses *false*, and drawn positions (cycles neither player can
escape) *undefined*.

This script solves a small board game and checks the answer against
classical backward induction.

Run:  python examples/game_analysis.py
"""

from repro.parser import parse_atom, parse_program
from repro.program.dependency import is_admissible
from repro.semantics.wellfounded import wellfounded

# A board: players alternate moving a token along the arrows; whoever
# cannot move loses.  Note the two cycles: the right one has an escape
# to a stuck position (so it *resolves* — the escape is a winning
# move), while the d-cycle has none (a genuine draw).
MOVES = [
    ("start", "left1"), ("start", "right1"),
    ("left1", "left2"), ("left2", "left3"),          # a losing corridor
    ("right1", "right2"), ("right2", "right1"),      # a cycle ...
    ("right2", "exit"),                              # ... with an escape
    ("start", "d1"), ("d1", "d2"), ("d2", "d1"),     # an inescapable cycle
]

PROGRAM = (
    " ".join(f"move({a}, {b})." for a, b in MOVES)
    + " win(X) <- move(X, Y), ~win(Y)."
)


def main() -> None:
    program, _ = parse_program(PROGRAM)
    print("admissible (stratifiable)?", is_admissible(program))

    model = wellfounded(program)
    print(f"alternating fixpoint converged in {model.rounds} rounds\n")

    positions = sorted({a for a, _ in MOVES} | {b for _, b in MOVES})
    print(f"{'position':<8} {'verdict':<10} meaning")
    print("-" * 46)
    for pos in positions:
        verdict = model.value_of(parse_atom(f"win({pos})"))
        meaning = {
            "true": "the player to move forces a win",
            "false": "the player to move loses",
            "undefined": "drawn (unbreakable cycle)",
        }[verdict]
        print(f"{pos:<8} {verdict:<10} {meaning}")

    # a few spot checks against game theory
    assert model.value_of(parse_atom("win(exit)")) == "false"   # stuck
    assert model.value_of(parse_atom("win(right2)")) == "true"  # to exit
    assert model.value_of(parse_atom("win(right1)")) == "false" # must feed right2
    assert model.value_of(parse_atom("win(left3)")) == "false"  # stuck
    assert model.value_of(parse_atom("win(left1)")) == "false"
    assert model.value_of(parse_atom("win(d1)")) == "undefined" # drawn
    assert model.value_of(parse_atom("win(d2)")) == "undefined"
    # start can move to the losing left1 or right1: a forced win.
    assert model.value_of(parse_atom("win(start)")) == "true"
    print("\nall verdicts agree with backward induction.")


if __name__ == "__main__":
    main()
