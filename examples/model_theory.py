"""Walk through the paper's model-theory counterexamples (§2.3-2.4).

Every claim is checked programmatically as it is printed: which
interpretations are models, why intersections fail, why one program has
no model at all, and how the domination order sorts out minimality.

Run:  python examples/model_theory.py
"""

from repro.parser import parse_atom, parse_rules
from repro.semantics import (
    all_models,
    has_model,
    improves_on,
    is_model,
    minimal_models_over,
)
from repro.semantics.fixpoint_theory import tp_with_grouping
from repro.terms.pretty import format_atom


def atoms(*sources):
    return frozenset(parse_atom(s) for s in sources)


def show(interpretation):
    return "{" + ", ".join(sorted(format_atom(a) for a in interpretation)) + "}"


def intersection_failure() -> None:
    print("== §2.3: the intersection of two models need not be a model ==")
    program = parse_rules("p(<X>) <- q(X).")
    a = atoms("q(1)", "q(2)", "p({1, 2})")
    b = atoms("q(2)", "q(3)", "p({2, 3})")
    print("  A =", show(a), "model?", is_model(program, a))
    print("  B =", show(b), "model?", is_model(program, b))
    print(
        "  A ∩ B =", show(a & b), "model?", is_model(program, a & b),
        "(missing p({2}))",
    )
    assert is_model(program, a) and is_model(program, b)
    assert not is_model(program, a & b)


def no_model() -> None:
    print("== §2.3: a program with no model (Russell-Whitehead flavor) ==")
    program = parse_rules("p(<X>) <- p(X). p(1).")
    candidates = [
        parse_atom(src)
        for src in ("p({1})", "p({{1}})", "p({1, {1}})", "p({{1}, {1, {1}}})")
    ]
    print("  p(<X>) <- p(X).  p(1).")
    print("  any model over a nested-set candidate universe?",
          has_model(program, candidates))
    assert not has_model(program, candidates)
    # show the divergence: each T_P application grows the grouped set
    current = atoms("p(1)")
    for step in range(3):
        current = frozenset(current | tp_with_grouping(program, current))
        print(f"  after {step + 1} naive step(s): {show(current)}")


def multiple_minimal_models() -> None:
    print("== §2.3: a positive program with several minimal models ==")
    program = parse_rules(
        """
        p(<X>) <- q(X).
        q(Y) <- w(S, Y), p(S).
        q(1).
        w({1}, 7).
        """
    )
    m = atoms("q(1)", "w({1}, 7)")
    print("  M =", show(m), "model?", is_model(program, m))
    m1 = m | atoms("q(2)", "p({1, 2})")
    m2 = m | atoms("q(3)", "p({1, 3})")
    print("  M1 =", show(m1), "model?", is_model(program, m1))
    print("  M2 =", show(m2), "model?", is_model(program, m2))
    candidates = [
        parse_atom(s)
        for s in (
            "q(2)", "q(3)", "q(7)",
            "p({1})", "p({1, 2})", "p({1, 3})", "p({1, 7})", "p({2})",
        )
    ]
    minimal = minimal_models_over(program, candidates)
    print(f"  minimal models over the pool: {len(minimal)} (no unique minimum)")
    assert len(minimal) > 1


def domination_minimality() -> None:
    print("== §2.4: minimality via domination, not set inclusion ==")
    program = parse_rules(
        """
        q(1).
        p(<X>) <- q(X).
        q(2) <- p({1, 2}).
        """
    )
    m1 = atoms("q(1)", "q(2)", "p({1, 2})")
    m2 = atoms("q(1)", "p({1})")
    print("  M1 =", show(m1), "model?", is_model(program, m1))
    print("  M2 =", show(m2), "model?", is_model(program, m2))
    print("  M2 improves on M1 (M2−M1 ≤ M1−M2)?", improves_on(m2, m1))
    print("  M1 improves on M2?", improves_on(m1, m2))
    assert improves_on(m2, m1) and not improves_on(m1, m2)
    # note: neither model is ⊆-comparable to the other, so classical
    # set-inclusion minimality cannot choose between them.
    assert not (m1 <= m2 or m2 <= m1)


if __name__ == "__main__":
    intersection_failure()
    no_model()
    multiple_minimal_models()
    domination_minimality()
