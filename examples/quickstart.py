"""Quickstart: the LDL1 public API in five minutes.

Covers the paper's Section 1 feature tour — recursion, stratified
negation, set grouping, and set enumeration — through the high-level
:class:`repro.LDL` session.

Run:  python examples/quickstart.py
"""

from repro import LDL


def recursion() -> None:
    print("== recursion: ancestor (simple program) ==")
    db = LDL(
        """
        ancestor(X, Y) <- parent(X, Y).
        ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
        """
    )
    db.facts("parent", [("ann", "bob"), ("bob", "carl"), ("carl", "dee")])
    for answer in db.query("? ancestor(ann, X)."):
        print("  ann is an ancestor of", answer["X"])


def negation() -> None:
    print("== stratified negation: exclusive ancestors ==")
    db = LDL(
        """
        ancestor(X, Y) <- parent(X, Y).
        ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
        excl_ancestor(X, Y, Z) <- ancestor(X, Y), person(Z), ~ancestor(X, Z).
        """
    )
    db.facts("parent", [("ann", "bob"), ("bob", "carl"), ("dee", "emma")])
    db.facts("person", [("ann",), ("bob",), ("carl",), ("dee",), ("emma",)])
    print("  ancestors of someone, excluding ancestors of carl:")
    for answer in db.query("? excl_ancestor(X, Y, carl)."):
        print(f"    {answer['X']} -> {answer['Y']}")


def grouping() -> None:
    print("== set grouping: parts per supplier ==")
    db = LDL("supplier_parts(S, <P>) <- supplies(S, P).")
    db.facts(
        "supplies",
        [("acme", "bolt"), ("acme", "nut"), ("acme", "washer"), ("zeta", "bolt")],
    )
    for supplier, parts in db.extension("supplier_parts"):
        print(f"  {supplier} supplies {sorted(parts)}")


def set_enumeration() -> None:
    print("== set enumeration: book deals under 100 ==")
    db = LDL(
        """
        book_deal({X, Y}) <- book(X, Px), book(Y, Py), X != Y, Px + Py < 100.
        """
    )
    db.facts("book", [("tractatus", 35), ("organon", 50), ("ethics", 60)])
    for (deal,) in db.extension("book_deal"):
        print("  deal:", sorted(deal))


def magic_queries() -> None:
    print("== magic sets: querying only what is relevant ==")
    db = LDL(
        """
        ancestor(X, Y) <- parent(X, Y).
        ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
        """
    )
    db.facts("parent", [(f"p{i}", f"p{i + 1}") for i in range(50)])
    db.facts("parent", [(f"q{i}", f"q{i + 1}") for i in range(50)])
    result = db.query_magic("? ancestor(p40, X).")
    print("  answers:", [a.args[1].value for a in result.answer_atoms()])
    print(
        "  facts touched by magic:",
        result.total_facts,
        "(a full bottom-up model would hold",
        db.model().total_facts,
        "facts)",
    )


if __name__ == "__main__":
    recursion()
    negation()
    grouping()
    set_enumeration()
    magic_queries()
