"""The Section 6 running example: `young` with negation + grouping + magic.

``young(X, S)`` holds when X has no descendants and S is the (non-empty)
set of people in X's generation.  The paper uses this program to extend
Magic Sets to layered programs with sets and negation; this script runs
the query both ways and shows the rewritten rule set and the work
saved.

Run:  python examples/young_generation.py
"""

from repro import LDL
from repro.parser import parse_query
from repro.terms.pretty import format_atom, format_rule
from repro.workloads import generation_family

PROGRAM = """
a(X, Y) <- p(X, Y).
a(X, Y) <- a(X, Z), a(Z, Y).
sg(X, Y) <- siblings(X, Y).
sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
has_desc(X) <- a(X, _).
young(X, <Y>) <- sg(X, Y), ~has_desc(X).
"""


def show_rewrite(db: LDL) -> None:
    print("== the rewritten program for ? young(<leaf>, S) ==")
    result = db.query_magic("? young(g_4_0, S).")
    mp = result.magic_program
    for rule in mp.magic_rules:
        print("  [magic]    ", format_rule(rule))
    for rule in mp.modified_rules:
        print("  [modified] ", format_rule(rule))
    for rule in mp.deferred_rules:
        print("  [deferred] ", format_rule(rule))
    print("  [seed]     ", format_atom(mp.seed))


def compare_strategies(db: LDL) -> None:
    print("== bottom-up vs magic on the same query ==")
    query = parse_query("? young(g_4_0, S).")
    full = db.model()
    full_answers = full.answer_atoms(query)
    magic = db.query_magic(query)
    magic_answers = magic.answer_atoms()
    assert [format_atom(a) for a in magic_answers] == [
        format_atom(a) for a in full_answers
    ]
    for atom in magic_answers:
        person = atom.args[0].value
        generation = sorted(member.value for member in atom.args[1])
        print(f"  young({person}) with generation set of {len(generation)}")
    print(f"  bottom-up total facts: {full.total_facts}")
    print(f"  magic total facts:     {magic.total_facts}")
    print(f"  magic phases:          {magic.stats.phases}")


def failing_queries(db: LDL) -> None:
    print("== queries the paper says must fail ==")
    # someone with descendants
    print("  ? young(g_0_0, S).  ->", db.query("? young(g_0_0, S).", strategy="magic"))


if __name__ == "__main__":
    db = LDL(PROGRAM).add_atoms(generation_family(generations=5, width=4))
    show_rewrite(db)
    compare_strategies(db)
    failing_queries(db)
