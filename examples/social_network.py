"""A social-network walkthrough: all LDL1 features on one dataset.

Influence closure (recursion), follower sets and communities
(grouping), audience sizes and community overlap (set built-ins), and
follow recommendations (stratified negation) — on a seeded random
network.  Finishes with a magic-sets query and a derivation tree.

Run:  python examples/social_network.py
"""

from repro import LDL
from repro.workloads import SOCIAL_PROGRAM, social_network


def main() -> None:
    db = LDL(SOCIAL_PROGRAM).add_atoms(
        social_network(users=40, follows_per_user=3, seed=11)
    )

    print("== the model ==")
    model = db.model()
    print(f"  {model.total_facts} facts across {len(model.layering)} layers")

    print("== largest audiences (grouping + card) ==")
    audiences = sorted(
        db.extension("audience"), key=lambda row: -row[1]
    )[:5]
    for user, size in audiences:
        print(f"  {user}: {size} followers")

    print("== community overlaps (intersection built-in) ==")
    for t1, t2, shared in db.extension("overlap"):
        if shared:
            print(f"  {t1} ∩ {t2}: {sorted(shared)[:4]}{'…' if len(shared) > 4 else ''}")

    print("== recommendations for u0 (negation) ==")
    recs = db.query("? recommend(u0, B).")
    print("  ", [r["B"] for r in recs][:6])

    print("== magic sets: who influences u0, goal-directed ==")
    magic = db.query_magic("? influences(X, u0).")
    full_facts = model.total_facts
    print(f"  {len(magic.answers())} influencers;"
          f" magic touched {magic.total_facts} facts"
          f" (full model holds {full_facts})")

    print("== why is the first recommendation justified? ==")
    if recs:
        derivation = db.explain(f"recommend(u0, {recs[0]['B']})")
        print(derivation.format())


if __name__ == "__main__":
    main()
