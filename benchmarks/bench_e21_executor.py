"""Experiment E21: executor ablation tuple / batch / specialized / vector

pytest-benchmark wrapper around the shared cases in ``common.py``;
see ``benchmarks/harness.py`` for the table-printing runner and
DESIGN.md for the experiment index.
"""

import pytest

from common import EXPERIMENTS

CASES = EXPERIMENTS["E21"]()
IDS = [f"{c['workload']}::{c['strategy']}" for c in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_e21_executor(benchmark, case):
    result = benchmark.pedantic(case["run"], rounds=3, iterations=1)
    benchmark.extra_info["facts"] = case["metric"](result)
    benchmark.extra_info["strategy"] = case["strategy"]
    collector = getattr(result, "metrics", None)
    if collector is not None:
        counters = collector.report().get("counters", {})
        if "rows_per_dispatch" in counters:
            benchmark.extra_info["rows_per_dispatch"] = counters[
                "rows_per_dispatch"
            ]
