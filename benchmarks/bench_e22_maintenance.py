"""Experiment E22: differential maintenance vs cone recompute

pytest-benchmark wrapper around the shared cases in ``common.py``;
see ``benchmarks/harness.py`` for the table-printing runner and
DESIGN.md for the experiment index.
"""

import pytest

from common import EXPERIMENTS

CASES = EXPERIMENTS["E22"]()
IDS = [f"{c['workload']}::{c['strategy']}" for c in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_e22_maintenance(benchmark, case):
    result = benchmark.pedantic(case["run"], rounds=3, iterations=1)
    benchmark.extra_info["ops"] = case["metric"](result)
    benchmark.extra_info["strategy"] = case["strategy"]
