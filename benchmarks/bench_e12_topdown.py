"""Experiment E12: top-down tabling vs magic vs bottom-up

pytest-benchmark wrapper around the shared cases in ``common.py``;
see ``benchmarks/harness.py`` for the table-printing runner and
DESIGN.md for the experiment index.
"""

import pytest

from common import EXPERIMENTS

CASES = EXPERIMENTS["E12"]()
IDS = [f"{c['workload']}::{c['strategy']}" for c in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_e12_topdown(benchmark, case):
    result = benchmark.pedantic(case["run"], rounds=3, iterations=1)
    benchmark.extra_info["facts"] = case["metric"](result)
    benchmark.extra_info["strategy"] = case["strategy"]
