"""Experiment E18: durable restart paths

Times the three ways a ``DurableStore`` can come back up — cold start
(no persisted state, full evaluation), WAL replay (incremental repair
per logged batch), and snapshot restore (fingerprint match, fixpoint
skipped).  pytest-benchmark wrapper around the shared cases in
``common.py``; see ``benchmarks/harness.py`` for the table-printing
runner and DESIGN.md for the experiment index.
"""

import pytest

from common import EXPERIMENTS

CASES = EXPERIMENTS["E18"]()
IDS = [f"{c['workload']}::{c['strategy']}" for c in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_e18_persistence(benchmark, case):
    result = benchmark.pedantic(case["run"], rounds=3, iterations=1)
    benchmark.extra_info["facts"] = case["metric"](result)
    benchmark.extra_info["strategy"] = case["strategy"]
