"""Experiment E2: bound queries: full bottom-up vs magic (Section 6)

pytest-benchmark wrapper around the shared cases in ``common.py``;
see ``benchmarks/harness.py`` for the table-printing runner and
DESIGN.md for the experiment index.
"""

import pytest

from common import EXPERIMENTS

CASES = EXPERIMENTS["E2"]()
IDS = [f"{c['workload']}::{c['strategy']}" for c in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_e02_magic_ancestor(benchmark, case):
    result = benchmark.pedantic(case["run"], rounds=3, iterations=1)
    benchmark.extra_info["facts"] = case["metric"](result)
    benchmark.extra_info["strategy"] = case["strategy"]
