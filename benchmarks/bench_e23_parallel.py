"""Experiment E23: partitioned evaluation, speedup vs worker count

pytest-benchmark wrapper around the shared cases in ``common.py``;
see ``benchmarks/harness.py`` for the table-printing runner and
DESIGN.md for the experiment index.  The social-reachability cases
honour ``REPRO_E23_EDGES`` (default one million edges) — export a
smaller value for a quick local run.
"""

import pytest

from common import EXPERIMENTS

CASES = EXPERIMENTS["E23"]()
IDS = [f"{c['workload']}::{c['strategy']}" for c in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_e23_parallel(benchmark, case):
    result = benchmark.pedantic(case["run"], rounds=3, iterations=1)
    benchmark.extra_info["facts"] = case["metric"](result)
    benchmark.extra_info["strategy"] = case["strategy"]
