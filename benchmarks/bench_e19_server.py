"""Experiment E19: server throughput under concurrent clients

Times the TCP server (``repro.server``) from the client side: 1, 4,
and 8 concurrent clients issuing bound magic queries (read-only) or a
1:2 update:query mix against one shared session.  Updates serialize
through the server's writer lock while queries overlap, so the two
strategies bound the cost of coordination.

The ``hot set`` cases stress the answer cache with 100 concurrent
clients over eight bound queries — cached vs per-request bypass, and
cached with concurrent writes on an unrelated predicate (precise
invalidation keeps the hit rate high).  Those cases report
``p50_ms``/``p99_ms`` client-side latency and ``hit_rate`` in
``extra_info``.  pytest-benchmark wrapper around the shared cases in
``common.py``; see ``benchmarks/harness.py`` for the table-printing
runner and DESIGN.md for the experiment index.
"""

import pytest

from common import EXPERIMENTS

CASES = EXPERIMENTS["E19"]()
IDS = [f"{c['workload']}::{c['strategy']}" for c in CASES]


@pytest.mark.parametrize("case", CASES, ids=IDS)
def test_e19_server(benchmark, case):
    result = benchmark.pedantic(case["run"], rounds=3, iterations=1)
    benchmark.extra_info["requests"] = case["metric"](result)
    benchmark.extra_info["strategy"] = case["strategy"]
    if isinstance(result, dict):
        for key, value in result.items():
            benchmark.extra_info[key] = value
