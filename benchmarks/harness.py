"""Benchmark harness: regenerate every experiment table.

The PODS'87 paper is a theory paper with no numeric tables; its
evaluative content is the worked examples and the efficiency claims
around semi-naive evaluation and magic sets.  This harness times every
case of experiments E1–E11 (see DESIGN.md) and prints one table per
experiment: workload, strategy, facts derived, wall time, and the
speedup of each strategy over the first strategy listed for the same
workload.

Run:  python benchmarks/harness.py                 # all experiments
      python benchmarks/harness.py E2 E4           # a subset
      python benchmarks/harness.py --json out.json # machine-readable
      python benchmarks/harness.py --quick E1 E6 --out benchmarks/BENCH_PR4.json
      python benchmarks/harness.py --quick E1 E6 --check benchmarks/BENCH_PR5.json
      python benchmarks/harness.py --executor tuple E1   # force an executor
      python benchmarks/harness.py --vector off E1       # disable vector kernels
      python benchmarks/harness.py --maintain recompute E22  # force a maintenance mode
      python benchmarks/harness.py --workers 4 E1        # partitioned evaluation

``--out`` writes the regression-tracking payload (per-case wall time
plus fixpoint counters); ``--check`` compares a fresh run against such
a file and exits non-zero when any case regresses more than 25% after
normalizing by the median ratio (cancelling machine-speed differences
between the committing machine and CI).  Both flags trigger a second
full sampling pass and keep the per-case minimum of the two, so a
machine-speed phase during one window cannot skew a single case.
"""

from __future__ import annotations

import json
import statistics
import sys
import time

from common import EXPERIMENT_TITLES, EXPERIMENTS

REGRESSION_TOLERANCE = 1.25

#: Cases faster than this (baseline seconds) are excluded from the
#: regression check: at sub-5ms scale, scheduler jitter and allocator
#: state swamp any real change, and one noisy sample would fail CI.
REGRESSION_NOISE_FLOOR = 0.005


#: Adaptive sampling: after the requested repeats, keep re-running a
#: case until this much wall time has been spent measuring it (or the
#: cap below is hit).  Short cases are the ones scheduler jitter hurts
#: most — a 30ms case needs ~10 samples before its minimum is
#: trustworthy, while a 2s case is already stable at 2–3.
MEASUREMENT_BUDGET = 0.4
MAX_REPEATS = 12


def time_case(case: dict, repeats: int = 3) -> tuple[float, int, dict | None]:
    """Best-of-N wall time, facts metric, and phase timings of one case.

    ``repeats`` is a floor: sampling continues past it until
    :data:`MEASUREMENT_BUDGET` seconds have been spent on the case (or
    :data:`MAX_REPEATS` runs), so short cases collect enough samples
    for their minimum to survive scheduler jitter.  Cases whose run
    returns an object carrying a
    :class:`repro.observe.MetricsCollector` (``result.metrics``) also
    report per-phase (plan/match/grouping) and per-layer attribution,
    taken from the last repeat.
    """
    best = float("inf")
    metric = 0
    metrics_report = None
    spent = 0.0
    runs = 0
    while runs < repeats or (
        spent < MEASUREMENT_BUDGET and runs < MAX_REPEATS
    ):
        start = time.perf_counter()
        result = case["run"]()
        elapsed = time.perf_counter() - start
        spent += elapsed
        runs += 1
        best = min(best, elapsed)
        metric = case["metric"](result)
        collector = getattr(result, "metrics", None)
        if collector is not None:
            metrics_report = collector.report()
        counters = _fixpoint_counters(result)
        if counters is not None:
            case["_fixpoint"] = counters
    return best, metric, metrics_report


def _fixpoint_counters(result) -> dict | None:
    """Fixpoint work counters of a run, when the result carries any.

    ``EvaluationResult`` exposes totals directly; ``MagicResult`` nests
    them under ``stats.saturation``.  Results without fixpoint stats
    (layering checks, server throughput) report nothing.
    """
    iterations = getattr(result, "total_iterations", None)
    if iterations is not None:
        return {
            "iterations": iterations,
            "rule_firings": result.total_firings,
        }
    saturation = getattr(getattr(result, "stats", None), "saturation", None)
    if saturation is not None:
        return {
            "iterations": saturation.iterations,
            "rule_firings": saturation.rule_firings,
        }
    return None


def _format_phases(report: dict) -> str:
    parts = [
        f"{name}={seconds * 1000:.2f}ms"
        for name, seconds in sorted(report.get("phases", {}).items())
    ]
    layer_entries = report.get("layers", [])
    if layer_entries:
        parts.append(
            "layers["
            + " ".join(
                f"{entry['layer']}:{entry['seconds'] * 1000:.2f}ms"
                for entry in layer_entries
            )
            + "]"
        )
    counters = report.get("counters", {})
    # Preferred ordering for the counter families we know about; any
    # family a run reports beyond these (e.g. kernel_calls /
    # rows_per_dispatch from the vectorized lane) is appended sorted, so
    # new counters show up without harness edits and absent families
    # never raise.
    known = (
        "plans_built",
        "plan_cache_hits",
        "batch_steps",
        "batch_bindings",
        "batch_peak",
        "kernel_calls",
        "kernel_rows",
        "rows_per_dispatch",
        "shuffle_rows",
        "shuffle_bytes",
        "maintain_dispatches",
        "maintain_rows",
        "maintain_rows_per_dispatch",
        "id_table_size",
    )
    for name in known:
        if name in counters:
            parts.append(f"{name}={counters[name]}")
    for name in sorted(counters):
        if name not in known:
            parts.append(f"{name}={counters[name]}")
    # Partitioned runs attach one entry per worker; the counter families
    # above are already the cross-worker aggregate (the collector folds
    # them), so all the table needs per worker is its busy time — one
    # compact bracket, not one counter line per worker.
    worker_entries = report.get("workers", [])
    if worker_entries:
        parts.append(
            "workers["
            + " ".join(
                f"{entry['worker']}:{entry['seconds'] * 1000:.0f}ms"
                for entry in worker_entries
            )
            + "]"
        )
    join_orders = report.get("join_orders", [])
    if join_orders:
        parts.append(f"join_orders={len(join_orders)}")
    return " ".join(parts)


def run_experiment(name: str, repeats: int = 3) -> list[dict]:
    rows = []
    baseline_by_workload: dict[str, float] = {}
    for case in EXPERIMENTS[name]():
        seconds, facts, metrics_report = time_case(case, repeats=repeats)
        workload = case["workload"]
        baseline = baseline_by_workload.setdefault(workload, seconds)
        row = {
            "workload": workload,
            "strategy": case["strategy"],
            "facts": facts,
            "seconds": seconds,
            "speedup": baseline / seconds if seconds else float("inf"),
        }
        if "_fixpoint" in case:
            row["fixpoint"] = case["_fixpoint"]
        if metrics_report is not None:
            row["metrics"] = metrics_report
        rows.append(row)
    return rows


def print_experiment(name: str, repeats: int = 3) -> list[dict]:
    print(f"\n=== {name}: {EXPERIMENT_TITLES[name]} ===")
    header = f"{'workload':<28} {'strategy':<18} {'facts':>8} {'seconds':>9} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    rows = run_experiment(name, repeats=repeats)
    for row in rows:
        print(
            f"{row['workload']:<28} {row['strategy']:<18} "
            f"{row['facts']:>8} {row['seconds']:>9.4f} {row['speedup']:>7.2f}x"
        )
        if "metrics" in row:
            print(f"{'':<28}   {_format_phases(row['metrics'])}")
    return rows


def _tracking_payload(results: dict[str, list[dict]]) -> dict:
    """The regression-tracking shape written by ``--out``.

    Per-case wall time and fixpoint counters only — the phase/layer
    metrics blobs are for humans and would churn on every commit.
    """
    experiments = {}
    for name, rows in results.items():
        experiments[name] = {
            "title": EXPERIMENT_TITLES[name],
            "cases": [
                {
                    "workload": row["workload"],
                    "strategy": row["strategy"],
                    "facts": row["facts"],
                    "seconds": round(row["seconds"], 6),
                    **(
                        {"fixpoint": row["fixpoint"]}
                        if "fixpoint" in row
                        else {}
                    ),
                }
                for row in rows
            ],
        }
    return {"tolerance": REGRESSION_TOLERANCE, "experiments": experiments}


def check_regressions(
    results: dict[str, list[dict]], baseline: dict
) -> list[str]:
    """Compare a fresh run against a committed baseline file.

    Raw wall-clock ratios conflate machine speed with real regressions,
    so every shared case's ratio (current / baseline) is normalized by
    the *median* ratio — a uniformly slower machine moves every ratio
    equally and cancels out; a genuine regression sticks out above the
    tolerance.  Cases faster than the noise floor are skipped entirely.
    Returns human-readable failure lines (empty = pass).
    """
    base_cases = {
        (name, c["workload"], c["strategy"]): c["seconds"]
        for name, exp in baseline.get("experiments", {}).items()
        for c in exp["cases"]
    }
    ratios: dict[tuple, float] = {}
    for name, rows in results.items():
        for row in rows:
            key = (name, row["workload"], row["strategy"])
            base = base_cases.get(key)
            if base and base >= REGRESSION_NOISE_FLOOR and row["seconds"]:
                ratios[key] = row["seconds"] / base
    if not ratios:
        return ["no overlapping cases between run and baseline"]
    median = statistics.median(ratios.values())
    tolerance = baseline.get("tolerance", REGRESSION_TOLERANCE)
    failures = []
    for key, ratio in sorted(ratios.items()):
        normalized = ratio / median
        if normalized > tolerance:
            name, workload, strategy = key
            failures.append(
                f"{name} [{workload} / {strategy}]: "
                f"{normalized:.2f}x slower than baseline "
                f"(raw {ratio:.2f}x, median {median:.2f}x, "
                f"tolerance {tolerance:.2f}x)"
            )
    return failures


def _take_flag_with_value(argv: list[str], flag: str) -> tuple[list[str], str | None]:
    if flag not in argv:
        return argv, None
    index = argv.index(flag)
    try:
        value = argv[index + 1]
    except IndexError:
        raise SystemExit(f"{flag} needs a file path")
    return argv[:index] + argv[index + 2 :], value


def main(argv: list[str]) -> None:
    argv, json_path = _take_flag_with_value(argv, "--json")
    argv, out_path = _take_flag_with_value(argv, "--out")
    argv, check_path = _take_flag_with_value(argv, "--check")
    argv, executor = _take_flag_with_value(argv, "--executor")
    if executor is not None:
        # process-wide: every experiment below runs under this executor
        # (cases that pass an explicit executor=, like E21's, keep it).
        from repro.engine.exec import set_default_executor

        set_default_executor(executor)
    argv, specialize = _take_flag_with_value(argv, "--specialize")
    if specialize is not None:
        # ablation knob: "off" measures the batch executor without
        # compiled per-plan closures (same as REPRO_SPECIALIZE=off).
        from repro.engine.exec import set_specialization

        set_specialization(specialize)
    argv, vector = _take_flag_with_value(argv, "--vector")
    if vector is not None:
        # ablation knob: "off" disables the whole-column kernel layer
        # (same as REPRO_VECTOR=off) so its contribution is measurable.
        from repro.engine.exec import set_vectorization

        set_vectorization(vector)
    argv, maintain = _take_flag_with_value(argv, "--maintain")
    if maintain is not None:
        # process-wide maintenance mode for every model the experiments
        # build (cases that pin maintain=, like E22's, keep their pin).
        from repro.engine.maintain import set_maintain_mode

        set_maintain_mode(maintain)
    argv, workers = _take_flag_with_value(argv, "--workers")
    if workers is not None:
        # process-wide worker count for partitioned evaluation (same as
        # REPRO_WORKERS); cases that pass an explicit workers=, like
        # E23's speedup curves, keep their pin.
        from repro.engine.shard import set_default_workers

        set_default_workers(int(workers))
    repeats = 3
    if "--quick" in argv:
        argv = [a for a in argv if a != "--quick"]
        # best-of-2, not single-shot: the first run doubles as a warmup
        # (imports, lazily built indexes, the intern table), which
        # otherwise shows up as a phantom regression in --check.
        repeats = 2
    names = argv or list(EXPERIMENTS)
    results: dict[str, list[dict]] = {}
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(f"unknown experiment {name!r}; have {list(EXPERIMENTS)}")
        results[name] = print_experiment(name, repeats=repeats)
    if out_path or check_path:
        # Regression tracking compares minima, and machine speed drifts
        # on minute timescales (frequency scaling, noisy neighbours), so
        # a single sampling window per case can catch one case in a fast
        # phase and another in a slow one.  A second full pass minutes
        # after the first samples a different phase; the per-case min of
        # both passes is what gets written and checked.
        print("\nsecond sampling pass (machine-speed jitter control)...")
        for name in names:
            for row, again in zip(results[name], run_experiment(name, repeats=repeats)):
                row["seconds"] = min(row["seconds"], again["seconds"])
    if json_path:
        payload = {
            name: {"title": EXPERIMENT_TITLES[name], "rows": rows}
            for name, rows in results.items()
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {json_path}")
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(_tracking_payload(results), handle, indent=2)
            handle.write("\n")
        print(f"\nwrote {out_path}")
    if check_path:
        with open(check_path) as handle:
            baseline = json.load(handle)
        failures = check_regressions(results, baseline)
        if failures:
            print(f"\nREGRESSIONS vs {check_path}:")
            for line in failures:
                print(f"  {line}")
            raise SystemExit(1)
        print(f"\nno regressions vs {check_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
