"""Benchmark harness: regenerate every experiment table.

The PODS'87 paper is a theory paper with no numeric tables; its
evaluative content is the worked examples and the efficiency claims
around semi-naive evaluation and magic sets.  This harness times every
case of experiments E1–E11 (see DESIGN.md) and prints one table per
experiment: workload, strategy, facts derived, wall time, and the
speedup of each strategy over the first strategy listed for the same
workload.

Run:  python benchmarks/harness.py                 # all experiments
      python benchmarks/harness.py E2 E4           # a subset
      python benchmarks/harness.py --json out.json # machine-readable
"""

from __future__ import annotations

import json
import sys
import time

from common import EXPERIMENT_TITLES, EXPERIMENTS


def time_case(case: dict, repeats: int = 3) -> tuple[float, int, dict | None]:
    """Best-of-N wall time, facts metric, and phase timings of one case.

    Cases whose run returns an object carrying a
    :class:`repro.observe.MetricsCollector` (``result.metrics``) also
    report per-phase (plan/match/grouping) and per-layer attribution,
    taken from the last repeat.
    """
    best = float("inf")
    metric = 0
    metrics_report = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = case["run"]()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
        metric = case["metric"](result)
        collector = getattr(result, "metrics", None)
        if collector is not None:
            metrics_report = collector.report()
    return best, metric, metrics_report


def _format_phases(report: dict) -> str:
    parts = [
        f"{name}={seconds * 1000:.2f}ms"
        for name, seconds in sorted(report.get("phases", {}).items())
    ]
    layer_entries = report.get("layers", [])
    if layer_entries:
        parts.append(
            "layers["
            + " ".join(
                f"{entry['layer']}:{entry['seconds'] * 1000:.2f}ms"
                for entry in layer_entries
            )
            + "]"
        )
    counters = report.get("counters", {})
    for name in ("plans_built", "plan_cache_hits"):
        if name in counters:
            parts.append(f"{name}={counters[name]}")
    return " ".join(parts)


def run_experiment(name: str) -> list[dict]:
    rows = []
    baseline_by_workload: dict[str, float] = {}
    for case in EXPERIMENTS[name]():
        seconds, facts, metrics_report = time_case(case)
        workload = case["workload"]
        baseline = baseline_by_workload.setdefault(workload, seconds)
        row = {
            "workload": workload,
            "strategy": case["strategy"],
            "facts": facts,
            "seconds": seconds,
            "speedup": baseline / seconds if seconds else float("inf"),
        }
        if metrics_report is not None:
            row["metrics"] = metrics_report
        rows.append(row)
    return rows


def print_experiment(name: str) -> list[dict]:
    print(f"\n=== {name}: {EXPERIMENT_TITLES[name]} ===")
    header = f"{'workload':<28} {'strategy':<18} {'facts':>8} {'seconds':>9} {'speedup':>8}"
    print(header)
    print("-" * len(header))
    rows = run_experiment(name)
    for row in rows:
        print(
            f"{row['workload']:<28} {row['strategy']:<18} "
            f"{row['facts']:>8} {row['seconds']:>9.4f} {row['speedup']:>7.2f}x"
        )
        if "metrics" in row:
            print(f"{'':<28}   {_format_phases(row['metrics'])}")
    return rows


def main(argv: list[str]) -> None:
    json_path = None
    if "--json" in argv:
        index = argv.index("--json")
        try:
            json_path = argv[index + 1]
        except IndexError:
            raise SystemExit("--json needs a file path")
        argv = argv[:index] + argv[index + 2 :]
    names = argv or list(EXPERIMENTS)
    results: dict[str, list[dict]] = {}
    for name in names:
        if name not in EXPERIMENTS:
            raise SystemExit(f"unknown experiment {name!r}; have {list(EXPERIMENTS)}")
        results[name] = print_experiment(name)
    if json_path:
        payload = {
            name: {"title": EXPERIMENT_TITLES[name], "rows": rows}
            for name, rows in results.items()
        }
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"\nwrote {json_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
