"""Shared workload runners for the benchmark suite.

Each ``eNN_*`` function returns a list of *cases*; a case is a dict
with ``workload`` (description), ``strategy`` (what is being measured),
``run`` (zero-argument callable doing the work), and ``metric``
(callable mapping the run's return value to a facts-derived count).
``benchmarks/harness.py`` times every case and prints one table per
experiment; the ``bench_eNN_*.py`` modules wrap the same cases with
pytest-benchmark.
"""

from __future__ import annotations

from typing import Callable

from repro.engine import evaluate
from repro.lps import LPSProgram, LPSRule, Quantifier, evaluate_lps, evaluate_translated
from repro.magic import evaluate_magic
from repro.parser import parse_atom, parse_program, parse_query, parse_rules
from repro.program.rule import Atom, Literal
from repro.terms.term import Var
from repro.transform import compile_ldl15, eliminate_negation
from repro.workloads import (
    BOOK_DEAL_PROGRAM,
    BOOK_PAIR_PROGRAM,
    ORDERED_SUM_PROGRAM,
    SUPPLIER_PROGRAM,
    TC_PROGRAM,
    TC_SCOPED_PROGRAM,
    bom,
    books,
    chain_family,
    generation_family,
    supplies,
    tree_family,
)

ANCESTOR_RULES = """
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
"""

SG_RULES = """
sg(X, Y) <- siblings(X, Y).
sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
"""

YOUNG_RULES = SG_RULES + """
a(X, Y) <- p(X, Y).
a(X, Y) <- a(X, Z), a(Z, Y).
has_desc(X) <- a(X, _).
young(X, <Y>) <- sg(X, Y), ~has_desc(X).
"""


def case(workload: str, strategy: str, run: Callable, metric: Callable) -> dict:
    return {
        "workload": workload,
        "strategy": strategy,
        "run": run,
        "metric": metric,
    }


def _eval_case(workload, program, edb, strategy):
    def run():
        # a fresh collector per run: the harness reads per-phase
        # (plan/match/grouping) and per-layer timings off the result.
        from repro.observe import MetricsCollector

        return evaluate(
            program, edb=edb, strategy=strategy, metrics=MetricsCollector()
        )

    return case(workload, strategy, run, lambda r: r.total_facts)


def _magic_case(workload, program, edb, query):
    def run():
        return evaluate_magic(program, query, edb=edb)

    return case(workload, "magic", run, lambda r: r.total_facts)


# -- E1: naive vs semi-naive on transitive closure -------------------------

def e01_ancestor() -> list[dict]:
    cases = []
    for n in (32, 64, 128):
        edb = chain_family(n)
        program = parse_rules(ANCESTOR_RULES)
        for strategy in ("naive", "seminaive"):
            cases.append(_eval_case(f"chain n={n}", program, edb, strategy))
    edb = tree_family(depth=6, fanout=2)
    program = parse_rules(ANCESTOR_RULES)
    for strategy in ("naive", "seminaive"):
        cases.append(_eval_case("tree d=6 f=2", program, edb, strategy))
    return cases


# -- E2: bound ancestor query, full bottom-up vs magic ----------------------

def e02_magic_ancestor() -> list[dict]:
    cases = []
    program = parse_rules(ANCESTOR_RULES)
    for chains in (2, 8, 32):
        edb = []
        for c in range(chains):
            edb.extend(chain_family(48, prefix=f"c{c}_"))
        query = parse_query("? anc(c0_0, X).")
        workload = f"{chains} chains x 48"
        cases.append(_eval_case(workload, program, edb, "seminaive"))
        cases.append(_magic_case(workload, program, edb, query))
    return cases


# -- E3: same generation, bottom-up vs magic -------------------------------

def e03_same_generation() -> list[dict]:
    cases = []
    program = parse_rules(SG_RULES)
    for generations, width in ((4, 6), (6, 8)):
        edb = generation_family(generations, width)
        workload = f"gens={generations} width={width}"
        query = parse_query(f"? sg(g_{generations - 1}_0, Y).")
        cases.append(_eval_case(workload, program, edb, "seminaive"))
        cases.append(_magic_case(workload, program, edb, query))
    return cases


# -- E4: the young program (negation + grouping + magic) --------------------

def e04_young() -> list[dict]:
    cases = []
    program, _ = parse_program(YOUNG_RULES)
    for generations, width in ((4, 4), (5, 6)):
        edb = generation_family(generations, width)
        workload = f"gens={generations} width={width}"
        query = parse_query(f"? young(g_{generations - 1}_0, S).")
        cases.append(_eval_case(workload, program, edb, "seminaive"))
        cases.append(_magic_case(workload, program, edb, query))
    return cases


# -- E5: grouping cost --------------------------------------------------------

def e05_grouping() -> list[dict]:
    cases = []
    program = parse_rules(SUPPLIER_PROGRAM)
    for suppliers, per in ((50, 10), (200, 10), (50, 80)):
        edb = supplies(suppliers, per, seed=1)
        workload = f"{suppliers} suppliers x {per} parts"
        cases.append(_eval_case(workload, program, edb, "seminaive"))
    return cases


# -- E6: parts explosion, three encodings -----------------------------------

def e06_parts_explosion() -> list[dict]:
    cases = []
    paper_facts, _ = bom(depth=2, fanout=2, seed=7)
    cases.append(
        _eval_case("7 parts (paper tc)", parse_rules(TC_PROGRAM), paper_facts, "seminaive")
    )
    for depth, fanout in ((2, 2), (3, 2)):
        facts, expected = bom(depth=depth, fanout=fanout, seed=7)
        workload = f"{len(expected)} parts"
        scoped = parse_rules(TC_SCOPED_PROGRAM)
        ordered = parse_rules(ORDERED_SUM_PROGRAM)
        cases.append(
            case(
                workload,
                "scoped-tc",
                lambda p=scoped, f=facts: evaluate(p, edb=f),
                lambda r: r.total_facts,
            )
        )
        cases.append(
            case(
                workload,
                "ordered-sum",
                lambda p=ordered, f=facts: evaluate(p, edb=f),
                lambda r: r.total_facts,
            )
        )
    return cases


# -- E7: negation vs its grouping encoding (Section 3.3) ---------------------

def e07_neg_to_grouping() -> list[dict]:
    src = ANCESTOR_RULES + """
    person(X) <- parent(X, _).
    excl(X, Y, Z) <- anc(X, Y), person(Z), ~anc(X, Z).
    """
    cases = []
    for n in (12, 24):
        edb = chain_family(n)
        program = parse_rules(src)
        positive = eliminate_negation(program)
        workload = f"chain n={n}"
        cases.append(_eval_case(workload, program, edb, "seminaive"))
        cases.append(
            case(
                workload,
                "neg-as-grouping",
                lambda p=positive, f=edb: evaluate(p, edb=f),
                lambda r: r.total_facts,
            )
        )
    return cases


# -- E8: LDL1.5 head terms vs handwritten LDL1 -------------------------------

def _teaching_facts(teachers: int, students: int, days: int) -> list[Atom]:
    from repro.terms.term import Const

    facts = []
    for t in range(teachers):
        for s in range(students):
            facts.append(
                Atom(
                    "r",
                    (
                        Const(f"t{t}"),
                        Const(f"s{s}"),
                        Const(f"c{(t + s) % 7}"),
                        Const(f"d{(t * s) % days}"),
                    ),
                )
            )
    return facts


LDL15_TEACHING = "out(T, <S>, <D>) <- r(T, S, C, D)."

HANDWRITTEN_TEACHING = """
out_s(T, <S>) <- r(T, S, C, D).
out_d(T, <D>) <- r(T, S, C, D).
out(T, SS, DS) <- out_s(T, SS), out_d(T, DS).
"""


def e08_head_terms() -> list[dict]:
    cases = []
    for teachers, students in ((20, 20), (40, 40)):
        edb = _teaching_facts(teachers, students, days=5)
        workload = f"{teachers}x{students} teaching facts"
        compiled = compile_ldl15(parse_rules(LDL15_TEACHING))
        handwritten = parse_rules(HANDWRITTEN_TEACHING)
        cases.append(
            case(
                workload,
                "ldl15-compiled",
                lambda p=compiled, f=edb: evaluate(p, edb=f),
                lambda r: r.total_facts,
            )
        )
        cases.append(
            case(
                workload,
                "handwritten",
                lambda p=handwritten, f=edb: evaluate(p, edb=f),
                lambda r: r.total_facts,
            )
        )
    return cases


# -- E9: LPS direct vs Theorem-3 translation ---------------------------------

def _lps_disj() -> LPSProgram:
    return LPSProgram(
        [
            LPSRule(
                parse_atom("disj(X, Y)"),
                [Quantifier("Ex", "X"), Quantifier("Ey", "Y")],
                [Literal(Atom("!=", (Var("Ex"), Var("Ey"))))],
            )
        ]
    )


def _lps_facts(sets: int) -> list[Atom]:
    return [
        parse_atom(f"s({{{i}, {i + 1}, {i + 2}}})") for i in range(sets)
    ]


def e09_lps() -> list[dict]:
    cases = []
    program = _lps_disj()
    for sets in (6, 12):
        facts = _lps_facts(sets)
        workload = f"{sets} three-element sets"
        cases.append(
            case(
                workload,
                "lps-direct",
                lambda f=facts: evaluate_lps(program, f),
                lambda db: len(db),
            )
        )
        cases.append(
            case(
                workload,
                "ldl1-translated",
                lambda f=facts: evaluate_translated(program, f),
                lambda r: r.total_facts,
            )
        )
    return cases


# -- E10: set enumeration (book deals) ---------------------------------------

def e10_book_deal() -> list[dict]:
    cases = []
    for count, program_src, label in (
        (40, BOOK_PAIR_PROGRAM, "pairs"),
        (120, BOOK_PAIR_PROGRAM, "pairs"),
        (25, BOOK_DEAL_PROGRAM, "triples"),
    ):
        edb = books(count, seed=3)
        program = parse_rules(program_src)
        cases.append(
            case(
                f"{count} books ({label})",
                label,
                lambda p=program, f=edb: evaluate(p, edb=f),
                lambda r: r.total_facts,
            )
        )
    return cases


# -- E11: stratification and layering independence ---------------------------

def _layered_program(layers: int) -> str:
    rules = ["base0(X) <- src(X)."]
    for i in range(1, layers):
        rules.append(f"base{i}(X) <- base{i - 1}(X), ~skip{i - 1}(X).")
        rules.append(f"skip{i}(X) <- base{i}(X), X < 0.")
    return "\n".join(rules)


def e11_layering() -> list[dict]:
    from repro.program.stratify import linear_layerings, stratify

    cases = []
    for layers in (8, 32):
        src = _layered_program(layers)
        program = parse_rules(src)
        cases.append(
            case(
                f"{layers} strata",
                "stratify",
                lambda p=program: stratify(p),
                lambda layering: len(layering),
            )
        )
    src = _layered_program(6)
    program = parse_rules(src)
    edb = [parse_atom(f"src({i})") for i in range(50)]

    def run_alternatives():
        results = [
            evaluate(program, edb=edb, layering=layering).database
            for layering in linear_layerings(program, limit=4)
        ]
        assert all(db == results[0] for db in results)
        return results[0]

    cases.append(
        case("6 strata, 4 layerings", "theorem2-check", run_alternatives, len)
    )
    return cases


EXPERIMENTS: dict[str, Callable[[], list[dict]]] = {
    "E1": e01_ancestor,
    "E2": e02_magic_ancestor,
    "E3": e03_same_generation,
    "E4": e04_young,
    "E5": e05_grouping,
    "E6": e06_parts_explosion,
    "E7": e07_neg_to_grouping,
    "E8": e08_head_terms,
    "E9": e09_lps,
    "E10": e10_book_deal,
    "E11": e11_layering,
}

EXPERIMENT_TITLES = {
    "E1": "naive vs semi-naive bottom-up (ancestor, Section 1)",
    "E2": "bound queries: full bottom-up vs magic (Section 6)",
    "E3": "same-generation: bottom-up vs magic (Section 6 rules 3-4)",
    "E4": "young: negation + grouping + magic (Section 6 running example)",
    "E5": "set grouping cost (Section 1 supplier example)",
    "E6": "parts explosion encodings (Section 1 tc program)",
    "E7": "negation vs negation-as-grouping (Section 3.3)",
    "E8": "LDL1.5 head terms: compiled vs handwritten (Section 4.2)",
    "E9": "LPS: direct interpreter vs Theorem-3 translation (Section 5)",
    "E10": "set enumeration: book deals (Section 1)",
    "E11": "layering: admissibility check and Theorem 2 (Section 3.1)",
}


# -- E12: top-down tabling vs magic vs full bottom-up -------------------------

def e12_topdown() -> list[dict]:
    from repro.engine.topdown import evaluate_topdown

    cases = []
    program = parse_rules(ANCESTOR_RULES)
    for chains in (4, 16):
        edb = []
        for c in range(chains):
            edb.extend(chain_family(40, prefix=f"c{c}_"))
        query = parse_query("? anc(c0_0, X).")
        workload = f"{chains} chains x 40"
        cases.append(_eval_case(workload, program, edb, "seminaive"))
        cases.append(_magic_case(workload, program, edb, query))
        cases.append(
            case(
                workload,
                "topdown-tabled",
                lambda p=program, f=edb, q=query: evaluate_topdown(p, q, edb=f),
                lambda pair: pair[1].answers,
            )
        )
    young_program, _ = parse_program(YOUNG_RULES)
    edb = generation_family(5, 5)
    query = parse_query("? young(g_4_0, S).")
    workload = "young gens=5 width=5"
    cases.append(_eval_case(workload, young_program, edb, "seminaive"))
    cases.append(_magic_case(workload, young_program, edb, query))
    cases.append(
        case(
            workload,
            "topdown-tabled",
            lambda p=young_program, f=edb, q=query: evaluate_topdown(p, q, edb=f),
            lambda pair: pair[1].answers,
        )
    )
    return cases


# -- E13: Generalized vs Supplementary Magic Sets ----------------------------

def e13_supplementary() -> list[dict]:
    from repro.magic import magic_rewrite, supplementary_rewrite

    def magic_with(rewrite, program, edb, query):
        def run():
            return evaluate_magic(program, query, edb=edb, rewrite=rewrite)

        return run

    cases = []
    program = parse_rules(SG_RULES)
    for generations, width in ((5, 6), (6, 10)):
        edb = generation_family(generations, width)
        query = parse_query(f"? sg(g_{generations - 1}_0, Y).")
        workload = f"sg gens={generations} width={width}"
        cases.append(
            case(
                workload,
                "generalized-magic",
                magic_with(magic_rewrite, program, edb, query),
                lambda r: r.stats.saturation.rule_firings,
            )
        )
        cases.append(
            case(
                workload,
                "supplementary",
                magic_with(supplementary_rewrite, program, edb, query),
                lambda r: r.stats.saturation.rule_firings,
            )
        )
    return cases


EXPERIMENTS["E12"] = e12_topdown
EXPERIMENTS["E13"] = e13_supplementary
EXPERIMENT_TITLES["E12"] = "top-down tabling vs magic vs bottom-up (Section 1 PROLOG contrast)"
EXPERIMENT_TITLES["E13"] = "Generalized vs Supplementary Magic Sets (Section 6 footnote 4)"


# -- E14: sip strategy ablation ----------------------------------------------

def e14_sips() -> list[dict]:
    from repro.magic import bound_first_sip, magic_rewrite

    def magic_with_sip(strategy, program, edb, query):
        def run():
            return evaluate_magic(
                program,
                query,
                edb=edb,
                rewrite=lambda p, q: magic_rewrite(p, q, sip_strategy=strategy),
            )

        return run

    # written order is adversarial: the recursive literal precedes the
    # literal that would bind its first argument.
    adversarial = """
    t(X, Y) <- t(Z, Y), e(X, Z).
    t(X, Y) <- e(X, Y).
    """
    cases = []
    program = parse_rules(adversarial)
    for chains in (4, 16):
        edb = []
        for c in range(chains):
            for i in range(30):
                edb.append(parse_atom(f"e(c{c}_{i}, c{c}_{i + 1})"))
        query = parse_query("? t(c0_0, X).")
        workload = f"{chains} chains x 30"
        cases.append(
            case(
                workload,
                "left-to-right-sip",
                magic_with_sip(None, program, edb, query),
                lambda r: r.total_facts,
            )
        )
        cases.append(
            case(
                workload,
                "bound-first-sip",
                magic_with_sip(bound_first_sip, program, edb, query),
                lambda r: r.total_facts,
            )
        )
    return cases


EXPERIMENTS["E14"] = e14_sips
EXPERIMENT_TITLES["E14"] = "sip strategies: left-to-right vs bound-first (Section 6 sips)"


# -- E15: join planning — static heuristic vs cardinality-aware ---------------

def e15_planner() -> list[dict]:
    from repro.terms.term import Const

    # adversarially written: the huge relation comes first in the body.
    src = """
    hit(Y, Z) <- big(X, Y), tiny(X), mid(Y, Z).
    """
    cases = []
    for big_size in (2000, 8000):
        edb = []
        for i in range(big_size):
            edb.append(Atom("big", (Const(i % 200), Const(i))))
        for i in range(5):
            edb.append(Atom("tiny", (Const(i),)))
        for i in range(0, big_size, 10):
            edb.append(Atom("mid", (Const(i), Const(i + 1))))
        program = parse_rules(src)
        workload = f"big={big_size}"
        for planner in ("static", "sized"):
            cases.append(
                case(
                    workload,
                    f"{planner}-planner",
                    lambda p=program, f=edb, pl=planner: evaluate(
                        p, edb=f, planner=pl
                    ),
                    lambda r: r.total_facts,
                )
            )
    return cases


EXPERIMENTS["E15"] = e15_planner
EXPERIMENT_TITLES["E15"] = "join planning: static heuristic vs cardinality-aware"


# -- E16: incremental maintenance vs from-scratch recomputation ----------------

def e16_incremental() -> list[dict]:
    from repro.engine.incremental import IncrementalModel
    from repro.terms.term import Const

    program = parse_rules(ANCESTOR_RULES)
    cases = []
    for n in (100, 400):
        base = chain_family(n)
        new_edge = Atom("parent", (Const(f"p{n}"), Const(f"p{n + 1}")))

        def scratch(base=base, new_edge=new_edge):
            return evaluate(program, edb=list(base) + [new_edge])

        def incremental(base=base, new_edge=new_edge):
            model = IncrementalModel(program, base, check=False)
            model.add_facts([new_edge])
            return model

        # time only the update against a prebuilt model
        prebuilt = IncrementalModel(program, base, check=False)
        counter = [n]

        def update_only(prebuilt=prebuilt, counter=counter):
            i = counter[0]
            counter[0] += 1
            prebuilt.add_facts(
                [Atom("parent", (Const(f"p{i}"), Const(f"p{i + 1}")))]
            )
            return prebuilt

        workload = f"chain n={n}, +1 edge"
        cases.append(
            case(workload, "scratch-reeval", scratch, lambda r: r.total_facts)
        )
        cases.append(
            case(
                workload,
                "incremental-delta",
                update_only,
                lambda m: len(m.database),
            )
        )
    return cases


EXPERIMENTS["E16"] = e16_incremental
EXPERIMENT_TITLES["E16"] = "incremental maintenance vs from-scratch recomputation"


# -- E17: well-founded semantics cost (the §7 open problem answered) ----------

def e17_wellfounded() -> list[dict]:
    from repro.semantics.wellfounded import wellfounded

    cases = []
    # (a) on stratified programs: total model, overhead vs layered eval
    strat_src = """
    reach(X, Y) <- e(X, Y).
    reach(X, Y) <- reach(X, Z), e(Z, Y).
    has_out(X) <- e(X, _).
    sink(Y) <- e(_, Y), ~has_out(Y).
    """
    program = parse_rules(strat_src)
    edb = [parse_atom(f"e({i}, {i + 1})") for i in range(40)]
    cases.append(_eval_case("stratified chain n=40", program, edb, "seminaive"))
    cases.append(
        case(
            "stratified chain n=40",
            "wellfounded",
            lambda p=program, f=edb: wellfounded(p, edb=f),
            lambda m: len(m.true),
        )
    )
    # (b) win-move games (not stratifiable): scaling of the alternation
    for n in (30, 80):
        import random as _random

        rng = _random.Random(5)
        moves = " ".join(
            f"move(n{rng.randrange(n)}, n{rng.randrange(n)})."
            for _ in range(3 * n)
        )
        game, _ = parse_program(moves + " win(X) <- move(X, Y), ~win(Y).")
        cases.append(
            case(
                f"win-move {n} nodes",
                "wellfounded",
                lambda p=game: wellfounded(p),
                lambda m: len(m.true) + len(m.undefined),
            )
        )
    return cases


EXPERIMENTS["E17"] = e17_wellfounded
EXPERIMENT_TITLES["E17"] = "well-founded semantics (Section 7 open problem 1)"


# -- E18: durable restart paths: cold start vs WAL replay vs snapshot ---------

def e18_persistence() -> list[dict]:
    import atexit
    import shutil
    import tempfile

    from repro.storage.store import DurableStore

    program = parse_rules(ANCESTOR_RULES)
    n = 120
    facts = chain_family(n)
    batches = [facts[i : i + 10] for i in range(0, len(facts), 10)]

    def populate(root, checkpoint):
        store = DurableStore(program, root, fsync="never").open()
        for batch in batches:
            store.add_facts(batch)
        if checkpoint:
            store.checkpoint()
        store.close()

    # fixture stores built once; reopening them is read-only, so the
    # timed runs are repeatable
    wal_dir = tempfile.mkdtemp(prefix="ldl1-bench-wal-")
    snap_dir = tempfile.mkdtemp(prefix="ldl1-bench-snap-")
    for root in (wal_dir, snap_dir):
        atexit.register(shutil.rmtree, root, ignore_errors=True)
    populate(wal_dir, checkpoint=False)
    populate(snap_dir, checkpoint=True)

    def cold_start():
        root = tempfile.mkdtemp(prefix="ldl1-bench-cold-")
        try:
            store = DurableStore(program, root, fsync="never").open()
            store.add_facts(facts)
            nfacts = len(store.database)
            store.close()
            return nfacts
        finally:
            shutil.rmtree(root, ignore_errors=True)

    def reopen(root):
        store = DurableStore(program, root, fsync="never").open()
        nfacts = len(store.database)
        store.close()
        return nfacts

    workload = f"chain n={n}, restart"
    return [
        case(workload, "cold-start", cold_start, lambda f: f),
        case(workload, "wal-replay", lambda: reopen(wal_dir), lambda f: f),
        case(
            workload,
            "snapshot-restore",
            lambda: reopen(snap_dir),
            lambda f: f,
        ),
    ]


EXPERIMENTS["E18"] = e18_persistence
EXPERIMENT_TITLES["E18"] = "durable restart: cold start vs WAL replay vs snapshot"


def e19_server() -> list[dict]:
    """Server throughput/latency: concurrent clients vs one session.

    One shared server (background event-loop thread, torn down atexit)
    serves every case.  ``read-only`` cases issue bound magic queries
    only; ``mixed`` cases interleave one update per three queries, and
    every run removes what it added so the EDB — and therefore the cost
    of later runs — is unchanged.
    """
    import asyncio
    import atexit
    import threading

    from repro.api import LDL
    from repro.server import Client, LDLServer

    n = 60
    requests_per_client = 30
    session = LDL(ANCESTOR_RULES)
    session.add_atoms(chain_family(n))
    session.model()  # warm: measure serving, not the first fixpoint

    server = LDLServer(session, port=0)
    started = threading.Event()

    async def serve():
        await server.start()
        started.set()
        await server.serve(handle_signals=False)

    thread = threading.Thread(
        target=lambda: asyncio.run(serve()), daemon=True
    )
    thread.start()
    if not started.wait(10):
        raise RuntimeError("benchmark server did not start")
    atexit.register(server.request_stop)
    port = server.port

    def read_worker(seed: int) -> int:
        with Client("127.0.0.1", port) as client:
            for i in range(requests_per_client):
                client.query(
                    f"? anc(p{(seed + i) % n}, X).", strategy="magic"
                )
        return requests_per_client

    def mixed_worker(seed: int) -> int:
        with Client("127.0.0.1", port) as client:
            added = []
            for i in range(requests_per_client):
                if i % 3 == 0:
                    row = (f"x{seed}_{i}", f"y{seed}_{i}")
                    client.add_facts("parent", [row])
                    added.append(row)
                else:
                    client.query(
                        f"? anc(p{(seed + i) % n}, X).", strategy="magic"
                    )
            client.remove_facts("parent", added)
        return requests_per_client

    def run_clients(worker, count: int) -> int:
        totals = []
        errors = []

        def target(seed):
            try:
                totals.append(worker(seed))
            except Exception as exc:  # noqa: BLE001 - fail the benchmark
                errors.append(exc)

        threads = [
            threading.Thread(target=target, args=(i,)) for i in range(count)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return sum(totals)

    cases = []
    for clients in (1, 4, 8):
        cases.append(
            case(
                f"anc chain n={n}, {clients} clients",
                "read-only",
                lambda c=clients: run_clients(read_worker, c),
                lambda requests: requests,
            )
        )
        cases.append(
            case(
                f"anc chain n={n}, {clients} clients",
                "mixed-writes",
                lambda c=clients: run_clients(mixed_worker, c),
                lambda requests: requests,
            )
        )

    # -- hot-query answer cache under heavy fan-in ------------------------
    # 100+ clients hammer a small set of bound queries; the cached leg
    # serves them from the answer cache (hit rate reported), the
    # uncached leg bypasses it per request ("cache": false).  The third
    # leg adds writers on a predicate the hot queries don't depend on:
    # precise invalidation means the hit rate should stay high.
    import time

    hot_clients = 100
    hot_requests = 10
    hot_queries = [f"? anc(p{i}, X)." for i in range(8)]

    def percentile(ordered, q):
        if not ordered:
            return 0.0
        return ordered[min(len(ordered) - 1, round(q * (len(ordered) - 1)))]

    def hot_worker(seed: int, use_cache: bool, latencies: list) -> int:
        local = []
        with Client("127.0.0.1", port) as client:
            for i in range(hot_requests):
                text = hot_queries[(seed + i) % len(hot_queries)]
                t0 = time.perf_counter()
                client.query(
                    text, strategy="magic", cache=None if use_cache else False
                )
                local.append(time.perf_counter() - t0)
        latencies.extend(local)
        return hot_requests

    def unrelated_writer(seed: int) -> int:
        """Writes on a predicate outside the hot queries' support set."""
        with Client("127.0.0.1", port) as client:
            added = []
            for i in range(hot_requests):
                row = (f"u{seed}_{i}", i)
                client.add_facts("unrelated", [row])
                added.append(row)
            client.remove_facts("unrelated", added)
        return 2 * hot_requests

    def run_hot(count: int, use_cache: bool, writers: int = 0) -> dict:
        before = server.cache.report() if server.cache is not None else None
        latencies: list = []
        totals = []
        errors = []

        def target(worker, *args):
            try:
                totals.append(worker(*args))
            except Exception as exc:  # noqa: BLE001 - fail the benchmark
                errors.append(exc)

        threads = [
            threading.Thread(target=target, args=(hot_worker, i, use_cache, latencies))
            for i in range(count)
        ] + [
            threading.Thread(target=target, args=(unrelated_writer, i))
            for i in range(writers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        ordered = sorted(latencies)
        out = {
            "requests": sum(totals),
            "p50_ms": percentile(ordered, 0.50) * 1000,
            "p99_ms": percentile(ordered, 0.99) * 1000,
        }
        if use_cache and before is not None:
            after = server.cache.report()
            lookups = (after["hits"] + after["misses"]) - (
                before["hits"] + before["misses"]
            )
            out["hit_rate"] = (
                (after["hits"] - before["hits"]) / lookups if lookups else 0.0
            )
            out["entries_invalidated"] = (
                after["entries_invalidated"] - before["entries_invalidated"]
            )
        return out

    if server.cache is not None:  # REPRO_ANSWER_CACHE=off drops these legs
        cases.append(
            case(
                f"hot set, {hot_clients} clients",
                "cached",
                lambda: run_hot(hot_clients, True),
                lambda r: r["requests"],
            )
        )
        cases.append(
            case(
                f"hot set, {hot_clients} clients",
                "uncached",
                lambda: run_hot(hot_clients, False),
                lambda r: r["requests"],
            )
        )
        cases.append(
            case(
                f"hot set + unrelated writes, {hot_clients} clients",
                "cached",
                lambda: run_hot(hot_clients, True, writers=4),
                lambda r: r["requests"],
            )
        )
    return cases


EXPERIMENTS["E19"] = e19_server
EXPERIMENT_TITLES["E19"] = "server throughput: concurrent clients, read-only vs mixed"


# -- E21: executor ablation — tuple / batch / specialized / vector ------------

#: The executor stack, one ablation layer at a time: ``tuple`` is the
#: one-binding-at-a-time recursion; ``batch`` the set-at-a-time
#: term-lane operators with specialization AND vector kernels off;
#: ``specialized`` the compiled ID-row closures with vector kernels
#: off (the PR 6 configuration); ``vector`` everything on — rows-mode
#: emission plus whole-column kernels.
E21_MODES = ("tuple", "batch", "specialized", "vector")


def _ablation_case(workload, program, edb, mode):
    def run():
        from repro.engine.exec import (
            set_specialization,
            set_vectorization,
            specialization,
            vectorization,
        )
        from repro.observe import MetricsCollector

        if mode == "tuple":
            return evaluate(program, edb=edb, executor="tuple")
        prev_spec = specialization()
        prev_vec = vectorization()
        set_specialization("off" if mode == "batch" else "on")
        set_vectorization("on" if mode == "vector" else "off")
        try:
            return evaluate(
                program, edb=edb, executor="batch",
                metrics=MetricsCollector(),
            )
        finally:
            set_specialization(prev_spec)
            set_vectorization(prev_vec)

    return case(workload, mode, run, lambda r: r.total_facts)


def e20_executor() -> list[dict]:
    from repro.terms.term import Const

    cases = []
    anc = parse_rules(ANCESTOR_RULES)
    for n in (200, 400):
        edb = chain_family(n)
        for mode in E21_MODES:
            cases.append(_ablation_case(f"anc chain n={n}", anc, edb, mode))
    # same-generation stresses the probe path: wide deltas joined twice
    # per round against the parent relation.
    sg = parse_rules(SG_RULES)
    edb = generation_family(8, 14)
    for mode in E21_MODES:
        cases.append(_ablation_case("sg 8x14", sg, edb, mode))
    # wide-relation high-fan-out join: 40 keys, 60x60 rows per key —
    # 144,000 output tuples from one non-recursive rule.  This is the
    # shape the bulk probe and fused last-step emission exist for: huge
    # buckets, no recursion, throughput limited purely by per-row
    # dispatch (watch rows_per_dispatch climb in the vector leg).
    wide = parse_rules("j(X, Y) <- r(K, X), s(K, Y).")
    wide_edb = []
    for k in range(40):
        key = Const(f"k{k}")
        for i in range(60):
            wide_edb.append(Atom("r", (key, Const(f"x{k}_{i}"))))
            wide_edb.append(Atom("s", (key, Const(f"y{k}_{i}"))))
    for mode in E21_MODES:
        cases.append(_ablation_case("wide join 40keys 60x60", wide, wide_edb, mode))
    return cases


EXPERIMENTS["E21"] = e20_executor
EXPERIMENT_TITLES["E21"] = (
    "executor ablation: tuple / batch / specialized / vector"
)


# -- E22: differential maintenance vs cone recompute --------------------------

def e22_maintenance() -> list[dict]:
    from collections import Counter

    from repro.engine.incremental import IncrementalModel
    from repro.terms.term import Const
    from repro.workloads.social import SOCIAL_PROGRAM, social_network

    program = parse_rules(SOCIAL_PROGRAM)
    cases = []

    # (a) single-fact deletion latency on a ~100k-fact recursive model:
    # retract one follow of a *peripheral* user (nobody follows them)
    # — the common case differential maintenance exists for.  The
    # support cone is one influence column; cone recompute rebuilds
    # the whole closure either way.
    edb = social_network(300)
    follows = [a for a in edb if a.pred == "follows"]
    indegree = Counter(a.args[1] for a in follows)
    target = next(a for a in follows if indegree[a.args[0]] == 0)
    for mode in ("recompute", "delta"):
        model = IncrementalModel(program, edb, check=False, maintain=mode)

        def delete_one(model=model, fact=target):
            # deterministic churn: every sample deletes the *same*
            # edge on the same model state (restoring it first from
            # the second sample on), so the captured minimum doesn't
            # depend on which follower a sampling pass happens to hit.
            if fact not in model.edb_facts:
                model.add_facts([fact])
            model.remove_facts([fact])
            return model

        cases.append(
            case(
                "social n=300, del 1 follow",
                f"{mode}-delete",
                delete_one,
                lambda m: len(m.database),
            )
        )

    # (b) sustained mixed add/remove/query throughput vs model size:
    # each run churns three fresh follow edges through the model
    # (insert, read the negation-guarded recommendations, retract).
    for users in (60, 120):
        churn_edb = social_network(users)
        for mode in ("recompute", "delta"):
            model = IncrementalModel(
                program, churn_edb, check=False, maintain=mode
            )
            counter = [0]

            def mixed(model=model, counter=counter, users=users):
                batch = counter[0]
                counter[0] += 1
                ops = 0
                fresh = []
                for i in range(3):
                    # fresh follower names keep inserts genuinely new;
                    # fixed followees keep per-run work comparable.
                    fact = Atom(
                        "follows",
                        (
                            Const(f"w{batch}_{i}"),
                            Const(f"u{(i * 17) % users}"),
                        ),
                    )
                    model.add_facts([fact])
                    fresh.append(fact)
                    ops += 1
                ops += sum(1 for _ in model.database.atoms("recommend"))
                for fact in fresh:
                    model.remove_facts([fact])
                    ops += 1
                return ops

            cases.append(
                case(
                    f"social n={users}, mixed ops",
                    f"{mode}-mixed",
                    mixed,
                    lambda ops: ops,
                )
            )
    return cases


EXPERIMENTS["E22"] = e22_maintenance
EXPERIMENT_TITLES["E22"] = "differential maintenance vs cone recompute"


# -- E23: partitioned evaluation — speedup vs worker count --------------------

#: Worker counts for every E23 speedup curve.  ``workers=1`` is the
#: byte-identical serial engine and the per-workload baseline the
#: speedup column divides by.
E23_WORKERS = (1, 2, 4)


def e23_parallel() -> list[dict]:
    """Speedup-vs-workers curves for the partitioned evaluator.

    Three curves reuse the E1/E6/E21 workload shapes (recursive chain,
    parts explosion, wide non-recursive join) so parallel numbers line
    up with the serial tables; the fourth is a large random follows
    graph under the linear reachability program — the one workload big
    enough for partitioning to amortize its fork/shuffle overhead.
    Its edge count defaults to one million and can be scaled with
    ``REPRO_E23_EDGES`` (CI uses a smaller graph to keep the job
    short).  Speedups are only meaningful on multi-core machines: on a
    single CPU the curve measures pure partitioning overhead.
    """
    import os

    from repro.terms.term import Const
    from repro.workloads.social import REACH_PROGRAM, follow_graph

    def parallel_case(workload, program, edb, workers):
        def run():
            from repro.observe import MetricsCollector

            return evaluate(
                program, edb=edb, workers=workers,
                metrics=MetricsCollector(),
            )

        return case(workload, f"workers={workers}", run, lambda r: r.total_facts)

    cases = []
    anc = parse_rules(ANCESTOR_RULES)
    anc_edb = chain_family(400)
    for workers in E23_WORKERS:
        cases.append(parallel_case("anc chain n=400", anc, anc_edb, workers))
    scoped = parse_rules(TC_SCOPED_PROGRAM)
    bom_edb, expected = bom(depth=3, fanout=2, seed=7)
    for workers in E23_WORKERS:
        cases.append(
            parallel_case(f"scoped-tc {len(expected)} parts", scoped, bom_edb, workers)
        )
    wide = parse_rules("j(X, Y) <- r(K, X), s(K, Y).")
    wide_edb = []
    for k in range(40):
        key = Const(f"k{k}")
        for i in range(60):
            wide_edb.append(Atom("r", (key, Const(f"x{k}_{i}"))))
            wide_edb.append(Atom("s", (key, Const(f"y{k}_{i}"))))
    for workers in E23_WORKERS:
        cases.append(
            parallel_case("wide join 40keys 60x60", wide, wide_edb, workers)
        )
    edges = int(os.environ.get("REPRO_E23_EDGES", "1000000"))
    reach_edb = follow_graph(max(10, edges // 5), edges, seed=0)
    reach = parse_rules(REACH_PROGRAM)
    for workers in E23_WORKERS:
        cases.append(
            parallel_case(f"social reach {edges} edges", reach, reach_edb, workers)
        )
    return cases


EXPERIMENTS["E23"] = e23_parallel
EXPERIMENT_TITLES["E23"] = (
    "partitioned evaluation: speedup vs worker count"
)
