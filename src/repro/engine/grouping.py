"""Evaluation of grouping rules (paper Section 3.2, Lemma 3.2.3).

A grouping rule ``p(t1, ..., <Y>, ..., tn) <- body`` is applied *once*
per layer, over the facts of the layers below: bindings of the body are
partitioned into equivalence classes by the interpreted values of the
non-grouped head terms (the paper's ``theta1 == theta2`` relation), and
each non-empty class contributes one fact whose grouped argument is the
finite set of ``Y`` values in the class.

Empty classes contribute nothing — the formula is true with no head
fact "when the set of elements to be grouped is empty" — and finiteness
is automatic over a finite database.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.context import EvalContext, ensure_context
from repro.engine.database import Database
from repro.engine.exec import enumerate_bindings, group_bindings
from repro.errors import EvaluationError
from repro.program.rule import Atom, Rule
from repro.terms.pretty import format_rule
from repro.terms.term import SetVal, Term, Var, intern_term


def apply_grouping_rule(
    rule: Rule, db: Database, context: EvalContext | None = None
) -> Iterator[Atom]:
    """Yield the facts derived by one grouping rule over ``db``.

    This is the paper's ``r(M)`` for rules with a ``<X>`` head
    occurrence: ``p Sigma_j`` for every equivalence class ``Sigma_j``
    with a non-empty, finite grouped set.
    """
    positions = rule.head.group_positions()
    if len(positions) != 1:
        raise EvaluationError(
            f"not a base-LDL1 grouping rule: {format_rule(rule)}"
        )
    group_position = positions[0]
    group_inner = rule.head.args[group_position].inner
    if not isinstance(group_inner, Var):
        raise EvaluationError(
            f"grouping over a non-variable (compile LDL1.5 first): {format_rule(rule)}"
        )
    group_var = group_inner.name
    other_terms: list[tuple[int, Term]] = [
        (i, arg) for i, arg in enumerate(rule.head.args) if i != group_position
    ]

    ctx = ensure_context(context, db)
    bindings = enumerate_bindings(
        db,
        ctx.plan_for(rule),
        executor=ctx.executor,
        metrics=ctx.metrics if ctx.timing else None,
    )
    groups = group_bindings(
        bindings, group_var, other_terms, lambda: format_rule(rule)
    )

    for key, values in groups.items():
        args: list[Term] = [None] * len(rule.head.args)  # type: ignore[list-item]
        for (i, _), value in zip(other_terms, key):
            args[i] = value
        # grouped values are evaluate_ground outputs, and the grouped
        # set is probed heavily downstream (partition, member): build
        # trusted and intern so those probes hit the identity fast path.
        args[group_position] = intern_term(SetVal.from_ground(values))
        yield Atom(rule.head.pred, tuple(args))


def apply_grouping_rules(
    rules, db: Database, context: EvalContext | None = None
) -> list[Atom]:
    """Apply every grouping rule once over ``db`` (the R1(M) step)."""
    ctx = ensure_context(context, db)
    derived: list[Atom] = []
    for rule in rules:
        if ctx.timing:
            start = ctx.metrics.now()
            facts = list(apply_grouping_rule(rule, db, context=ctx))
            ctx.metrics.add_time("grouping", ctx.metrics.now() - start)
        else:
            facts = list(apply_grouping_rule(rule, db, context=ctx))
        if ctx.observing:
            ctx.hooks.on_rule_fired(rule, len(facts))
        derived.extend(facts)
    return derived
