"""Copy-on-write variable bindings for body enumeration.

The seed engine extended bindings by copying a ``dict`` at every
successful match — one copy per literal per candidate tuple, almost all
of which are discarded when a later literal fails.  A
:class:`ChainBinding` instead *links* a new (name, value) pair onto an
immutable parent; a real dict is materialized only when a full body
binding is yielded to a consumer that needs one.

Chains are immutable Mappings: lookup walks the links (bindings are
shallow — bounded by the rule's variable count), and binding a name
that is already bound is forbidden by construction (matching only
extends with *unbound* variables, checking bound ones by equality).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.terms.term import Term

_MISSING = object()


class ChainBinding(Mapping):
    """An immutable binding: a root mapping plus a chain of extensions."""

    __slots__ = ("_parent", "_root", "_name", "_value", "_len")

    def __init__(
        self,
        parent: "ChainBinding | None" = None,
        name: str | None = None,
        value: Term | None = None,
        root: Mapping[str, Term] | None = None,
    ) -> None:
        if name is None:
            # root node wrapping a plain mapping (not copied: callers
            # must not mutate it while the chain is alive)
            self._parent = None
            self._root = {} if root is None else root
            self._name = None
            self._value = None
            self._len = len(self._root)
        else:
            assert parent is not None
            self._parent = parent
            self._root = parent._root
            self._name = name
            self._value = value
            self._len = parent._len + 1

    def bind(self, name: str, value: Term) -> "ChainBinding":
        """Extend with a new pair; ``name`` must not be bound yet."""
        return ChainBinding(self, name, value)

    # -- Mapping protocol --------------------------------------------------

    def __getitem__(self, key: str) -> Term:
        node = self
        while node._name is not None:
            if node._name == key:
                return node._value
            node = node._parent
        value = node._root.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def get(self, key: str, default=None):
        node = self
        while node._name is not None:
            if node._name == key:
                return node._value
            node = node._parent
        return node._root.get(key, default)

    def __contains__(self, key: object) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __len__(self) -> int:
        return self._len

    def __iter__(self) -> Iterator[str]:
        return iter(self.materialize())

    def items(self):
        return self.materialize().items()

    def keys(self):
        return self.materialize().keys()

    def values(self):
        return self.materialize().values()

    def materialize(self) -> dict[str, Term]:
        """Flatten to a plain dict (insertion order: root, then chain)."""
        pairs = []
        node = self
        while node._name is not None:
            pairs.append((node._name, node._value))
            node = node._parent
        out = dict(node._root)
        for name, value in reversed(pairs):
            out[name] = value
        return out

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ChainBinding):
            return self.materialize() == other.materialize()
        if isinstance(other, Mapping):
            return self.materialize() == dict(other)
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return f"ChainBinding({self.materialize()!r})"


#: Shared empty binding — the start point of most body enumerations.
EMPTY_BINDING = ChainBinding()


def as_chain(binding: Mapping[str, Term] | None) -> ChainBinding:
    """Wrap a mapping as a chain root (no copy); pass chains through."""
    if binding is None or not binding:
        return EMPTY_BINDING
    if isinstance(binding, ChainBinding):
        return binding
    return ChainBinding(root=binding)


def materialize(binding: Mapping[str, Term]) -> dict[str, Term]:
    """A plain-dict view of any binding representation."""
    if isinstance(binding, ChainBinding):
        return binding.materialize()
    return dict(binding)


def extended(binding: Mapping[str, Term]) -> Mapping[str, Term]:
    """The value to yield when a match succeeds without new bindings.

    Chains are immutable and safe to share; plain dicts are defensively
    copied (the seed's behavior) so external callers never alias a
    mutable input.
    """
    if isinstance(binding, ChainBinding):
        return binding
    return dict(binding)
