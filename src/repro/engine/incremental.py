"""Incremental maintenance of the standard model under EDB updates.

A deductive database is rarely evaluated once: base facts arrive and
retire.  This module maintains the computed minimal model across
updates without full recomputation:

* the *affected cone* of an update is the set of predicates that
  transitively depend on a changed predicate (dependency-graph
  ancestors); everything outside the cone keeps its extension —
  stratification guarantees it cannot change;
* under the default ``"delta"`` maintenance mode, every update routes
  through the differential engine in :mod:`repro.engine.maintain`:
  support counting for non-recursive SCCs, DRed for recursive ones,
  touched-group regrouping for grouping heads — cost proportional to
  the change, and a net :class:`~repro.engine.maintain.DeltaBatch`
  published per update;
* under ``"recompute"`` (the differential oracle, selectable via the
  ``REPRO_MAINTAIN`` environment variable or the ``maintain=``
  constructor argument) the original paths run instead: pure
  insertions whose cone is internally monotone (no grouping head and
  no negation *on cone predicates* among the cone's rules) continue
  the semi-naive fixpoint with the new facts as the delta; anything
  else clears the cone's derived predicates and re-runs the layered
  evaluation restricted to cone rules, over the untouched context.

All paths produce exactly the model a from-scratch evaluation would
(property-tested against each other).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import networkx as nx

from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.evaluator import evaluate_component
from repro.engine.fixpoint import (
    FixpointStats,
    seminaive_rounds,
)
from repro.engine.maintain import (
    MAINTAIN_MODES,
    DeltaBatch,
    Invalidation,
    invalidation_of,
    maintain_mode,
)
from repro.errors import EvaluationError
from repro.observe import EngineHooks, MetricsCollector, emit_event
from repro.program.dependency import dependency_graph, scc_schedule
from repro.program.rule import Atom, Program, canonical_atom
from repro.program.stratify import Layering, stratify
from repro.program.wellformed import check_program


@dataclass
class UpdateStats:
    """What one update cost.

    ``mode`` is ``"maintain"`` for differentially maintained updates,
    ``"delta"``/``"recompute"`` for the legacy semi-naive-continuation
    and cone-recompute paths, ``"restore"`` for snapshot adoption and
    ``"none"`` for no-ops.  The ``overdeleted``/``rederived``/
    ``count_adjusted`` counters are only nonzero under ``"maintain"``;
    ``lsn`` is stamped when the update came through the durable store.
    """

    mode: str = "none"
    affected_predicates: int = 0
    facts_removed: int = 0
    overdeleted: int = 0
    rederived: int = 0
    count_adjusted: int = 0
    lsn: int | None = None
    fixpoint: FixpointStats = field(default_factory=FixpointStats)


@dataclass
class MaintenanceTotals:
    """Lifetime maintenance counters of one model (the server's
    ``stats`` op surfaces :meth:`report`)."""

    updates: int = 0
    delta_updates: int = 0
    recompute_updates: int = 0
    facts_removed: int = 0
    overdeleted: int = 0
    rederived: int = 0
    count_adjusted: int = 0
    last_lsn: int | None = None

    def record(self, stats: UpdateStats) -> None:
        if stats.mode == "none":
            return
        self.updates += 1
        if stats.mode == "maintain":
            self.delta_updates += 1
        elif stats.mode in ("delta", "recompute"):
            self.recompute_updates += 1
        self.facts_removed += stats.facts_removed
        self.overdeleted += stats.overdeleted
        self.rederived += stats.rederived
        self.count_adjusted += stats.count_adjusted
        if stats.lsn is not None:
            self.last_lsn = stats.lsn

    def report(self) -> dict:
        return {
            "updates": self.updates,
            "delta_updates": self.delta_updates,
            "recompute_updates": self.recompute_updates,
            "facts_removed": self.facts_removed,
            "overdeleted": self.overdeleted,
            "rederived": self.rederived,
            "count_adjusted": self.count_adjusted,
            "last_lsn": self.last_lsn,
        }


class IncrementalModel:
    """A materialized standard model that absorbs EDB updates."""

    def __init__(
        self,
        program: Program,
        edb: Iterable[Atom] = (),
        check: bool = True,
        hooks: EngineHooks | None = None,
        materialized: Database | None = None,
        metrics: MetricsCollector | None = None,
        maintain: str | None = None,
    ) -> None:
        if check:
            check_program(program)
        if maintain is not None and maintain not in MAINTAIN_MODES:
            raise ValueError(
                f"unknown maintenance mode {maintain!r}; "
                f"expected one of {MAINTAIN_MODES}"
            )
        self.program = program
        # None defers to repro.engine.maintain.maintain_mode() at each
        # update, so set_maintain_mode affects existing models too.
        self.maintain = maintain
        self.layering: Layering = stratify(program)
        self._graph = dependency_graph(program)
        # SCC schedule computed once for the model's lifetime: every
        # recompute walks the same per-layer component order, filtered
        # to the affected cone.
        self._schedule = scc_schedule(program, self.layering)
        self._idb = program.idb_predicates()
        self._edb_facts: set[Atom] = set()
        self.database = materialized if materialized is not None else Database()
        # one context for the model's lifetime: rule plans compiled for
        # the first update are reused by every later delta/recompute.
        self._context = EvalContext(self.database, hooks=hooks, metrics=metrics)
        self.last_update = UpdateStats()
        # differential maintenance state, created on the first
        # maintained update and dropped whenever a non-differential
        # path (recompute, legacy delta) mutates the model behind it.
        self._maintainer = None
        self.last_delta: DeltaBatch | None = None
        self.maintenance = MaintenanceTotals()
        # delta listeners: called with an Invalidation after every
        # completed (non-no-op) update, inside the updating thread.
        self._delta_listeners: list = []
        self._install_program_facts()
        if materialized is not None:
            # restore path (snapshot of this exact program): adopt the
            # already-computed model without re-running the fixpoint.
            self._edb_facts.update(self._canonical(a) for a in edb)
            self.last_update = UpdateStats(mode="restore")
        else:
            # initial build is always a full layered evaluation: a delta
            # continuation would miss derivations from program facts,
            # which are in ``_edb_facts`` but not yet in the database.
            for atom in edb:
                fact = self._canonical(atom)
                if fact.pred in self._idb:
                    raise EvaluationError(
                        f"cannot insert into derived predicate {fact.pred!r}"
                    )
                self._edb_facts.add(fact)
            self._recompute(set(self.program.predicates()))

    # -- public API -------------------------------------------------------

    @property
    def edb_facts(self) -> frozenset[Atom]:
        """The current base facts (program facts included)."""
        return frozenset(self._edb_facts)

    def add_delta_listener(self, listener) -> None:
        """Register ``listener(invalidation)``, called after every
        completed update with the
        :class:`~repro.engine.maintain.Invalidation` it implies —
        precise (the delta batch's net-changed predicates) under
        differential maintenance, a conservative cone otherwise."""
        self._delta_listeners.append(listener)

    def _notify_delta(self, invalidation: Invalidation) -> None:
        for listener in self._delta_listeners:
            listener(invalidation)

    def add_facts(
        self, atoms: Iterable[Atom], lsn: int | None = None
    ) -> UpdateStats:
        """Insert base facts and repair the model."""
        new = [self._canonical(a) for a in atoms]
        new = [a for a in new if a not in self._edb_facts]
        if not new:
            self.last_update = UpdateStats(mode="none", lsn=lsn)
            return self.last_update
        for atom in new:
            if atom.pred in self._idb:
                raise EvaluationError(
                    f"cannot insert into derived predicate {atom.pred!r}"
                )
            self._edb_facts.add(atom)
        if self._maintain_mode() == "delta":
            return self._apply_delta(new, (), lsn)
        self._maintainer = None
        changed = {a.pred for a in new}
        cone = self._affected_cone(changed)
        if self._delta_safe(cone):
            delta: dict[str, list[tuple]] = {}
            for atom in new:
                if self.database.add(atom):
                    delta.setdefault(atom.pred, []).append(atom.args)
            stats = seminaive_rounds(
                self.database, self._cone_rules(cone), delta,
                context=self._context,
            )
            self.last_update = UpdateStats(
                mode="delta",
                affected_predicates=len(cone),
                lsn=lsn,
                fixpoint=stats,
            )
        else:
            self.last_update = self._recompute(cone)
            self.last_update.lsn = lsn
        self.maintenance.record(self.last_update)
        self._notify_delta(
            Invalidation(lsn=lsn, preds=frozenset(cone), precise=False)
        )
        return self.last_update

    def remove_facts(
        self, atoms: Iterable[Atom], lsn: int | None = None
    ) -> UpdateStats:
        """Delete base facts and repair the model."""
        victims = [self._canonical(a) for a in atoms]
        victims = [a for a in victims if a in self._edb_facts]
        if not victims:
            self.last_update = UpdateStats(mode="none", lsn=lsn)
            return self.last_update
        for atom in victims:
            self._edb_facts.discard(atom)
        if self._maintain_mode() == "delta":
            return self._apply_delta((), victims, lsn)
        self._maintainer = None
        changed = {a.pred for a in victims}
        cone = self._affected_cone(changed)
        self.last_update = self._recompute(cone)
        self.last_update.lsn = lsn
        self.maintenance.record(self.last_update)
        self._notify_delta(
            Invalidation(lsn=lsn, preds=frozenset(cone), precise=False)
        )
        return self.last_update

    def as_set(self) -> frozenset[Atom]:
        return self.database.as_set()

    # -- internals ---------------------------------------------------------

    def _canonical(self, atom: Atom) -> Atom:
        return canonical_atom(atom)

    def _maintain_mode(self) -> str:
        return self.maintain if self.maintain is not None else maintain_mode()

    def _apply_delta(
        self,
        added: Iterable[Atom],
        removed: Iterable[Atom],
        lsn: int | None,
    ) -> UpdateStats:
        """Route one update through the differential maintenance engine."""
        # imported here: the maintainer imports UpdateStats from this
        # module, so a top-level import would be circular.
        from repro.engine.maintain.maintainer import DeltaMaintainer

        if self._maintainer is None:
            self._maintainer = DeltaMaintainer(self)
        stats, batch = self._maintainer.apply(added, removed, lsn=lsn)
        self.last_update = stats
        self.last_delta = batch
        self.maintenance.record(stats)
        ctx = self._context
        if ctx.observing:
            emit_event(
                ctx.hooks, "on_delta_batch",
                lsn=lsn, mode=batch.mode,
                inserted=batch.inserted_count, deleted=batch.deleted_count,
            )
        if ctx.timing:
            metrics = ctx.metrics
            metrics.incr("maint_updates")
            if stats.overdeleted:
                metrics.incr("maint_overdeleted", stats.overdeleted)
            if stats.rederived:
                metrics.incr("maint_rederived", stats.rederived)
            if stats.count_adjusted:
                metrics.incr("maint_count_adjusted", stats.count_adjusted)
        self._notify_delta(invalidation_of(batch))
        return stats

    def _install_program_facts(self) -> None:
        for rule in self.program.facts():
            fact = self._canonical(rule.head)
            if fact.pred not in self._idb:
                self._edb_facts.add(fact)

    def _affected_cone(self, changed: set[str]) -> set[str]:
        """Changed predicates plus everything depending on them."""
        cone = set(changed)
        for pred in changed:
            if pred in self._graph:
                cone |= nx.ancestors(self._graph, pred)
        return cone

    def _cone_rules(self, cone: set[str]):
        return [
            r
            for r in self.program.proper_rules()
            if r.head.pred in cone
        ]

    def _delta_safe(self, cone: set[str]) -> bool:
        """Insertion is monotone within the cone: no grouping heads and
        no negation on cone predicates among the cone's rules."""
        for rule in self._cone_rules(cone):
            if rule.is_grouping():
                return False
            for lit in rule.negative_body():
                if lit.atom.pred in cone:
                    return False
        return True

    def _recompute(self, cone: set[str]) -> UpdateStats:
        """Rebuild the cone's derived predicates over the fixed context."""
        # a recompute rebuilds the cone behind the maintainer's back;
        # its support counts are stale afterwards, so drop it and let
        # the next maintained update re-snapshot.
        self._maintainer = None
        stats = UpdateStats(mode="recompute", affected_predicates=len(cone))
        # keep everything outside the cone; rebuild the inside.
        fresh = Database()
        for atom in self.database.atoms():
            if atom.pred not in cone:
                fresh.add(atom)
            elif atom.pred in self._idb:
                stats.facts_removed += 1
            # changed EDB facts are reinstated from _edb_facts below
        for atom in self._edb_facts:
            fresh.add(atom)
        self.database = fresh
        # cached plans stay valid across swaps: the sized-once policy
        # never invalidates, and plans hold no database references.
        self._context.db = fresh
        for i, layer_components in enumerate(self._schedule):
            for component in layer_components:
                rules = tuple(
                    r for r in component.rules if r.head.pred in cone
                )
                if not rules:
                    continue
                scc = evaluate_component(
                    self.database,
                    component,
                    self._context,
                    layer=i,
                    rules=rules,
                )
                stats.fixpoint.merge(scc.fixpoint)
        self.last_update = stats
        return stats
