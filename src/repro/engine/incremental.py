"""Incremental maintenance of the standard model under EDB updates.

A deductive database is rarely evaluated once: base facts arrive and
retire.  This module maintains the computed minimal model across
updates without full recomputation:

* the *affected cone* of an update is the set of predicates that
  transitively depend on a changed predicate (dependency-graph
  ancestors); everything outside the cone keeps its extension —
  stratification guarantees it cannot change;
* pure insertions whose cone is internally monotone (no grouping head
  and no negation *on cone predicates* among the cone's rules)
  continue the semi-naive fixpoint with the new facts as the delta;
* anything else (deletions, or cones crossing grouping/negation)
  clears the cone's derived predicates and re-runs the layered
  evaluation restricted to cone rules, over the untouched context.

Both paths produce exactly the model a from-scratch evaluation would
(property-tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.evaluator import evaluate_component
from repro.engine.fixpoint import (
    FixpointStats,
    seminaive_rounds,
)
from repro.errors import EvaluationError
from repro.observe import EngineHooks
from repro.program.dependency import dependency_graph, scc_schedule
from repro.program.rule import Atom, Program, canonical_atom
from repro.program.stratify import Layering, stratify
from repro.program.wellformed import check_program


@dataclass
class UpdateStats:
    """What one update cost."""

    mode: str = "none"  # "delta" | "recompute" | "restore" | "none"
    affected_predicates: int = 0
    facts_removed: int = 0
    fixpoint: FixpointStats = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.fixpoint is None:
            self.fixpoint = FixpointStats()


class IncrementalModel:
    """A materialized standard model that absorbs EDB updates."""

    def __init__(
        self,
        program: Program,
        edb: Iterable[Atom] = (),
        check: bool = True,
        hooks: EngineHooks | None = None,
        materialized: Database | None = None,
    ) -> None:
        if check:
            check_program(program)
        self.program = program
        self.layering: Layering = stratify(program)
        self._graph = dependency_graph(program)
        # SCC schedule computed once for the model's lifetime: every
        # recompute walks the same per-layer component order, filtered
        # to the affected cone.
        self._schedule = scc_schedule(program, self.layering)
        self._idb = program.idb_predicates()
        self._edb_facts: set[Atom] = set()
        self.database = materialized if materialized is not None else Database()
        # one context for the model's lifetime: rule plans compiled for
        # the first update are reused by every later delta/recompute.
        self._context = EvalContext(self.database, hooks=hooks)
        self.last_update = UpdateStats()
        self._install_program_facts()
        if materialized is not None:
            # restore path (snapshot of this exact program): adopt the
            # already-computed model without re-running the fixpoint.
            self._edb_facts.update(self._canonical(a) for a in edb)
            self.last_update = UpdateStats(mode="restore")
        else:
            # initial build is always a full layered evaluation: a delta
            # continuation would miss derivations from program facts,
            # which are in ``_edb_facts`` but not yet in the database.
            for atom in edb:
                fact = self._canonical(atom)
                if fact.pred in self._idb:
                    raise EvaluationError(
                        f"cannot insert into derived predicate {fact.pred!r}"
                    )
                self._edb_facts.add(fact)
            self._recompute(set(self.program.predicates()))

    # -- public API -------------------------------------------------------

    @property
    def edb_facts(self) -> frozenset[Atom]:
        """The current base facts (program facts included)."""
        return frozenset(self._edb_facts)

    def add_facts(self, atoms: Iterable[Atom]) -> UpdateStats:
        """Insert base facts and repair the model."""
        new = [self._canonical(a) for a in atoms]
        new = [a for a in new if a not in self._edb_facts]
        if not new:
            self.last_update = UpdateStats(mode="none")
            return self.last_update
        for atom in new:
            if atom.pred in self._idb:
                raise EvaluationError(
                    f"cannot insert into derived predicate {atom.pred!r}"
                )
            self._edb_facts.add(atom)
        changed = {a.pred for a in new}
        cone = self._affected_cone(changed)
        if self._delta_safe(cone):
            delta: dict[str, list[tuple]] = {}
            for atom in new:
                if self.database.add(atom):
                    delta.setdefault(atom.pred, []).append(atom.args)
            stats = seminaive_rounds(
                self.database, self._cone_rules(cone), delta,
                context=self._context,
            )
            self.last_update = UpdateStats(
                mode="delta",
                affected_predicates=len(cone),
                fixpoint=stats,
            )
        else:
            self.last_update = self._recompute(cone)
        return self.last_update

    def remove_facts(self, atoms: Iterable[Atom]) -> UpdateStats:
        """Delete base facts and repair the model."""
        victims = [self._canonical(a) for a in atoms]
        victims = [a for a in victims if a in self._edb_facts]
        if not victims:
            self.last_update = UpdateStats(mode="none")
            return self.last_update
        for atom in victims:
            self._edb_facts.discard(atom)
        changed = {a.pred for a in victims}
        self.last_update = self._recompute(self._affected_cone(changed))
        return self.last_update

    def as_set(self) -> frozenset[Atom]:
        return self.database.as_set()

    # -- internals ---------------------------------------------------------

    def _canonical(self, atom: Atom) -> Atom:
        return canonical_atom(atom)

    def _install_program_facts(self) -> None:
        for rule in self.program.facts():
            fact = self._canonical(rule.head)
            if fact.pred not in self._idb:
                self._edb_facts.add(fact)

    def _affected_cone(self, changed: set[str]) -> set[str]:
        """Changed predicates plus everything depending on them."""
        cone = set(changed)
        for pred in changed:
            if pred in self._graph:
                cone |= nx.ancestors(self._graph, pred)
        return cone

    def _cone_rules(self, cone: set[str]):
        return [
            r
            for r in self.program.proper_rules()
            if r.head.pred in cone
        ]

    def _delta_safe(self, cone: set[str]) -> bool:
        """Insertion is monotone within the cone: no grouping heads and
        no negation on cone predicates among the cone's rules."""
        for rule in self._cone_rules(cone):
            if rule.is_grouping():
                return False
            for lit in rule.negative_body():
                if lit.atom.pred in cone:
                    return False
        return True

    def _recompute(self, cone: set[str]) -> UpdateStats:
        """Rebuild the cone's derived predicates over the fixed context."""
        stats = UpdateStats(mode="recompute", affected_predicates=len(cone))
        # keep everything outside the cone; rebuild the inside.
        fresh = Database()
        for atom in self.database.atoms():
            if atom.pred not in cone:
                fresh.add(atom)
            elif atom.pred in self._idb:
                stats.facts_removed += 1
            # changed EDB facts are reinstated from _edb_facts below
        for atom in self._edb_facts:
            fresh.add(atom)
        self.database = fresh
        # cached plans stay valid across swaps: the sized-once policy
        # never invalidates, and plans hold no database references.
        self._context.db = fresh
        for i, layer_components in enumerate(self._schedule):
            for component in layer_components:
                rules = tuple(
                    r for r in component.rules if r.head.pred in cone
                )
                if not rules:
                    continue
                scc = evaluate_component(
                    self.database,
                    component,
                    self._context,
                    layer=i,
                    rules=rules,
                )
                stats.fixpoint.merge(scc.fixpoint)
        self.last_update = stats
        return stats
