"""The exchange operator: re-sharding row batches across processes.

An :class:`Exchange` owns one side of a ``multiprocessing`` pipe and
moves semi-naive deltas — dicts of :class:`RowBatch` (or plain
argument-tuple lists from the fallback executor path) — between the
coordinator and a worker.  Batches are framed by the storage codec
(:func:`repro.storage.codec.encode_row_batch`): rows whose IDs all sit
below the intern-table watermark agreed at the handshake travel as flat
ints, rows touching fresher terms travel as self-describing codec
lines that re-intern on arrival.  Shuffle volume is counted on the
sending side (``shuffle_rows`` / ``shuffle_bytes``).

:meth:`Exchange.reshard` is the in-process half of the operator: when a
batch's partitioning disagrees with the key a downstream stage joins
on, it splits the batch by the stage's partitioner so each row lands on
the worker owning its join key.  It is also the seam the ROADMAP's
replica-shipping server work plugs into — a replica subscription is an
exchange whose peer happens to live on another machine.
"""

from __future__ import annotations

from repro.engine.exec.kernels import RowBatch
from repro.engine.relation import decode_row, encode_args
from repro.storage.codec import (
    decode_row_batch,
    encode_row_batch,
    row_batch_bytes,
)


def batch_rows(entry) -> tuple[list[tuple[int, ...]], int]:
    """The ID rows of one delta entry and its arity.

    Entries are :class:`RowBatch`es on the vectorized path, bare
    ``(arity, rows)`` pairs from the worker's derivation accumulator,
    and plain argument-tuple lists on the fallback path; all carry
    enough to recover rows without re-walking term trees
    (``encode_args`` is one attribute load per already-interned term).
    """
    if type(entry) is RowBatch:
        return entry.rows, entry.arity
    if type(entry) is tuple:
        arity, rows = entry
        return rows, arity
    rows = [encode_args(args) for args in entry]
    return rows, (len(rows[0]) if rows else 0)


class Exchange:
    """One pipe endpoint speaking framed row batches."""

    __slots__ = ("conn", "watermark", "metrics")

    def __init__(self, conn, watermark: int, metrics=None) -> None:
        self.conn = conn
        self.watermark = watermark
        self.metrics = metrics

    # -- framing -----------------------------------------------------------

    def encode_delta(self, delta: dict) -> list[tuple]:
        """Frame a delta dict for the wire, counting shuffle volume."""
        payloads = []
        shuffled = 0
        nbytes = 0
        for pred, entry in delta.items():
            rows, arity = batch_rows(entry)
            if not rows:
                continue
            payload = encode_row_batch(pred, arity, rows, self.watermark)
            shuffled += len(rows)
            nbytes += row_batch_bytes(payload)
            payloads.append(payload)
        if self.metrics is not None and shuffled:
            self.metrics.record_shuffle(shuffled, nbytes)
        return payloads

    @staticmethod
    def decode_delta(payloads) -> dict[str, RowBatch]:
        """Unframe wire payloads back to local-ID row batches.

        Coded-lane rows intern their terms here, so the receiving
        process may assign fresh dense IDs; the batch's args lane holds
        the canonical decoded tuples.
        """
        delta: dict[str, RowBatch] = {}
        for payload in payloads:
            pred, arity, rows = decode_row_batch(payload)
            batch = delta.get(pred)
            if batch is None:
                batch = RowBatch(pred, arity)
                delta[pred] = batch
            for row in rows:
                batch.add(row, decode_row(row))
        return delta

    # -- transport ---------------------------------------------------------

    def send(self, message: tuple) -> None:
        self.conn.send(message)

    def recv(self):
        return self.conn.recv()

    def poll(self, timeout: float = 0.0) -> bool:
        return self.conn.poll(timeout)

    def close(self) -> None:
        self.conn.close()

    # -- re-sharding -------------------------------------------------------

    @staticmethod
    def reshard(batch: RowBatch, partitioner) -> list[RowBatch]:
        """Split one batch by a stage's partitioner: result ``[p]``
        holds the rows partition ``p`` owns under the stage's join key.
        Used whenever a delta's current partitioning (or lack of one)
        disagrees with the key the next stage joins on."""
        return partitioner.split_batch(batch)
