"""The worker-pool coordinator for partitioned evaluation.

The :class:`WorkerPool` forks one process per worker *after* the EDB
and program facts are installed, so every child starts with a full
database replica and the coordinator's intern table (copy-on-write —
the fork is the cheap part; the handshake merely verifies the dense-ID
watermark).  The coordinator keeps the authoritative database: workers
derive and ship rows back, the coordinator merges them (global dedup
through :meth:`Database.add_rows`) and broadcasts every merged delta to
all replicas, so each replica tracks the authoritative state in
lockstep at every protocol step.

:func:`run_schedule` drives PR 4's condensed SCC schedule through the
pool:

* **non-recursive components** are independent units of work — a
  non-recursive SCC is one predicate with no self-loop, so its rules
  read only completed lower components — dispatched whole to the next
  idle worker; components without a dependency edge between them run
  concurrently (inter-component parallelism).
* **recursive components** engage every worker at once: round 0 shards
  each rule's first positive occurrence by hash partition of its full
  relation, later rounds shard the retained delta the same way, and
  the *global fixpoint barrier* is the merge step — a round ends only
  when all workers have replied (their exchanges drained into the
  coordinator) and the merged delta is empty.
* **grouping rules** (the R1 step) run on the coordinator: they read
  strictly lower strata, fire once, and intern fresh set terms that
  are cheapest assigned by a single process and broadcast.

Failure surfaces cleanly: a worker that raises replies with its
traceback, a worker that dies is noticed by liveness polling, and both
become an :class:`~repro.errors.EvaluationError` on the coordinator
after the pool is torn down.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing.connection import wait as _wait_connections

from repro.engine.fixpoint import FixpointStats
from repro.engine.grouping import apply_grouping_rules
from repro.engine.relation import decode_row, encode_args
from repro.engine.shard.exchange import Exchange
from repro.engine.shard.worker import component_rules, worker_main
from repro.errors import EvaluationError
from repro.names import is_builtin_predicate
from repro.terms.term import id_table_size

#: Seconds between liveness checks while waiting on worker replies.
_POLL_INTERVAL = 0.05


def fork_available() -> bool:
    """Whether this platform can fork workers (the pool's requirement:
    forked children inherit program objects and the intern table; the
    spawn path would need to re-parse the program and replay the full
    intern table, which the exchange protocol supports but the pool
    does not yet drive)."""
    return "fork" in multiprocessing.get_all_start_methods()


class WorkerPool:
    """``nworkers`` forked evaluation processes behind duplex pipes."""

    def __init__(
        self,
        nworkers: int,
        db,
        schedule,
        planner: str = "sized-once",
        executor: str | None = None,
        metrics=None,
    ) -> None:
        if nworkers < 2:
            raise ValueError("a worker pool needs at least two workers")
        if not fork_available():
            raise EvaluationError(
                "partitioned evaluation requires the fork start method"
            )
        self.nworkers = nworkers
        self.metrics = metrics
        self.watermark = id_table_size()
        ctx = multiprocessing.get_context("fork")
        self.procs = []
        self.exchanges: list[Exchange] = []
        for wid in range(nworkers):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=worker_main,
                args=(
                    child_conn,
                    wid,
                    nworkers,
                    self.watermark,
                    db,
                    schedule,
                    planner,
                    executor,
                    metrics is not None,
                ),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self.procs.append(proc)
            self.exchanges.append(Exchange(parent_conn, self.watermark, metrics))
        self._alive = True

    # -- transport ---------------------------------------------------------

    def _send(self, wid: int, message: tuple) -> None:
        """Send to worker ``wid``; a closed pipe (dead worker) raises
        :class:`EvaluationError` after tearing the pool down."""
        try:
            self.exchanges[wid].send(message)
        except (BrokenPipeError, OSError):
            exitcode = self.procs[wid].exitcode
            self.terminate()
            raise EvaluationError(
                f"worker {wid} hung up (exit code {exitcode})"
            )

    def _recv(self, wid: int):
        """One reply from worker ``wid``, polling liveness while
        waiting; tagged errors and dead workers raise."""
        exchange = self.exchanges[wid]
        proc = self.procs[wid]
        while True:
            try:
                if exchange.poll(_POLL_INTERVAL):
                    message = exchange.recv()
                    break
            except (EOFError, OSError):
                self.terminate()
                raise EvaluationError(f"worker {wid} hung up mid-evaluation")
            if not proc.is_alive():
                self.terminate()
                raise EvaluationError(
                    f"worker {wid} died (exit code {proc.exitcode})"
                )
        if message[0] == "error":
            self.terminate()
            raise EvaluationError(
                f"worker {wid} failed:\n{message[2]}"
            )
        return message

    def _wait_any(self, wids) -> list[int]:
        """Worker IDs with a reply ready, blocking until at least one."""
        conns = {self.exchanges[w].conn: w for w in wids}
        while True:
            ready = _wait_connections(list(conns), timeout=_POLL_INTERVAL)
            if ready:
                return [conns[c] for c in ready]
            for wid in wids:
                if not self.procs[wid].is_alive():
                    self.terminate()
                    raise EvaluationError(
                        f"worker {wid} died (exit code "
                        f"{self.procs[wid].exitcode})"
                    )

    def handshake(self) -> None:
        """Verify every replica's intern-table watermark matches ours —
        the precondition for raw-int rows on the wire."""
        for wid in range(self.nworkers):
            self._send(wid, ("hello",))
        for wid in range(self.nworkers):
            _, _, size = self._recv(wid)
            if size != self.watermark:
                self.terminate()
                raise EvaluationError(
                    f"worker {wid} intern watermark {size} != "
                    f"coordinator {self.watermark}"
                )

    def broadcast_sync(self, delta: dict, retain: bool) -> None:
        """Frame a merged delta once and send it to every replica.

        Shuffle counters record the logical volume (one framing), not
        payload-bytes × fan-out.
        """
        if not delta and not retain:
            return
        payloads = self.exchanges[0].encode_delta(delta)
        for wid in range(self.nworkers):
            self._send(wid, ("sync", payloads, retain))

    def send_all(self, message: tuple) -> None:
        for wid in range(self.nworkers):
            self._send(wid, message)

    def collect_derived(self) -> tuple[dict, int]:
        """Barrier: wait for every worker's ``derived`` reply and pool
        the decoded rows per predicate — ``{pred: (arity, rows)}`` —
        plus the summed rule firings."""
        merged: dict[str, tuple[int, list]] = {}
        firings = 0
        pending = set(range(self.nworkers))
        while pending:
            for wid in self._wait_any(pending):
                _, _, payloads, fired = self._recv(wid)
                firings += fired
                for pred, batch in Exchange.decode_delta(payloads).items():
                    entry = merged.get(pred)
                    if entry is None:
                        merged[pred] = (batch.arity, list(batch.rows))
                    else:
                        entry[1].extend(batch.rows)
                pending.discard(wid)
        return merged, firings

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Orderly shutdown: collect per-worker counters, then reap."""
        if not self._alive:
            return
        self._alive = False
        try:
            self.send_all(("stop",))
            # A worker may still be applying the last broadcast sync, so
            # bound the wait by liveness plus a generous deadline rather
            # than a single short poll — losing a worker's counters
            # would silently understate the run's totals.
            deadline = time.monotonic() + 30.0
            for wid, exchange in enumerate(self.exchanges):
                while not exchange.poll(_POLL_INTERVAL):
                    if not self.procs[wid].is_alive():
                        break
                    if time.monotonic() > deadline:
                        break
                else:
                    message = exchange.recv()
                    if message[0] == "counters" and self.metrics is not None:
                        _, _, counters, seconds = message
                        self.metrics.record_worker(wid, seconds, counters)
        except (EOFError, OSError, BrokenPipeError):
            pass
        self._reap()

    def terminate(self) -> None:
        """Immediate teardown (error paths)."""
        if not self._alive:
            return
        self._alive = False
        self._reap()

    def _reap(self) -> None:
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join(timeout=2.0)
        for exchange in self.exchanges:
            try:
                exchange.close()
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        if exc and exc[0] is not None:
            self.terminate()
        else:
            self.stop()


# -- the partitioned schedule driver ----------------------------------------


def _component_reads(component) -> set[str]:
    """Predicates the component's rule bodies read (builtins excluded)."""
    reads: set[str] = set()
    for rule in component.rules:
        for lit in rule.body:
            if not is_builtin_predicate(lit.atom.pred):
                reads.add(lit.atom.pred)
    return reads


def _merge_into(db, merged: dict) -> tuple[dict, int]:
    """Install pooled worker rows into the authoritative database;
    returns the genuinely-new delta (``{pred: RowBatch-shaped pairs}``
    ready for broadcast) and the new-fact count."""
    delta: dict[str, tuple[int, list]] = {}
    new = 0
    for pred, (arity, rows) in merged.items():
        pairs = db.add_rows(pred, arity, rows, decode_row)
        if pairs:
            new += len(pairs)
            delta[pred] = (arity, [row for row, _ in pairs])
    return delta, new


def _run_grouping(db, component, ctx, pool) -> int:
    """The component's R1 step on the coordinator, broadcast to all
    replicas; returns the number of grouping facts added."""
    grouping = [r for r in component.rules if r.is_grouping()]
    if not grouping:
        return 0
    added: dict[str, tuple[int, list]] = {}
    count = 0
    for rule in grouping:
        for fact in apply_grouping_rules([rule], db, context=ctx):
            if db.add(fact):
                count += 1
                row = getattr(fact, "_row", None)
                if row is None:
                    row = encode_args(fact.args)
                entry = added.get(fact.pred)
                if entry is None:
                    added[fact.pred] = (len(fact.args), [row])
                else:
                    entry[1].append(row)
    if added:
        pool.broadcast_sync(added, retain=False)
    return count


def _run_recursive(db, component, ctx, pool, layer: int, ci: int):
    """One recursive component as partitioned barrier rounds."""
    from repro.engine.evaluator import SCCStats

    stats = SCCStats(component.preds, component.recursive)
    start = time.perf_counter()
    stats.grouping_facts = _run_grouping(db, component, ctx, pool)
    if component_rules(component):
        fp = FixpointStats()
        pool.send_all(("round0", layer, ci))
        merged, firings = pool.collect_derived()
        fp.iterations = 1
        fp.rule_firings = firings
        delta, new = _merge_into(db, merged)
        fp.facts_derived += new
        while delta:
            pool.broadcast_sync(delta, retain=True)
            pool.send_all(("round", layer, ci))
            merged, firings = pool.collect_derived()
            fp.iterations += 1
            fp.rule_firings += firings
            delta, new = _merge_into(db, merged)
            fp.facts_derived += new
        stats.fixpoint = fp
    stats.seconds = time.perf_counter() - start
    if ctx.timing:
        ctx.metrics.add_scc_time(
            layer, component.preds, component.recursive, stats.seconds
        )
    return stats


def run_schedule(db, schedule, ctx, pool: WorkerPool, layering):
    """Drive a full SCC schedule through the pool; returns LayerStats
    in layer order (the parallel counterpart of the evaluator's layer
    loop)."""
    from repro.engine.evaluator import LayerStats, SCCStats

    pool.handshake()
    layer_stats = []
    for li in range(len(layering)):
        stats = LayerStats(layer=li)
        components = schedule[li]
        if ctx.timing:
            layer_start = ctx.metrics.now()
        reads = [_component_reads(c) for c in components]
        deps: list[set[int]] = [
            {
                i
                for i in range(j)
                if components[i].preds & reads[j]
            }
            for j in range(len(components))
        ]
        completed: set[int] = set()
        layer_sccs: list = [None] * len(components)
        remaining = list(range(len(components)))
        running: dict[int, tuple[int, float, object]] = {}  # wid → (ci, t0, stats)
        idle = list(range(pool.nworkers))

        def finish_one() -> None:
            for wid in pool._wait_any(list(running)):
                ci, t0, scc = running.pop(wid)
                _, _, payloads, firings = pool._recv(wid)
                merged: dict[str, tuple[int, list]] = {}
                for pred, batch in Exchange.decode_delta(payloads).items():
                    merged[pred] = (batch.arity, list(batch.rows))
                delta, new = _merge_into(db, merged)
                if delta:
                    pool.broadcast_sync(delta, retain=False)
                scc.fixpoint = FixpointStats(
                    iterations=1, rule_firings=firings, facts_derived=new
                )
                scc.seconds = time.perf_counter() - t0
                if ctx.timing:
                    ctx.metrics.add_scc_time(
                        li,
                        components[ci].preds,
                        components[ci].recursive,
                        scc.seconds,
                    )
                layer_sccs[ci] = scc
                completed.add(ci)
                idle.append(wid)

        while remaining or running:
            progressed = True
            while progressed:
                progressed = False
                for ci in list(remaining):
                    component = components[ci]
                    if not deps[ci] <= completed:
                        continue
                    if component.recursive:
                        # needs every worker: drain in-flight work first
                        if running:
                            break
                        remaining.remove(ci)
                        layer_sccs[ci] = _run_recursive(
                            db, component, ctx, pool, li, ci
                        )
                        completed.add(ci)
                        progressed = True
                    elif idle:
                        remaining.remove(ci)
                        t0 = time.perf_counter()
                        scc = SCCStats(component.preds, component.recursive)
                        scc.grouping_facts = _run_grouping(
                            db, component, ctx, pool
                        )
                        if component_rules(component):
                            wid = idle.pop(0)
                            pool._send(wid, ("component", li, ci))
                            running[wid] = (ci, t0, scc)
                        else:
                            scc.seconds = time.perf_counter() - t0
                            layer_sccs[ci] = scc
                            completed.add(ci)
                        progressed = True
            if running:
                finish_one()
        for scc in layer_sccs:
            if scc is None:
                continue
            stats.sccs.append(scc)
            stats.grouping_facts += scc.grouping_facts
            stats.fixpoint.merge(scc.fixpoint)
        if ctx.timing:
            ctx.metrics.add_layer_time(li, ctx.metrics.now() - layer_start)
        layer_stats.append(stats)
    return layer_stats
