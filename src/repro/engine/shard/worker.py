"""The worker side of partitioned evaluation.

A worker process is forked by :class:`~repro.engine.shard.pool.WorkerPool`
*after* the coordinator has installed the EDB and program facts, so it
inherits a full database replica, the compiled program objects, and the
intern table for free (copy-on-write pages).  From then on the replica
is mutated **only** by ``sync`` broadcasts from the coordinator — a
worker never installs its own derivations — which keeps every replica
in lockstep with the coordinator's authoritative database at each
protocol step (pipes are FIFO, and every command that reads state is
sent after the syncs it depends on).

The command protocol (one request, one tagged reply; ``sync`` has no
reply — FIFO ordering makes its application visible to every later
command):

``("hello",)`` → ``("hello", wid, id_table_size)``
    The intern-table handshake: the coordinator checks the worker's
    dense-ID watermark matches its own, so raw-int wire rows mean the
    same terms on both sides.
``("sync", payloads, retain)``
    Apply a framed delta to the replica; with ``retain`` also keep the
    decoded batches as the delta for the next ``round`` command.
``("component", layer, ci)`` → ``("derived", wid, payloads, firings)``
    Evaluate all non-grouping rules of a (non-recursive) component
    against the replica and ship the derived rows back — the component
    is this worker's alone, so no partitioning applies.
``("round0", layer, ci)`` → ``("derived", ...)``
    The partitioned first round of a recursive component: each rule's
    first positive occurrence is overridden with THIS worker's hash
    partition of that predicate's full relation, so the union over
    workers equals the unsharded round.
``("round", layer, ci)`` → ``("derived", ...)``
    One partitioned semi-naive round: walk the component's occurrence
    index, overriding each occurrence with this worker's partition of
    the retained delta.
``("stop",)`` → ``("counters", wid, counters, seconds)``
    Report lifetime counters (folded into the coordinator's collector
    as one aggregated family, not one line per worker) and exit.

Any handler failure replies ``("error", wid, traceback_text)``; the
coordinator surfaces it as an :class:`~repro.errors.EvaluationError`.
"""

from __future__ import annotations

import time
import traceback

from repro.engine.context import EvalContext
from repro.engine.exec.kernels import RowBatch
from repro.engine.fixpoint import _derive_any, occurrence_index
from repro.engine.relation import decode_row, encode_args
from repro.engine.shard.exchange import Exchange
from repro.engine.shard.partition import Partitioner
from repro.names import is_builtin_predicate
from repro.observe import MetricsCollector
from repro.terms.term import id_table_size


def first_positive_occurrence(rule) -> int | None:
    """The body index round 0 shards a rule on: its first positive
    non-builtin literal, or None when the rule has none (such a rule
    runs unsharded on one worker — it reads no partitionable input)."""
    for i, lit in enumerate(rule.body):
        if lit.positive and not is_builtin_predicate(lit.atom.pred):
            return i
    return None


def component_rules(component) -> list:
    """The component's non-grouping rules, in program order (grouping
    rules run on the coordinator — they read strictly lower strata and
    intern fresh set terms best assigned by one process)."""
    return [r for r in component.rules if not r.is_grouping()]


class _WorkerState:
    """Per-process evaluation state behind the command loop."""

    def __init__(self, wid, nworkers, db, schedule, planner, executor, metrics):
        self.wid = wid
        self.db = db
        self.schedule = schedule
        self.metrics = metrics
        self.ctx = EvalContext(
            db, planner=planner, metrics=metrics, executor=executor
        )
        self.partitioner = Partitioner(nworkers)
        #: the retained delta from the last ``sync(retain=True)``,
        #: pred → RowBatch over *local* IDs.
        self.delta: dict[str, RowBatch] = {}
        #: per-component occurrence index, computed once per component.
        self._occurrences: dict[tuple[int, int], list] = {}

    # -- derivation --------------------------------------------------------

    def _collect(self, rule, plan, overrides, out: dict) -> None:
        """Run one rule application, accumulating derived ID rows into
        ``out`` (pred → (arity, rows)) without touching the replica."""
        dr, facts = _derive_any(self.ctx, self.db, rule, plan, overrides)
        if dr is not None:
            if not dr.rows:
                return
            entry = out.get(dr.pred)
            if entry is None:
                out[dr.pred] = (dr.arity, list(dr.rows))
            else:
                entry[1].extend(dr.rows)
        else:
            for fact in facts:
                row = getattr(fact, "_row", None)
                if row is None:
                    row = encode_args(fact.args)
                entry = out.get(fact.pred)
                if entry is None:
                    out[fact.pred] = (len(fact.args), [row])
                else:
                    entry[1].append(row)

    def _relation_shard(self, rel) -> RowBatch:
        """This worker's hash partition of one full relation, as an
        override-ready batch (rows + verbatim args, no re-encoding)."""
        batch = RowBatch(rel.pred, rel.arity)
        batch.rows = list(rel.id_rows())
        batch.args = list(rel._decoded)
        return self.partitioner.split_batch(batch)[self.wid]

    def occurrences(self, layer: int, ci: int) -> list:
        key = (layer, ci)
        occs = self._occurrences.get(key)
        if occs is None:
            occs = occurrence_index(component_rules(self.schedule[layer][ci]))
            self._occurrences[key] = occs
        return occs

    # -- command handlers --------------------------------------------------

    def sync(self, payloads, retain: bool) -> None:
        decoded = Exchange.decode_delta(payloads)
        delta: dict[str, RowBatch] = {}
        for pred, batch in decoded.items():
            pairs = self.db.add_rows(pred, batch.arity, batch.rows, decode_row)
            if retain and pairs:
                kept = RowBatch(pred, batch.arity)
                kept.extend_pairs(pairs)
                delta[pred] = kept
        if retain:
            self.delta = delta

    def component(self, layer: int, ci: int) -> tuple[dict, int]:
        component = self.schedule[layer][ci]
        out: dict = {}
        firings = 0
        if self.ctx.sized:
            self.ctx.refresh_sizes()
        for rule in component_rules(component):
            self._collect(rule, self.ctx.plan_for(rule), None, out)
            firings += 1
        return out, firings

    def round0(self, layer: int, ci: int) -> tuple[dict, int]:
        component = self.schedule[layer][ci]
        out: dict = {}
        firings = 0
        nworkers = self.partitioner.nparts
        shard_cache: dict[str, RowBatch] = {}
        if self.ctx.sized:
            self.ctx.refresh_sizes()
        for idx, rule in enumerate(component_rules(component)):
            occ = first_positive_occurrence(rule)
            if occ is None:
                # no partitionable input: exactly one worker runs it.
                if idx % nworkers != self.wid:
                    continue
                self._collect(rule, self.ctx.plan_for(rule), None, out)
                firings += 1
                continue
            pred = rule.body[occ].atom.pred
            rel = self.db.get_relation(pred)
            if rel is None or not len(rel):
                continue
            shard = shard_cache.get(pred)
            if shard is None:
                shard = self._relation_shard(rel)
                shard_cache[pred] = shard
            if not len(shard):
                continue
            self._collect(
                rule, self.ctx.plan_for(rule, first=occ), {occ: shard}, out
            )
            firings += 1
        return out, firings

    def round(self, layer: int, ci: int) -> tuple[dict, int]:
        out: dict = {}
        firings = 0
        delta = self.delta
        shard_cache: dict[str, RowBatch] = {}
        if self.ctx.sized:
            self.ctx.refresh_sizes()
        for rule, occ in self.occurrences(layer, ci):
            pred = rule.body[occ].atom.pred
            changed = delta.get(pred)
            if not changed:
                continue
            shard = shard_cache.get(pred)
            if shard is None:
                shard = self.partitioner.split_batch(changed)[self.wid]
                shard_cache[pred] = shard
            if not len(shard):
                continue
            self._collect(
                rule, self.ctx.plan_for(rule, first=occ), {occ: shard}, out
            )
            firings += 1
        return out, firings


def worker_main(
    conn,
    wid: int,
    nworkers: int,
    watermark: int,
    db,
    schedule,
    planner: str,
    executor: str | None,
    collect_metrics: bool,
) -> None:
    """The forked child's entry point: serve commands until ``stop``."""
    metrics = MetricsCollector() if collect_metrics else None
    exchange = Exchange(conn, watermark, metrics)
    state = _WorkerState(
        wid, nworkers, db, schedule, planner, executor, metrics
    )
    busy = 0.0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        start = time.perf_counter()
        try:
            kind = message[0]
            if kind == "stop":
                counters = dict(metrics.counters) if metrics else {}
                conn.send(("counters", wid, counters, busy))
                break
            if kind == "hello":
                conn.send(("hello", wid, id_table_size()))
            elif kind == "sync":
                state.sync(message[1], message[2])
            elif kind == "component":
                out, firings = state.component(message[1], message[2])
                conn.send(("derived", wid, exchange.encode_delta(out), firings))
            elif kind == "round0":
                out, firings = state.round0(message[1], message[2])
                conn.send(("derived", wid, exchange.encode_delta(out), firings))
            elif kind == "round":
                out, firings = state.round(message[1], message[2])
                conn.send(("derived", wid, exchange.encode_delta(out), firings))
            else:
                conn.send(("error", wid, f"unknown command {kind!r}"))
        except Exception:
            try:
                conn.send(("error", wid, traceback.format_exc()))
            except (OSError, ValueError):
                break
        busy += time.perf_counter() - start
    try:
        conn.close()
    except OSError:
        pass
