"""Consistent hash partitioning over dense-ID int lanes.

A :class:`Partitioner` assigns every term ID to one of ``nparts``
partitions.  The assignment must agree *across processes* even though
dense IDs themselves are process-local past the handshake watermark, so
the hash runs over the term's canonical codec fragment
(:func:`repro.storage.codec.term_fragment` — equal terms produce equal
bytes by construction) rather than the ID: two workers that interned a
fresh term in different orders still route its rows to the same
partition.  The fragment walk happens once per distinct ID (memoized),
after which a partition split is one dict-get per row over an
``array('q')`` column — the kernel-speed gather the columnar layout
(PR 6/9) was built for.
"""

from __future__ import annotations

from zlib import crc32

from repro.engine.exec.kernels import RowBatch
from repro.storage.codec import term_fragment
from repro.terms.term import register_clear_listener, term_of_id

#: rid → crc32 of the term's canonical codec fragment.  Shared by every
#: partitioner (the hash is partitioner-independent; only the modulus
#: differs), cleared with the intern table since IDs are reused.
_HASHES: dict[int, int] = {}

register_clear_listener(_HASHES.clear)


def id_hash(rid: int) -> int:
    """The cross-process-stable hash of one term ID."""
    h = _HASHES.get(rid)
    if h is None:
        h = crc32(term_fragment(term_of_id(rid)).encode("utf-8"))
        _HASHES[rid] = h
    return h


class Partitioner:
    """Hash-partitioning policy: ``nparts`` partitions keyed on one
    argument column (``key``, clamped to the relation's arity at use
    sites — arity-0 and narrower relations fall back to their last
    column or partition 0)."""

    __slots__ = ("nparts", "key")

    def __init__(self, nparts: int, key: int = 0) -> None:
        if nparts < 1:
            raise ValueError(f"need at least one partition, got {nparts}")
        self.nparts = nparts
        self.key = key

    def part_of_id(self, rid: int) -> int:
        """The partition owning rows whose key column holds ``rid``."""
        return id_hash(rid) % self.nparts

    def split_indices(self, lane) -> list[list[int]]:
        """Partition the positions of one ID lane: result ``[p]`` lists
        the row positions owned by partition ``p``, in lane order.

        One memo-hit hash per row; this is the gather plan
        :meth:`repro.engine.relation.Relation.split` executes.
        """
        nparts = self.nparts
        by_part: list[list[int]] = [[] for _ in range(nparts)]
        hashes = _HASHES
        for pos, rid in enumerate(lane):
            h = hashes.get(rid)
            if h is None:
                h = id_hash(rid)
            by_part[h % nparts].append(pos)
        return by_part

    def split_rows(
        self, rows, arity: int
    ) -> list[list[tuple[int, ...]]]:
        """Partition loose ID rows (a delta shard) by the key column."""
        key = min(self.key, arity - 1) if arity else 0
        by_part: list[list[tuple[int, ...]]] = [
            [] for _ in range(self.nparts)
        ]
        if not arity:
            by_part[0].extend(rows)
            return by_part
        nparts = self.nparts
        hashes = _HASHES
        for row in rows:
            rid = row[key]
            h = hashes.get(rid)
            if h is None:
                h = id_hash(rid)
            by_part[h % nparts].append(row)
        return by_part

    def split_batch(self, batch: RowBatch) -> list[RowBatch]:
        """Partition a :class:`RowBatch` delta, both lanes kept parallel
        — the shape the exchange re-shards between executor stages."""
        key = min(self.key, batch.arity - 1) if batch.arity else 0
        parts = [RowBatch(batch.pred, batch.arity) for _ in range(self.nparts)]
        if not batch.arity:
            part = parts[0]
            part.rows.extend(batch.rows)
            part.args.extend(batch.args)
            return parts
        nparts = self.nparts
        hashes = _HASHES
        rows = batch.rows
        args = batch.args
        for pos, row in enumerate(rows):
            rid = row[key]
            h = hashes.get(rid)
            if h is None:
                h = id_hash(rid)
            part = parts[h % nparts]
            part.rows.append(row)
            part.args.append(args[pos])
        return parts

    def __repr__(self) -> str:
        return f"Partitioner(nparts={self.nparts}, key={self.key})"
