"""Partitioned parallel evaluation: partitioner, exchange, worker pool.

The subsystem behind ``evaluate(..., workers=N)``: relations and
semi-naive deltas are hash-partitioned on a key column
(:class:`~repro.engine.shard.partition.Partitioner`), re-shards between
executor stages cross process boundaries through an
:class:`~repro.engine.shard.exchange.Exchange` (codec-framed row
batches over ``multiprocessing`` pipes, with an intern-table handshake
so dense IDs agree across processes), and a
:class:`~repro.engine.shard.pool.WorkerPool` drives the SCC schedule —
independent components concurrently, recursive components as
partitioned rounds under a global fixpoint barrier.

The process-wide worker count comes from the ``REPRO_WORKERS``
environment variable (default ``1`` — the serial engine, byte-for-byte
the single-process code path) and can be changed with
:func:`set_default_workers` (the benchmark harness ``--workers`` knob,
the CLI ``--workers`` flag).  ``workers`` only engages for the default
configuration — the semi-naive strategy under the SCC scheduler; other
strategy/scheduler combinations keep their serial path regardless.

``REPRO_MP_START`` picks the ``multiprocessing`` start method
(``fork`` where available, else ``spawn``): forked workers inherit the
coordinator's database replica and intern table for free and the
handshake merely verifies the watermark; spawned workers receive the
intern table as codec fragments and the replica as framed row batches.
"""

from __future__ import annotations

import multiprocessing
import os

#: Hard cap on the worker count: beyond this the coordinator's merge
#: loop is the bottleneck anyway and pipes stop paying for themselves.
MAX_WORKERS = 64


def _validated_workers(value) -> int:
    try:
        count = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"worker count must be an integer, got {value!r}")
    if not 1 <= count <= MAX_WORKERS:
        raise ValueError(
            f"worker count must be between 1 and {MAX_WORKERS}, got {count}"
        )
    return count


_default_workers = _validated_workers(os.environ.get("REPRO_WORKERS", "1"))


def default_workers() -> int:
    """The process-wide worker count used when none is requested."""
    return _default_workers


def set_default_workers(count) -> None:
    """Change the process-wide worker count (harness ``--workers``)."""
    global _default_workers
    _default_workers = _validated_workers(count)


def resolve_workers(workers) -> int:
    """An explicit ``workers=`` argument, or the process default."""
    if workers is None:
        return _default_workers
    return _validated_workers(workers)


def start_method() -> str:
    """The ``multiprocessing`` start method workers launch under."""
    configured = os.environ.get("REPRO_MP_START")
    if configured:
        return configured
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else "spawn"


__all__ = [
    "MAX_WORKERS",
    "default_workers",
    "set_default_workers",
    "resolve_workers",
    "start_method",
]
