"""Layer-by-layer bottom-up evaluation (paper Theorem 1).

Given an admissible program P with layering ``L1, ..., Ln`` and a set
of U-facts ``M0``, computes ``Mn = Ln(...L1(M0))``: each layer first
applies its grouping rules once over the facts from below (the R1 step
of Lemma 3.2.3), then runs its remaining rules to fixpoint (R2).  The
result is a minimal model of P w.r.t. M0; for positive programs it is
the unique minimal model.

The run is driven through an :class:`~repro.engine.context.EvalContext`
shared by every layer: rule plans compile once and are reused across
iterations, ``hooks`` observe layer/iteration/firing/derivation events
(:mod:`repro.observe`), and ``metrics`` attributes wall-clock time to
the plan / match / grouping phases and to individual layers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Literal as TypingLiteral

from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.fixpoint import FixpointStats, naive_fixpoint, seminaive_fixpoint
from repro.engine.grouping import apply_grouping_rules
from repro.engine.match import Binding, match_atom
from repro.errors import EvaluationError, NotInUniverseError
from repro.observe import EngineHooks, MetricsCollector
from repro.program.rule import Atom, Program, Query, canonical_atom
from repro.program.stratify import Layering, stratify, validate_layering
from repro.program.wellformed import check_program
from repro.terms.term import Term, evaluate_ground

Strategy = TypingLiteral["naive", "seminaive"]


@dataclass
class LayerStats:
    """Per-layer work counters."""

    layer: int
    grouping_facts: int = 0
    fixpoint: FixpointStats = field(default_factory=FixpointStats)


@dataclass
class EvaluationResult:
    """The computed minimal model plus bookkeeping."""

    database: Database
    layering: Layering
    layer_stats: list[LayerStats]
    strategy: Strategy
    metrics: MetricsCollector | None = None

    @property
    def total_facts(self) -> int:
        return len(self.database)

    @property
    def total_iterations(self) -> int:
        return sum(s.fixpoint.iterations for s in self.layer_stats)

    @property
    def total_firings(self) -> int:
        return sum(s.fixpoint.rule_firings for s in self.layer_stats)

    def answers(self, query: Query) -> list[Binding]:
        """All bindings of the query's variables against the model."""
        return answer_query(self.database, query)

    def answer_atoms(self, query: Query) -> list[Atom]:
        """Matching facts, deterministically ordered."""
        out = []
        for args in _query_tuples(self.database, query):
            for _ in match_atom(query.atom, args, {}):
                out.append(Atom(query.atom.pred, args))
                break
        return sorted(out, key=lambda a: a.sort_key())


def _install_facts(db: Database, program: Program) -> None:
    for rule in program.facts():
        head = rule.head
        try:
            args = tuple(evaluate_ground(a) for a in head.args)
        except EvaluationError as exc:
            raise EvaluationError(
                f"fact {head!r} does not denote a U-fact: {exc}"
            ) from exc
        db.add(Atom(head.pred, args))


def evaluate(
    program: Program,
    edb: Iterable[Atom] = (),
    strategy: Strategy = "seminaive",
    layering: Layering | None = None,
    check: bool = True,
    planner: str = "static",
    hooks: EngineHooks | None = None,
    metrics: MetricsCollector | None = None,
) -> EvaluationResult:
    """Compute the standard minimal model of ``program`` over ``edb``.

    ``layering`` overrides the canonical stratification (it is validated
    first); Theorem 2 guarantees the result does not depend on the
    choice.  ``strategy`` selects the fixpoint algorithm within layers;
    ``planner="sized"`` enables cardinality-aware join ordering.
    ``hooks`` receives engine events (:class:`repro.observe.EngineHooks`
    — e.g. a :class:`~repro.observe.TraceRecorder`); ``metrics``
    collects per-phase and per-layer wall-clock timings.
    """
    if check:
        check_program(program)
    if layering is None:
        layering = stratify(program)
    elif not validate_layering(program, layering):
        raise EvaluationError("supplied layering violates the layering conditions")
    if strategy not in ("naive", "seminaive"):
        raise EvaluationError(f"unknown strategy {strategy!r}")

    # canonicalize EDB args exactly as IncrementalModel does, so a
    # session computes the same model in-memory and durably.
    db = Database(canonical_atom(a) for a in edb)
    _install_facts(db, program)
    ctx = EvalContext(db, planner=planner, hooks=hooks, metrics=metrics)

    run_fixpoint = naive_fixpoint if strategy == "naive" else seminaive_fixpoint
    layer_stats: list[LayerStats] = []
    for i in range(len(layering)):
        stats = LayerStats(layer=i)
        rules = [
            r for r in layering.rules_in_layer(program, i) if not r.is_fact()
        ]
        if ctx.observing:
            ctx.hooks.on_layer_start(i, rules)
        if ctx.timing:
            layer_start = ctx.metrics.now()
        grouping_rules = [r for r in rules if r.is_grouping()]
        other_rules = [r for r in rules if not r.is_grouping()]
        for rule in grouping_rules:
            for fact in apply_grouping_rules([rule], db, context=ctx):
                if db.add(fact):
                    stats.grouping_facts += 1
                    if ctx.observing:
                        ctx.hooks.on_fact_derived(fact, rule)
        if other_rules:
            stats.fixpoint = run_fixpoint(db, other_rules, context=ctx)
        if ctx.timing:
            ctx.metrics.add_layer_time(i, ctx.metrics.now() - layer_start)
        if ctx.observing:
            ctx.hooks.on_layer_end(
                i, stats.grouping_facts + stats.fixpoint.facts_derived
            )
        layer_stats.append(stats)
    return EvaluationResult(db, layering, layer_stats, strategy, metrics)


def _query_tuples(db: Database, query: Query) -> Iterable[tuple[Term, ...]]:
    """Candidate tuples for a query atom, probed by ground positions.

    Ground query arguments form an index signature routed through
    :meth:`Database.lookup` instead of scanning the whole relation.  An
    argument that evaluates outside U makes the query unsatisfiable.
    """
    positions: list[int] = []
    key_parts: list[Term] = []
    for i, arg in enumerate(query.atom.args):
        if arg.is_ground():
            try:
                key_parts.append(evaluate_ground(arg))
            except (NotInUniverseError, EvaluationError):
                return ()
            positions.append(i)
    return db.lookup(query.atom.pred, tuple(positions), tuple(key_parts))


def answer_query(db: Database, query: Query) -> list[Binding]:
    """Match a query atom against the database; sorted distinct bindings."""
    answers: list[Binding] = []
    seen: set[frozenset] = set()
    for args in _query_tuples(db, query):
        for binding in match_atom(query.atom, args, {}):
            key = frozenset(binding.items())
            if key not in seen:
                seen.add(key)
                answers.append(binding)
    answers.sort(
        key=lambda b: tuple(
            (name, value.sort_key()) for name, value in sorted(b.items())
        )
    )
    return answers
