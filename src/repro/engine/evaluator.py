"""Layer-by-layer bottom-up evaluation (paper Theorem 1).

Given an admissible program P with layering ``L1, ..., Ln`` and a set
of U-facts ``M0``, computes ``Mn = Ln(...L1(M0))``: each layer first
applies its grouping rules once over the facts from below (the R1 step
of Lemma 3.2.3), then runs its remaining rules to fixpoint (R2).  The
result is a minimal model of P w.r.t. M0; for positive programs it is
the unique minimal model.

Within a layer the default scheduler goes further than Theorem 1's
single fixpoint: the layer's predicates are condensed into strongly
connected components (:func:`repro.program.dependency.scc_schedule`),
evaluated in dependency order — non-recursive components in one
semi-naive-free pass, genuinely recursive components as their own
(much smaller) fixpoint.  Theorem 2 guarantees the model is the same;
``scheduler="layer"`` recovers the one-fixpoint-per-stratum behaviour
for differential testing.

The run is driven through an :class:`~repro.engine.context.EvalContext`
shared by every layer: rule plans compile once and are reused across
iterations, ``hooks`` observe layer/iteration/firing/derivation events
(:mod:`repro.observe`), and ``metrics`` attributes wall-clock time to
the plan / match / grouping phases, to individual layers, and to
individual SCCs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Literal as TypingLiteral

from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.fixpoint import (
    FixpointStats,
    naive_fixpoint,
    seminaive_fixpoint,
    single_pass,
)
from repro.engine.grouping import apply_grouping_rules
from repro.engine.match import Binding, match_atom
from repro.errors import EvaluationError, NotInUniverseError
from repro.observe import EngineHooks, MetricsCollector, emit_event
from repro.program.dependency import SCCComponent, scc_schedule
from repro.program.rule import Atom, Program, Query, Rule, canonical_atom
from repro.program.stratify import Layering, stratify, validate_layering
from repro.program.wellformed import check_program
from repro.terms.term import Term, evaluate_ground, id_table_size

Strategy = TypingLiteral["naive", "seminaive"]
Scheduler = TypingLiteral["scc", "layer"]


@dataclass
class SCCStats:
    """Work counters and wall time for one scheduled SCC."""

    preds: frozenset[str]
    recursive: bool
    grouping_facts: int = 0
    fixpoint: FixpointStats = field(default_factory=FixpointStats)
    seconds: float = 0.0


@dataclass
class LayerStats:
    """Per-layer work counters."""

    layer: int
    grouping_facts: int = 0
    fixpoint: FixpointStats = field(default_factory=FixpointStats)
    sccs: list[SCCStats] = field(default_factory=list)


@dataclass
class EvaluationResult:
    """The computed minimal model plus bookkeeping."""

    database: Database
    layering: Layering
    layer_stats: list[LayerStats]
    strategy: Strategy
    metrics: MetricsCollector | None = None
    #: the EvalContext the model was computed under; explanation reuses
    #: its plan cache so explain and evaluation always agree on plans.
    context: EvalContext | None = None

    @property
    def total_facts(self) -> int:
        return len(self.database)

    @property
    def total_iterations(self) -> int:
        return sum(s.fixpoint.iterations for s in self.layer_stats)

    @property
    def total_firings(self) -> int:
        return sum(s.fixpoint.rule_firings for s in self.layer_stats)

    def answers(self, query: Query) -> list[Binding]:
        """All bindings of the query's variables against the model."""
        return answer_query(self.database, query)

    def answer_atoms(self, query: Query) -> list[Atom]:
        """Matching facts, deterministically ordered."""
        out = []
        for args in _query_tuples(self.database, query):
            for _ in match_atom(query.atom, args, {}):
                out.append(Atom(query.atom.pred, args))
                break
        return sorted(out, key=lambda a: a.sort_key())


def evaluate_component(
    db: Database,
    component: SCCComponent,
    ctx: EvalContext,
    run_fixpoint=seminaive_fixpoint,
    layer: int | None = None,
    rules: Iterable[Rule] | None = None,
) -> SCCStats:
    """Evaluate one scheduled SCC against ``db``.

    Grouping rules apply once over the facts from below (the R1 step —
    their bodies read strictly lower predicates, so component order
    cannot starve them), then the remaining rules run as a fixpoint
    when the component is recursive or as a single pass when it is not.
    ``rules`` restricts the component's rules (incremental cones);
    ``layer`` tags the emitted SCC events and timings.
    """
    stats = SCCStats(component.preds, component.recursive)
    effective = component.rules if rules is None else tuple(rules)
    grouping = [r for r in effective if r.is_grouping()]
    other = [r for r in effective if not r.is_grouping()]
    if ctx.observing:
        emit_event(
            ctx.hooks,
            "on_scc_start",
            layer=layer,
            preds=component.preds,
            recursive=component.recursive,
        )
    start = time.perf_counter()
    for rule in grouping:
        for fact in apply_grouping_rules([rule], db, context=ctx):
            if db.add(fact):
                stats.grouping_facts += 1
                if ctx.observing:
                    ctx.hooks.on_fact_derived(fact, rule)
    if other:
        if component.recursive:
            stats.fixpoint = run_fixpoint(db, other, context=ctx)
        else:
            stats.fixpoint = single_pass(db, other, context=ctx)
    stats.seconds = time.perf_counter() - start
    if ctx.observing:
        emit_event(
            ctx.hooks,
            "on_scc_end",
            layer=layer,
            preds=component.preds,
            new_facts=stats.grouping_facts + stats.fixpoint.facts_derived,
            seconds=stats.seconds,
        )
    if ctx.timing:
        ctx.metrics.add_scc_time(
            layer, component.preds, component.recursive, stats.seconds
        )
    return stats


def _install_facts(db: Database, program: Program) -> None:
    for rule in program.facts():
        head = rule.head
        try:
            args = tuple(evaluate_ground(a) for a in head.args)
        except EvaluationError as exc:
            raise EvaluationError(
                f"fact {head!r} does not denote a U-fact: {exc}"
            ) from exc
        db.add(Atom(head.pred, args))


def evaluate(
    program: Program,
    edb: Iterable[Atom] = (),
    strategy: Strategy = "seminaive",
    layering: Layering | None = None,
    check: bool = True,
    planner: str = "sized-once",
    hooks: EngineHooks | None = None,
    metrics: MetricsCollector | None = None,
    scheduler: Scheduler = "scc",
    executor: str | None = None,
    workers: int | None = None,
) -> EvaluationResult:
    """Compute the standard minimal model of ``program`` over ``edb``.

    ``layering`` overrides the canonical stratification (it is validated
    first); Theorem 2 guarantees the result does not depend on the
    choice.  ``strategy`` selects the fixpoint algorithm within layers;
    ``planner`` picks the join-ordering policy (``"sized-once"`` —
    cardinality-aware, plans cached; ``"sized"`` — re-plans on size
    change; ``"static"`` — syntactic heuristic only).
    ``scheduler`` selects how each layer is driven: ``"scc"`` (default)
    condenses the layer into strongly connected components evaluated in
    dependency order, ``"layer"`` runs the layer's rules as one fixpoint
    (the Theorem 1 formulation — kept for differential testing).
    ``executor`` picks the body executor (``"batch"`` set-at-a-time /
    ``"tuple"`` one-binding-at-a-time; None uses the process default).
    ``hooks`` receives engine events (:class:`repro.observe.EngineHooks`
    — e.g. a :class:`~repro.observe.TraceRecorder`); ``metrics``
    collects per-phase, per-layer, and per-SCC wall-clock timings.

    ``workers`` selects partitioned parallel evaluation (None reads the
    process default — ``REPRO_WORKERS``, normally 1).  ``workers=1`` IS
    the serial engine: the code path below is byte-for-byte the
    single-process evaluator.  With ``workers > 1`` the SCC schedule is
    driven through a forked :class:`~repro.engine.shard.pool.WorkerPool`
    — the model computed is the same (the differential suite holds this)
    but per-fact hook events and iteration counts are not part of the
    contract, so the parallel path only engages for the default
    observable surface: semi-naive strategy, SCC scheduler, no hooks,
    and a fork-capable platform; anything else falls back to serial.
    """
    if check:
        check_program(program)
    if layering is None:
        layering = stratify(program)
    elif not validate_layering(program, layering):
        raise EvaluationError("supplied layering violates the layering conditions")
    if strategy not in ("naive", "seminaive"):
        raise EvaluationError(f"unknown strategy {strategy!r}")
    if scheduler not in ("scc", "layer"):
        raise EvaluationError(f"unknown scheduler {scheduler!r}")

    # canonicalize EDB args exactly as IncrementalModel does, so a
    # session computes the same model in-memory and durably.
    db = Database(canonical_atom(a) for a in edb)
    _install_facts(db, program)
    ctx = EvalContext(
        db, planner=planner, hooks=hooks, metrics=metrics, executor=executor
    )

    run_fixpoint = naive_fixpoint if strategy == "naive" else seminaive_fixpoint
    schedule = scc_schedule(program, layering) if scheduler == "scc" else None

    from repro.engine.shard import resolve_workers

    nworkers = resolve_workers(workers)
    if (
        nworkers > 1
        and strategy == "seminaive"
        and scheduler == "scc"
        and not ctx.observing
    ):
        from repro.engine.shard.pool import (
            WorkerPool,
            fork_available,
            run_schedule,
        )

        if fork_available():
            with WorkerPool(
                nworkers,
                db,
                schedule,
                planner=planner,
                executor=executor,
                metrics=metrics,
            ) as pool:
                layer_stats = run_schedule(db, schedule, ctx, pool, layering)
            if metrics is not None:
                metrics.record_id_table(id_table_size())
            return EvaluationResult(
                db, layering, layer_stats, strategy, metrics, ctx
            )

    layer_stats: list[LayerStats] = []
    for i in range(len(layering)):
        stats = LayerStats(layer=i)
        rules = [
            r for r in layering.rules_in_layer(program, i) if not r.is_fact()
        ]
        if ctx.observing:
            ctx.hooks.on_layer_start(i, rules)
        if ctx.timing:
            layer_start = ctx.metrics.now()
        if schedule is not None:
            for component in schedule[i]:
                scc = evaluate_component(
                    db, component, ctx, run_fixpoint, layer=i
                )
                stats.sccs.append(scc)
                stats.grouping_facts += scc.grouping_facts
                stats.fixpoint.merge(scc.fixpoint)
        else:
            grouping_rules = [r for r in rules if r.is_grouping()]
            other_rules = [r for r in rules if not r.is_grouping()]
            for rule in grouping_rules:
                for fact in apply_grouping_rules([rule], db, context=ctx):
                    if db.add(fact):
                        stats.grouping_facts += 1
                        if ctx.observing:
                            ctx.hooks.on_fact_derived(fact, rule)
            if other_rules:
                stats.fixpoint = run_fixpoint(db, other_rules, context=ctx)
        if ctx.timing:
            ctx.metrics.add_layer_time(i, ctx.metrics.now() - layer_start)
        if ctx.observing:
            ctx.hooks.on_layer_end(
                i, stats.grouping_facts + stats.fixpoint.facts_derived
            )
        layer_stats.append(stats)
    if metrics is not None:
        metrics.record_id_table(id_table_size())
    return EvaluationResult(db, layering, layer_stats, strategy, metrics, ctx)


def _query_tuples(db: Database, query: Query) -> Iterable[tuple[Term, ...]]:
    """Candidate tuples for a query atom, probed by ground positions.

    Ground query arguments form an index signature routed through
    :meth:`Database.lookup` instead of scanning the whole relation.  An
    argument that evaluates outside U makes the query unsatisfiable.
    """
    positions: list[int] = []
    key_parts: list[Term] = []
    for i, arg in enumerate(query.atom.args):
        if arg.is_ground():
            try:
                key_parts.append(evaluate_ground(arg))
            except (NotInUniverseError, EvaluationError):
                return ()
            positions.append(i)
    return db.lookup(query.atom.pred, tuple(positions), tuple(key_parts))


def answer_query(db: Database, query: Query) -> list[Binding]:
    """Match a query atom against the database; sorted distinct bindings."""
    answers: list[Binding] = []
    seen: set[frozenset] = set()
    for args in _query_tuples(db, query):
        for binding in match_atom(query.atom, args, {}):
            key = frozenset(binding.items())
            if key not in seen:
                seen.add(key)
                answers.append(binding)
    answers.sort(
        key=lambda b: tuple(
            (name, value.sort_key()) for name, value in sorted(b.items())
        )
    )
    return answers
