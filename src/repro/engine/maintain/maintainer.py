"""Differential maintenance: support counting and DRed over the executor.

The :class:`DeltaMaintainer` repairs a materialized
:class:`~repro.engine.incremental.IncrementalModel` by propagating the
*change* of an update through the SCC schedule instead of re-deriving
the affected cone:

* **non-recursive SCCs** carry per-rule derivation counts (and per-fact
  aggregate support): an update adjusts counts by running each changed
  body occurrence against the delta, and only support transitions
  through zero touch the database;
* **recursive SCCs** run DRed (delete–rederive): deletions are
  over-propagated through the component's rules, every overdeleted
  fact is checked for an alternative derivation from the surviving
  facts, and insertions — including the facts a deletion below *adds*
  above a negation — propagate semi-naively from the seeds;
* **grouping heads** keep a multiset of grouped values per key, so an
  update regroups only the keys its delta actually touched.

All rule applications go through the same
``enumerate_bindings``/``derive_facts`` entry point as evaluation, so
deltas ride the set-at-a-time operators and the specialized ID-space
closures where shapes allow.

Change arithmetic uses the standard telescoping decomposition: for a
rule with changed positive occurrences ``o1 < o2 < ... < ok``,

    new(body) - old(body) = sum_j  old(o1..o_{j-1}) * delta(o_j) * new(o_{j+1}..)

so each ``derive_facts`` call pins one occurrence to the inserted
(count +1) or deleted (count -1) tuples, overrides every *earlier*
changed occurrence to its old extension, and lets the later ones read
the already-updated database.  A rule whose *negated* predicates
changed is non-monotone in the delta and is recounted (or its groups
rebuilt) outright — negation is always on strictly lower, already-final
predicates, so one pass suffices.

For DRed the deletions of the strata below are temporarily *restored*
before seeding, which puts every lower predicate at ``old ∪ Δ+``:
overdeletion then never misses an old derivation through a positive
occurrence, and the derivations destroyed by a *negated* predicate
gaining facts are seeded explicitly by flipping the negated literal to
a positive occurrence over Δ+ while the remaining negations read an
old-state overlay.  Overdeletion may condemn too much (that is DRed);
the rederive pass and the insertion propagation run against the final
new state and reinstate everything still derivable.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.database import Database
from repro.engine.exec import (
    RowBatch,
    as_row_batch,
    derive_facts,
    enumerate_bindings,
)
from repro.engine.incremental import IncrementalModel, UpdateStats
from repro.engine.relation import encode_args
from repro.engine.maintain import DeltaBatch
from repro.errors import EvaluationError, NotInUniverseError
from repro.names import is_builtin_predicate
from repro.engine.match import match_atom
from repro.program.dependency import SCCComponent
from repro.program.rule import Atom, Literal, Rule
from repro.terms.pretty import format_rule
from repro.terms.term import SetVal, Term, evaluate_ground, intern_term

#: per-predicate fact deltas accumulated while walking the schedule.
Deltas = dict[str, list[Atom]]


def _delta_batch(atoms: list[Atom]) -> RowBatch:
    """A maintenance delta as an override-ready row batch: ID rows ride
    along with the argument tuples, so the specialized executors consume
    the delta without re-encoding at the maintenance boundary."""
    return as_row_batch(atoms[0].pred, len(atoms[0].args), atoms)


def _frontier_add(frontier: dict, fact: Atom) -> None:
    """Append one fact to a per-predicate frontier batch."""
    entry = frontier.get(fact.pred)
    if entry is None:
        entry = frontier[fact.pred] = RowBatch(fact.pred, len(fact.args))
    row = getattr(fact, "_row", None)
    if row is None:
        row = encode_args(fact.args)
    entry.add(row, fact.args)


def _flip(rule: Rule, occurrence: int) -> Rule:
    """``rule`` with the negative literal at ``occurrence`` made
    positive — the seed rule for derivations a negated predicate's
    delta destroys (overdelete) or enables (insert)."""
    body = list(rule.body)
    body[occurrence] = Literal(body[occurrence].atom, True)
    return Rule(rule.head, tuple(body))


def _grouping_spec(rule: Rule) -> tuple[int, str, tuple[tuple[int, Term], ...]]:
    """The (position, variable, other head terms) of a grouping head,
    validated exactly as :func:`~repro.engine.grouping.apply_grouping_rule`."""
    positions = rule.head.group_positions()
    if len(positions) != 1:
        raise EvaluationError(
            f"not a base-LDL1 grouping rule: {format_rule(rule)}"
        )
    group_position = positions[0]
    group_inner = rule.head.args[group_position].inner
    group_var = getattr(group_inner, "name", None)
    if group_var is None:
        raise EvaluationError(
            f"grouping over a non-variable (compile LDL1.5 first): "
            f"{format_rule(rule)}"
        )
    other_terms = tuple(
        (i, arg)
        for i, arg in enumerate(rule.head.args)
        if i != group_position
    )
    return group_position, group_var, other_terms


class _GroupState:
    """The live grouping state of one grouping rule: a multiset of
    grouped values per key (``group_bindings`` dedupes into sets, which
    cannot be decremented) plus the current fact per key."""

    __slots__ = ("group_position", "group_var", "other_terms", "buckets", "facts")

    def __init__(self, rule: Rule) -> None:
        spec = _grouping_spec(rule)
        self.group_position, self.group_var, self.other_terms = spec
        # key -> {grouped value -> multiplicity > 0}
        self.buckets: dict[tuple[Term, ...], dict[Term, int]] = {}
        # key -> the fact currently standing for that group
        self.facts: dict[tuple[Term, ...], Atom] = {}


class DeltaMaintainer:
    """Support-counting + DRed state for one :class:`IncrementalModel`.

    The maintainer is created lazily on the first maintained update and
    initializes each SCC's support state the first time the component
    falls inside an update's affected cone — always over the
    *pre-update* database, before any EDB mutation lands.  A cone
    recompute (mode switch) discards the maintainer wholesale; counts
    are never repaired after a non-differential path touched the model.
    """

    def __init__(self, model: IncrementalModel) -> None:
        self._model = model
        self._ready: set[frozenset[str]] = set()
        # non-grouping rule -> {head fact -> derivation count}
        self._counts: dict[Rule, dict[Atom, int]] = {}
        # per predicate of a counting SCC: {fact -> total support}
        self._agg: dict[str, dict[Atom, int]] = {}
        # grouping rule -> live group state (counting and DRed alike)
        self._groups: dict[Rule, _GroupState] = {}
        # per-update cache of old extensions (valid once a predicate's
        # own component has finished; reset by every ``apply``)
        self._old_cache: dict[str, list[tuple[Term, ...]]] = {}

    # -- entry point -------------------------------------------------------

    def apply(
        self,
        added: Iterable[Atom],
        removed: Iterable[Atom],
        lsn: int | None = None,
    ) -> tuple[UpdateStats, DeltaBatch]:
        """Absorb one EDB update differentially.

        ``added``/``removed`` are canonical base facts the model already
        validated (new w.r.t. / present in the EDB respectively).
        Returns the update's cost counters and the net fact delta of
        the whole model, stamped with ``lsn``.
        """
        model = self._model
        db = model.database
        added = list(added)
        removed = list(removed)
        changed = {a.pred for a in added} | {a.pred for a in removed}
        cone = model._affected_cone(changed)
        stats = UpdateStats(
            mode="maintain", affected_predicates=len(cone), lsn=lsn
        )
        # Support state must snapshot the PRE-update database: initialize
        # every cone component that has never been maintained before any
        # EDB mutation lands.
        for layer in model._schedule:
            for component in layer:
                if component.preds & cone and component.preds not in self._ready:
                    self._init_component(component)
        plus: Deltas = {}
        minus: Deltas = {}
        for atom in added:
            if db.add(atom):
                plus.setdefault(atom.pred, []).append(atom)
        for atom in removed:
            if db.discard(atom):
                minus.setdefault(atom.pred, []).append(atom)
        self._old_cache = {}
        for component in self._cone_components(cone):
            if not self._touched(component, plus, minus):
                continue
            if component.recursive:
                self._maintain_recursive(component, plus, minus, stats)
            else:
                self._maintain_counting(component, plus, minus, stats)
        batch = DeltaBatch(
            lsn=lsn,
            mode="delta",
            inserted={p: tuple(a) for p, a in plus.items() if a},
            deleted={p: tuple(a) for p, a in minus.items() if a},
        )
        return stats, batch

    # -- schedule walking --------------------------------------------------

    def _cone_components(self, cone: set[str]):
        for layer in self._model._schedule:
            for component in layer:
                if component.preds & cone:
                    yield component

    @staticmethod
    def _touched(component: SCCComponent, plus: Deltas, minus: Deltas) -> bool:
        """Did anything this component reads actually change?  Being in
        the cone only means reachability; a delta that fizzled below
        leaves the component's extension (and its counts) untouched."""
        for rule in component.rules:
            for lit in rule.body:
                pred = lit.atom.pred
                if is_builtin_predicate(pred):
                    continue
                if plus.get(pred) or minus.get(pred):
                    return True
        return False

    def _init_component(self, component: SCCComponent) -> None:
        """Snapshot the component's support state from the current
        (pre-update) database."""
        model = self._model
        db = model.database
        ctx = model._context
        for rule in component.rules:
            if rule.is_grouping():
                self._groups[rule] = self._build_group_state(rule)
            elif not component.recursive:
                counts: dict[Atom, int] = {}
                for fact in self._run(rule, ctx.plan_for(rule)):
                    counts[fact] = counts.get(fact, 0) + 1
                self._counts[rule] = counts
        if not component.recursive:
            # single predicate by construction (no self-loop): aggregate
            # support is the sum over rules, one per current group fact.
            agg: dict[Atom, int] = {}
            for rule in component.rules:
                if rule.is_grouping():
                    for fact in self._groups[rule].facts.values():
                        agg[fact] = agg.get(fact, 0) + 1
                else:
                    for fact, n in self._counts[rule].items():
                        agg[fact] = agg.get(fact, 0) + n
            (pred,) = component.preds
            self._agg[pred] = agg
        self._ready.add(component.preds)

    # -- shared executor plumbing ------------------------------------------

    def _run(self, rule, plan, overrides=None, negation_db=None):
        """One rule application through the shared entry point, with the
        context's timing and hook conventions."""
        ctx = self._model._context
        db = self._model.database
        metrics = ctx.metrics if ctx.timing else None
        if metrics is not None and overrides:
            self._record_dispatch(metrics, overrides)
        if ctx.timing:
            start = ctx.metrics.now()
            derived = derive_facts(
                db, plan, overrides=overrides, negation_db=negation_db,
                executor=ctx.executor, metrics=metrics,
            )
            ctx.metrics.add_time("match", ctx.metrics.now() - start)
        else:
            derived = derive_facts(
                db, plan, overrides=overrides, negation_db=negation_db,
                executor=ctx.executor,
            )
        if ctx.observing:
            ctx.hooks.on_rule_fired(rule, len(derived))
        return derived

    @staticmethod
    def _record_dispatch(metrics, overrides) -> None:
        """Count one maintenance dispatch: delta sources are row
        batches, base (old-extension) overrides plain tuple lists, so
        the batch lengths are exactly the delta rows this application
        consumes (feeds ``maintain_rows_per_dispatch``)."""
        rows = sum(
            len(source)
            for source in overrides.values()
            if type(source) is RowBatch
        )
        if rows:
            metrics.record_maintain_dispatch(rows)

    def _bindings(self, plan, overrides=None):
        ctx = self._model._context
        metrics = ctx.metrics if ctx.timing else None
        if metrics is not None and overrides:
            self._record_dispatch(metrics, overrides)
        return enumerate_bindings(
            self._model.database, plan, overrides=overrides,
            executor=ctx.executor,
            metrics=metrics,
        )

    def _old_tuples(self, pred: str, plus: Deltas, minus: Deltas):
        """The predicate's pre-update extension, reconstructed from the
        new state and its (final) delta.  Only valid for predicates
        whose own component already finished — the schedule order
        guarantees every caller's inputs are."""
        cached = self._old_cache.get(pred)
        if cached is None:
            inserted = {a.args for a in plus.get(pred, ())}
            cached = [
                t for t in self._model.database.tuples(pred)
                if t not in inserted
            ]
            cached.extend(a.args for a in minus.get(pred, ()))
            self._old_cache[pred] = cached
        return cached

    @staticmethod
    def _changed_occurrences(rule: Rule, plus: Deltas, minus: Deltas):
        return [
            (i, lit.atom.pred)
            for i, lit in enumerate(rule.body)
            if lit.positive
            and not is_builtin_predicate(lit.atom.pred)
            and (plus.get(lit.atom.pred) or minus.get(lit.atom.pred))
        ]

    @staticmethod
    def _negation_changed(rule: Rule, plus: Deltas, minus: Deltas) -> bool:
        return any(
            not lit.positive
            and not is_builtin_predicate(lit.atom.pred)
            and (plus.get(lit.atom.pred) or minus.get(lit.atom.pred))
            for lit in rule.body
        )

    # -- counting SCCs -----------------------------------------------------

    def _maintain_counting(
        self,
        component: SCCComponent,
        plus: Deltas,
        minus: Deltas,
        stats: UpdateStats,
    ) -> None:
        db = self._model.database
        (pred,) = component.preds
        signed: dict[Atom, int] = {}
        for rule in component.rules:
            if rule.is_grouping():
                removed, added = self._group_delta(rule, plus, minus, stats)
                for fact in removed:
                    signed[fact] = signed.get(fact, 0) - 1
                for fact in added:
                    signed[fact] = signed.get(fact, 0) + 1
            else:
                self._count_delta(rule, plus, minus, signed, stats)
        if not signed:
            return
        agg = self._agg[pred]
        added_facts: list[Atom] = []
        removed_facts: list[Atom] = []
        for fact, d in signed.items():
            if d == 0:
                continue
            old = agg.get(fact, 0)
            new = old + d
            if new:
                agg[fact] = new
            else:
                agg.pop(fact, None)
            stats.count_adjusted += 1
            if old <= 0 < new:
                if db.add(fact):
                    stats.fixpoint.facts_derived += 1
                    added_facts.append(fact)
            elif new <= 0 < old:
                if db.discard(fact):
                    stats.facts_removed += 1
                    removed_facts.append(fact)
        if added_facts:
            plus.setdefault(pred, []).extend(added_facts)
        if removed_facts:
            minus.setdefault(pred, []).extend(removed_facts)

    def _count_delta(
        self,
        rule: Rule,
        plus: Deltas,
        minus: Deltas,
        signed: dict[Atom, int],
        stats: UpdateStats,
    ) -> None:
        """Fold one rule's derivation-count delta into ``signed`` and
        the stored per-rule counts."""
        ctx = self._model._context
        counts = self._counts[rule]
        local: dict[Atom, int] = {}
        if self._negation_changed(rule, plus, minus):
            # non-monotone in the delta: recount outright (the negated
            # predicates are strictly lower and already final).
            fresh: dict[Atom, int] = {}
            for fact in self._run(rule, ctx.plan_for(rule)):
                fresh[fact] = fresh.get(fact, 0) + 1
            stats.fixpoint.rule_firings += 1
            for fact in set(counts) | set(fresh):
                d = fresh.get(fact, 0) - counts.get(fact, 0)
                if d:
                    local[fact] = d
            self._counts[rule] = fresh
        else:
            base: dict[int, list] = {}
            for occurrence, body_pred in self._changed_occurrences(
                rule, plus, minus
            ):
                plan = ctx.plan_for(rule, first=occurrence)
                for atoms, sign in (
                    (plus.get(body_pred), 1),
                    (minus.get(body_pred), -1),
                ):
                    if not atoms:
                        continue
                    overrides = dict(base)
                    overrides[occurrence] = _delta_batch(atoms)
                    for fact in self._run(rule, plan, overrides=overrides):
                        local[fact] = local.get(fact, 0) + sign
                    stats.fixpoint.rule_firings += 1
                # later telescoping terms see this occurrence at its
                # old extension; unchanged ones read the database.
                base[occurrence] = self._old_tuples(body_pred, plus, minus)
            for fact, d in list(local.items()):
                n = counts.get(fact, 0) + d
                if n:
                    counts[fact] = n
                else:
                    counts.pop(fact, None)
        for fact, d in local.items():
            if d:
                signed[fact] = signed.get(fact, 0) + d

    # -- grouping heads ----------------------------------------------------

    def _build_group_state(self, rule: Rule) -> _GroupState:
        ctx = self._model._context
        state = _GroupState(rule)
        self._accumulate(
            state, rule, self._bindings(ctx.plan_for(rule)), 1
        )
        for key in state.buckets:
            fact = self._group_fact(state, rule, key)
            assert fact is not None  # non-empty bucket
            state.facts[key] = fact
        return state

    def _accumulate(
        self, state: _GroupState, rule: Rule, bindings, sign: int
    ) -> set[tuple[Term, ...]]:
        """Add ``sign`` to the multiplicity of each binding's grouped
        value, mirroring ``group_bindings`` semantics exactly: an
        unbound grouped variable raises, keys or values outside U drop
        the binding.  Returns the touched keys."""
        touched: set[tuple[Term, ...]] = set()
        buckets = state.buckets
        group_var = state.group_var
        other_terms = state.other_terms
        for binding in bindings:
            value_term = binding.get(group_var)
            if value_term is None:
                raise EvaluationError(
                    f"grouped variable {group_var} unbound by body: "
                    f"{format_rule(rule)}"
                )
            try:
                key = tuple(
                    evaluate_ground(term.substitute(binding))
                    for _pos, term in other_terms
                )
                value = evaluate_ground(value_term)
            except (NotInUniverseError, EvaluationError):
                continue
            bucket = buckets.get(key)
            if bucket is None:
                bucket = buckets[key] = {}
            n = bucket.get(value, 0) + sign
            if n > 0:
                bucket[value] = n
            else:
                bucket.pop(value, None)
                if not bucket:
                    del buckets[key]
            touched.add(key)
        return touched

    def _group_fact(
        self, state: _GroupState, rule: Rule, key: tuple[Term, ...]
    ) -> Atom | None:
        """The fact currently standing for ``key``, or None when its
        group emptied (an empty class contributes nothing)."""
        bucket = state.buckets.get(key)
        if not bucket:
            return None
        args: list[Term] = [None] * len(rule.head.args)  # type: ignore[list-item]
        for (i, _), value in zip(state.other_terms, key):
            args[i] = value
        args[state.group_position] = intern_term(SetVal.from_ground(bucket))
        return Atom(rule.head.pred, tuple(args))

    def _group_delta(
        self, rule: Rule, plus: Deltas, minus: Deltas, stats: UpdateStats
    ) -> tuple[list[Atom], list[Atom]]:
        """Update one grouping rule's state; returns (removed, added)
        facts.  The database is not touched here — the caller decides
        how group facts feed support (counting) or DRed seeds."""
        ctx = self._model._context
        state = self._groups[rule]
        if self._negation_changed(rule, plus, minus):
            fresh = self._build_group_state(rule)
            stats.fixpoint.rule_firings += 1
            removed: list[Atom] = []
            added: list[Atom] = []
            for key in set(state.facts) | set(fresh.facts):
                old_fact = state.facts.get(key)
                new_fact = fresh.facts.get(key)
                if old_fact == new_fact:
                    continue
                if old_fact is not None:
                    removed.append(old_fact)
                if new_fact is not None:
                    added.append(new_fact)
            self._groups[rule] = fresh
            return removed, added
        touched: set[tuple[Term, ...]] = set()
        base: dict[int, list] = {}
        for occurrence, body_pred in self._changed_occurrences(
            rule, plus, minus
        ):
            plan = ctx.plan_for(rule, first=occurrence)
            for atoms, sign in (
                (plus.get(body_pred), 1),
                (minus.get(body_pred), -1),
            ):
                if not atoms:
                    continue
                overrides = dict(base)
                overrides[occurrence] = _delta_batch(atoms)
                touched |= self._accumulate(
                    state, rule, self._bindings(plan, overrides), sign
                )
                stats.fixpoint.rule_firings += 1
            base[occurrence] = self._old_tuples(body_pred, plus, minus)
        removed, added = [], []
        for key in touched:
            old_fact = state.facts.get(key)
            new_fact = self._group_fact(state, rule, key)
            if old_fact == new_fact:
                continue  # multiplicities moved, the value set did not
            if new_fact is None:
                del state.facts[key]
            else:
                state.facts[key] = new_fact
            if old_fact is not None:
                removed.append(old_fact)
            if new_fact is not None:
                added.append(new_fact)
        return removed, added

    # -- recursive SCCs: DRed ----------------------------------------------

    def _maintain_recursive(
        self,
        component: SCCComponent,
        plus: Deltas,
        minus: Deltas,
        stats: UpdateStats,
    ) -> None:
        model = self._model
        db = model.database
        ctx = model._context
        comp = component.preds
        grouping_rules = [r for r in component.rules if r.is_grouping()]
        rules = [r for r in component.rules if not r.is_grouping()]

        # A. grouping deltas first: grouping bodies are strictly lower,
        # hence already at their final new state.
        group_removed: list[Atom] = []
        group_added: list[Atom] = []
        for rule in grouping_rules:
            removed, added = self._group_delta(rule, plus, minus, stats)
            group_removed.extend(removed)
            group_added.extend(added)

        # B. restore the strata-below deletions so every lower predicate
        # reads old ∪ Δ+: overdeletion then cannot miss an old
        # derivation through a positive occurrence.
        restored: list[Atom] = []
        for atoms in minus.values():
            for atom in atoms:
                if db.add(atom):
                    restored.append(atom)

        overdeleted: dict[Atom, None] = {}  # insertion-ordered set
        frontier: dict[str, RowBatch] = {}

        def condemn(fact: Atom) -> None:
            if fact in overdeleted:
                return
            if not db.contains_tuple(fact.pred, fact.args):
                return
            overdeleted[fact] = None
            _frontier_add(frontier, fact)

        for fact in group_removed:
            condemn(fact)
        old_neg_db: Database | None = None
        for rule in rules:
            for i, lit in enumerate(rule.body):
                pred = lit.atom.pred
                if is_builtin_predicate(pred):
                    continue
                if lit.positive:
                    atoms = minus.get(pred)
                    if not atoms:
                        continue
                    plan = ctx.plan_for(rule, first=i)
                    stats.fixpoint.rule_firings += 1
                    for fact in self._run(
                        rule, plan, overrides={i: _delta_batch(atoms)}
                    ):
                        condemn(fact)
                else:
                    # a negated predicate gained facts: derivations that
                    # matched them through the negation died.  Seed them
                    # by flipping the literal to a positive occurrence
                    # over Δ+; the remaining negations must read the OLD
                    # state (new-state negation could hide old bindings).
                    atoms = plus.get(pred)
                    if not atoms:
                        continue
                    if old_neg_db is None:
                        old_neg_db = self._old_negation_db(rules, plus)
                    flipped = _flip(rule, i)
                    plan = ctx.plan_for(flipped, first=i)
                    stats.fixpoint.rule_firings += 1
                    for fact in self._run(
                        flipped, plan,
                        overrides={i: _delta_batch(atoms)},
                        negation_db=old_neg_db,
                    ):
                        condemn(fact)

        # semi-naive overdelete propagation within the component.  The
        # database still holds every condemned fact, so each wave joins
        # against full old-state support; negation reads old ∪ Δ+,
        # which blocks at least what the old state blocked — anything
        # it hides is exactly the flip-seeded case above.
        comp_occurrences = [
            (rule, i, lit.atom.pred)
            for rule in rules
            for i, lit in enumerate(rule.body)
            if lit.positive and lit.atom.pred in comp
        ]
        while frontier:
            wave, frontier = frontier, {}
            stats.fixpoint.iterations += 1
            for rule, i, pred in comp_occurrences:
                source = wave.get(pred)
                if not source:
                    continue
                plan = ctx.plan_for(rule, first=i)
                stats.fixpoint.rule_firings += 1
                for fact in self._run(rule, plan, overrides={i: source}):
                    condemn(fact)

        # C. apply: drop the condemned facts, un-restore the lower
        # deltas.  The database is now at the final new state for every
        # lower predicate and at (old − overdeleted) for the component.
        for fact in overdeleted:
            db.discard(fact)
        for atom in restored:
            db.discard(atom)
        stats.overdeleted += len(overdeleted)

        inserted_now: dict[Atom, None] = {}
        up_frontier: dict[str, RowBatch] = {}

        def add_fact(fact: Atom) -> bool:
            if db.add(fact):
                inserted_now[fact] = None
                _frontier_add(up_frontier, fact)
                return True
            return False

        # D. rederive: a condemned fact survives if it is a current
        # group fact, or some rule for its predicate derives it from
        # the facts still standing.  Facts only derivable through other
        # condemned facts come back — if at all — via the insertion
        # propagation below, once a support chain reappears.
        current_groups: dict[str, set[Atom]] = {}
        for rule in grouping_rules:
            facts = current_groups.setdefault(rule.head.pred, set())
            facts.update(self._groups[rule].facts.values())
        by_head: dict[str, list[Rule]] = {}
        for rule in rules:
            by_head.setdefault(rule.head.pred, []).append(rule)
        for fact in overdeleted:
            if fact in current_groups.get(fact.pred, ()):
                alive = True
            else:
                alive = any(
                    self._rederivable(rule, fact)
                    for rule in by_head.get(fact.pred, ())
                )
            if alive:
                add_fact(fact)
                stats.rederived += 1
                stats.fixpoint.facts_derived += 1

        # E. insertion seeds: new group facts, lower-stratum insertions
        # through positive occurrences, and the derivations a lower
        # deletion *enables* through a negation (flip over Δ−; the new
        # database state is exactly right for the remaining literals).
        for fact in group_added:
            if add_fact(fact):
                stats.fixpoint.facts_derived += 1
        for rule in rules:
            for i, lit in enumerate(rule.body):
                pred = lit.atom.pred
                if is_builtin_predicate(pred) or pred in comp:
                    continue
                if lit.positive:
                    atoms = plus.get(pred)
                    flipped = None
                else:
                    atoms = minus.get(pred)
                    flipped = _flip(rule, i)
                if not atoms:
                    continue
                run_rule = flipped if flipped is not None else rule
                plan = ctx.plan_for(run_rule, first=i)
                stats.fixpoint.rule_firings += 1
                for fact in self._run(
                    run_rule, plan, overrides={i: _delta_batch(atoms)}
                ):
                    if add_fact(fact):
                        stats.fixpoint.facts_derived += 1
        while up_frontier:
            wave, up_frontier = up_frontier, {}
            stats.fixpoint.iterations += 1
            for rule, i, pred in comp_occurrences:
                source = wave.get(pred)
                if not source:
                    continue
                plan = ctx.plan_for(rule, first=i)
                stats.fixpoint.rule_firings += 1
                for fact in self._run(rule, plan, overrides={i: source}):
                    if add_fact(fact):
                        stats.fixpoint.facts_derived += 1

        # F. net delta: what actually left and entered the component.
        for pred in comp:
            removed_facts = [
                f for f in overdeleted
                if f.pred == pred and not db.contains_tuple(pred, f.args)
            ]
            added_facts = [
                f for f in inserted_now
                if f.pred == pred and f not in overdeleted
            ]
            if removed_facts:
                minus.setdefault(pred, []).extend(removed_facts)
                stats.facts_removed += len(removed_facts)
            if added_facts:
                plus.setdefault(pred, []).extend(added_facts)

    def _old_negation_db(self, rules, plus: Deltas) -> Database:
        """Old-state overlay for every negated predicate of the
        component's rules.  Negated predicates are strictly lower and
        their deletions are restored at this point, so the database
        holds old ∪ Δ+ — removing Δ+ reconstructs the old state
        exactly."""
        db = self._model.database
        overlay = Database()
        seen: set[str] = set()
        for rule in rules:
            for lit in rule.body:
                pred = lit.atom.pred
                if lit.positive or is_builtin_predicate(pred):
                    continue
                if pred in seen:
                    continue
                seen.add(pred)
                inserted = {a.args for a in plus.get(pred, ())}
                for args in list(db.tuples(pred)):
                    if args not in inserted:
                        overlay.add_tuple(pred, args)
        return overlay

    def _rederivable(self, rule: Rule, fact: Atom) -> bool:
        """Does ``rule`` still derive ``fact`` from the facts standing
        in the database?  Head-bound evaluation: match the head against
        the fact, then run the body plan with those variables seeded."""
        ctx = self._model._context
        for binding in match_atom(rule.head, fact.args, {}):
            plan = ctx.plan_for(
                rule, initially_bound=frozenset(binding)
            )
            for _ in self._bindings_from(plan, binding):
                return True
        return False

    def _bindings_from(self, plan, binding):
        ctx = self._model._context
        return enumerate_bindings(
            self._model.database, plan, binding=binding,
            executor=ctx.executor,
            metrics=ctx.metrics if ctx.timing else None,
        )
