"""Maintenance package: the mode knob and the delta-batch surface.

Two ways to repair a materialized model after an EDB update sit behind
:class:`~repro.engine.incremental.IncrementalModel`:

* ``"delta"`` (default) — the differential engine in
  :mod:`repro.engine.maintain.maintainer`: per-derived-fact support
  counting for non-recursive SCCs, DRed (delete–rederive) for
  recursive ones, and multiset-backed regrouping for grouping heads,
  all riding the same ``enumerate_bindings``/``derive_facts`` entry
  point as evaluation itself;
* ``"recompute"`` — the original cone-clearing paths (semi-naive
  continuation for monotone insertions, layered re-evaluation for
  everything else), kept as the differential oracle.

The process-wide default comes from the ``REPRO_MAINTAIN`` environment
variable (CI runs a leg under ``REPRO_MAINTAIN=recompute`` so the
oracle cannot rot) and can be changed with :func:`set_maintain_mode`
(the benchmark harness ``--maintain`` knob); a single model can pin its
own mode via ``IncrementalModel(maintain=...)``.

Every maintained update also publishes a :class:`DeltaBatch` — the net
per-predicate fact changes of the whole model, stamped with the WAL LSN
of the producing mutation when the update came through the durable
store — so downstream consumers (replicas, answer caches) can apply
view deltas instead of re-deriving.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.program.rule import Atom

MAINTAIN_MODES = ("delta", "recompute")


def _validated(name: str) -> str:
    if name not in MAINTAIN_MODES:
        raise ValueError(
            f"unknown maintenance mode {name!r}; "
            f"expected one of {MAINTAIN_MODES}"
        )
    return name


_maintain = _validated(os.environ.get("REPRO_MAINTAIN", "delta"))


def maintain_mode() -> str:
    """The process-wide maintenance mode used when none is requested."""
    return _maintain


def set_maintain_mode(name: str) -> None:
    """Change the process-wide default (harness ``--maintain`` knob)."""
    global _maintain
    _maintain = _validated(name)


@dataclass(frozen=True)
class DeltaBatch:
    """The net fact changes one maintained update made to the model.

    ``inserted``/``deleted`` map predicate names to the ground atoms
    that entered/left the model (EDB changes included) — *net* changes:
    a fact overdeleted and then rederived in the same update appears in
    neither.  ``lsn`` is the WAL LSN of the mutation that produced the
    batch (the log offset one past the producing record) when the
    update came through :class:`repro.storage.DurableStore`, else None.
    """

    lsn: int | None = None
    mode: str = "delta"
    inserted: Mapping[str, tuple["Atom", ...]] = field(default_factory=dict)
    deleted: Mapping[str, tuple["Atom", ...]] = field(default_factory=dict)

    @property
    def inserted_count(self) -> int:
        return sum(len(atoms) for atoms in self.inserted.values())

    @property
    def deleted_count(self) -> int:
        return sum(len(atoms) for atoms in self.deleted.values())

    def __len__(self) -> int:
        return self.inserted_count + self.deleted_count


def changed_predicates(batch: DeltaBatch) -> frozenset[str]:
    """The predicates whose extensions ``batch`` touched (either way)."""
    return frozenset(batch.inserted) | frozenset(batch.deleted)


@dataclass(frozen=True)
class Invalidation:
    """What one completed update means for downstream answer caches.

    ``preds`` names the predicates whose extensions may now differ —
    ``None`` means *everything* (the program itself changed).  When the
    signal came from a :class:`DeltaBatch`, ``precise`` is True and
    ``preds`` are exactly the net-changed predicates; the recompute
    paths and in-memory sessions publish a conservative superset
    (``precise`` False).  ``lsn`` is the WAL LSN of the producing
    mutation when there is one: a cache entry stamped at or after it
    already reflects the update and survives.
    """

    lsn: int | None = None
    preds: frozenset[str] | None = None
    precise: bool = True


def invalidation_of(batch: DeltaBatch) -> Invalidation:
    """The precise invalidation a maintained update's delta implies."""
    return Invalidation(
        lsn=batch.lsn, preds=changed_predicates(batch), precise=True
    )


__all__ = [
    "MAINTAIN_MODES",
    "DeltaBatch",
    "Invalidation",
    "changed_predicates",
    "invalidation_of",
    "maintain_mode",
    "set_maintain_mode",
]
