"""Columnar relations: dictionary-encoded tuples with hash indexes.

A :class:`Relation` stores the extension of one predicate.  Since PR 6
the primary representation is *columnar over dense term IDs*: every
stored tuple is encoded as a row of equality-class IDs
(:func:`repro.terms.term.row_id`), kept three ways at once —

* ``_rowpos`` — a dict mapping each ID row to its position, giving O(1)
  membership, insertion order, and the row *set* the specialized
  executors use for semi-join and anti-join membership tests;
* ``_columns`` — parallel ``list[int]`` arrays, one per argument
  position (the dictionary-encoded columnar layout; ``column`` and
  ``id_set`` expose them for scans and per-position statistics);
* ``_id_indexes`` — per-signature hash indexes in ID space, keyed by a
  bare ``int`` for 1-position signatures and an int tuple otherwise,
  with ID-row-set buckets.  Built on first probe, maintained by every
  later ``add``/``discard``, and preserved by ``copy`` exactly as the
  term-level indexes always were.

Because ``row_id`` identifies the term *equality class*, ID equality on
rows coincides with term-tuple equality, so membership and join
semantics are unchanged from the term-set representation.

The term-level API (iteration, ``lookup``, ``probe_index``) reads a
parallel *term lane*: the exact argument tuples as added, kept verbatim
alongside the columns.  Equality-class IDs deliberately collapse
equal-but-distinct spellings (a quoted string vs the bare symbol), so
decoding rows back to terms would surface whichever spelling interned
first process-wide; the verbatim lane keeps answers and printing
deterministic, exactly as the pre-columnar representation did.
Term-level hash indexes are still built lazily per signature and
maintained incrementally.

Single-position signatures — the dominant shape in linear-recursive
joins — key both index families by the bare key instead of a 1-tuple:
an ``int`` key for ID indexes, the term itself (cached hash) for term
indexes.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.terms.term import Term, _ID_TABLE, row_id

ArgTuple = tuple[Term, ...]

#: A stored tuple in ID space: one equality-class ID per argument.
IdRow = tuple[int, ...]


def encode_args(args: ArgTuple) -> IdRow:
    """Encode a term tuple as a row of equality-class IDs.

    Already-interned terms (the common case everywhere past the parser)
    encode with one attribute load each; anything else is interned on
    the way in, which also canonicalizes the stored representation.
    """
    row = []
    for term in args:
        rid = term._rid
        if rid is None:
            rid = row_id(term)
        row.append(rid)
    return tuple(row)


def decode_row(row: IdRow) -> ArgTuple:
    """Materialize the canonical term tuple for an ID row."""
    table = _ID_TABLE
    return tuple(table[rid] for rid in row)


class Relation:
    """The set of ground argument tuples of one predicate."""

    __slots__ = (
        "pred",
        "arity",
        "_rowpos",
        "_columns",
        "_id_indexes",
        "_indexes",
        "_decoded",
    )

    def __init__(self, pred: str, arity: int) -> None:
        self.pred = pred
        self.arity = arity
        self._rowpos: dict[IdRow, int] = {}
        self._columns: tuple[list[int], ...] = tuple([] for _ in range(arity))
        # bucket values are sets: ``_rowpos`` guarantees row uniqueness,
        # so membership and removal stay O(1) instead of O(bucket).
        self._id_indexes: dict[tuple[int, ...], dict[object, set[IdRow]]] = {}
        self._indexes: dict[tuple[int, ...], dict[object, set[ArgTuple]]] = {}
        # the term lane: the exact argument tuples as added, parallel to
        # ``_columns`` positions.  ID rows carry *equality-class* IDs,
        # which collapse equal-but-distinct spellings (a quoted string
        # vs the bare symbol), so decoding a row would surface whichever
        # spelling interned first process-wide; keeping the added tuples
        # verbatim makes iteration, answers, and printing deterministic
        # — exactly the pre-columnar behavior — at one list append per
        # insert.
        self._decoded: list[ArgTuple] = []

    def __len__(self) -> int:
        return len(self._rowpos)

    def __iter__(self) -> Iterator[ArgTuple]:
        return iter(self._decoded)

    def __contains__(self, args: ArgTuple) -> bool:
        return encode_args(args) in self._rowpos

    # -- ID-space API (the specialized executors' surface) -----------------

    def id_rows(self):
        """The set of stored ID rows (a live dict keys view)."""
        return self._rowpos.keys()

    def contains_id_row(self, row: IdRow) -> bool:
        return row in self._rowpos

    def column(self, position: int) -> list[int]:
        """The ID column for one argument position (do not mutate)."""
        return self._columns[position]

    def id_set(self, position: int) -> set[int]:
        """Distinct IDs appearing at one position (the dictionary of the
        dictionary encoding; useful for selectivity estimates)."""
        return set(self._columns[position])

    def id_index(
        self, positions: tuple[int, ...]
    ) -> dict[object, set[IdRow]]:
        """The ID-space hash index for a non-empty position signature,
        built on first use and maintained by later adds/discards.  Keys
        follow the index convention: bare ``int`` for 1-position
        signatures, int tuple otherwise; buckets are ID-row sets."""
        index = self._id_indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                pos = positions[0]
                for row in self._rowpos:
                    key = row[pos]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
            else:
                for row in self._rowpos:
                    key = tuple(row[i] for i in positions)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
            self._id_indexes[positions] = index
        return index

    # -- mutation ----------------------------------------------------------

    def add(self, args: ArgTuple) -> bool:
        """Insert a tuple; returns True when it is new."""
        return self.add_row(encode_args(args), args)

    def add_row(self, row: IdRow, args: ArgTuple) -> bool:
        """Insert a tuple whose ID row the caller already holds (the
        specialized executor derives facts in ID space); ``row`` must
        be the encoding of ``args``."""
        if row in self._rowpos:
            return False
        if len(args) != self.arity:
            raise ValueError(
                f"{self.pred}: arity {self.arity} but got {len(args)} args"
            )
        self._rowpos[row] = len(self._rowpos)
        for column, rid in zip(self._columns, row):
            column.append(rid)
        if self._id_indexes:
            for positions, index in self._id_indexes.items():
                if len(positions) == 1:
                    key = row[positions[0]]
                else:
                    key = tuple(row[i] for i in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {row}
                else:
                    bucket.add(row)
        self._decoded.append(args)
        if self._indexes:
            for positions, index in self._indexes.items():
                if len(positions) == 1:
                    key = args[positions[0]]
                else:
                    key = tuple(args[i] for i in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {args}
                else:
                    bucket.add(args)
        return True

    def add_all(self, tuples: Iterable[ArgTuple]) -> int:
        """Insert many tuples; returns how many were new."""
        return sum(1 for t in tuples if self.add(t))

    def discard(self, args: ArgTuple) -> bool:
        """Remove a tuple; returns True when it was present.

        Already-built indexes — columnar ID indexes and term-level ones
        alike — are maintained in place, mirroring :meth:`add`, so
        later probes stay consistent.  Columns compact by swapping the
        last row into the vacated position (order is not part of the
        relation contract).
        """
        row = encode_args(args)
        pos = self._rowpos.pop(row, None)
        if pos is None:
            return False
        last = len(self._rowpos)
        columns = self._columns
        if pos != last:
            moved = tuple(column[last] for column in columns)
            for column, rid in zip(columns, moved):
                column[pos] = rid
            self._rowpos[moved] = pos
        for column in columns:
            column.pop()
        decoded = self._decoded
        stored = decoded[pos]  # the verbatim tuple being removed
        if pos != last:
            decoded[pos] = decoded[last]
        decoded.pop()
        for positions, index in self._id_indexes.items():
            if len(positions) == 1:
                key = row[positions[0]]
            else:
                key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        if self._indexes:
            # ``stored`` is the tuple the index buckets actually hold;
            # bucket membership is structural, so its exact spelling
            # removes it even when ``args`` spelled some argument
            # differently (quoted vs bare — equal, hence same row).
            for positions, index in self._indexes.items():
                if len(positions) == 1:
                    key = stored[positions[0]]
                else:
                    key = tuple(stored[i] for i in positions)
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(stored)
                    if not bucket:
                        del index[key]
        return True

    # -- term-space API (decoded view) -------------------------------------

    def lookup(self, positions: tuple[int, ...], key: ArgTuple) -> Iterable[ArgTuple]:
        """Tuples whose projection on ``positions`` equals ``key``.

        Builds (and thereafter maintains) a term-level hash index for
        the position signature on first use.  An empty signature scans
        everything.
        """
        if not positions:
            return iter(self)
        index = self.probe_index(positions)
        return index.get(key[0] if len(positions) == 1 else key, ())

    def probe_index(
        self, positions: tuple[int, ...]
    ) -> dict[object, set[ArgTuple]]:
        """The term-level hash index for a non-empty position signature,
        built on first use from the verbatim term lane.  The term-batch
        executor probes this dict directly — one cached-hash ``get``
        per binding, no call layers in the join's inner loop.  Keys
        follow the index convention: bare term for 1-position
        signatures, tuple otherwise.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            rows = self._decoded
            if len(positions) == 1:
                pos = positions[0]
                for targs in rows:
                    index_key = targs[pos]
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = {targs}
                    else:
                        bucket.add(targs)
            else:
                for targs in rows:
                    index_key = tuple(targs[i] for i in positions)
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = {targs}
                    else:
                        bucket.add(targs)
            self._indexes[positions] = index
        return index

    def copy(self) -> "Relation":
        """An independent clone, *including* already-built indexes of
        both families (columnar ID indexes and term-level ones).

        Copies used by incremental and well-founded evaluation probe
        the same signatures as the original; rebuilding every index on
        first probe would pay the full O(n) construction again.
        Bucket sets are copied so later ``add``s on either side stay
        independent.
        """
        clone = Relation(self.pred, self.arity)
        clone._rowpos = dict(self._rowpos)
        clone._columns = tuple(list(column) for column in self._columns)
        clone._id_indexes = {
            positions: {key: set(bucket) for key, bucket in index.items()}
            for positions, index in self._id_indexes.items()
        }
        clone._indexes = {
            positions: {key: set(bucket) for key, bucket in index.items()}
            for positions, index in self._indexes.items()
        }
        clone._decoded = list(self._decoded)
        return clone
