"""In-memory relations with lazily built hash indexes.

A :class:`Relation` stores the extension of one predicate as a set of
ground argument tuples.  Joins during rule evaluation probe the
relation with a subset of argument positions bound; the relation builds
and maintains a hash index per distinct bound-position signature the
first time it is probed, turning nested-loop joins into index joins.

Single-position signatures — the dominant shape in linear-recursive
joins — key their index by the bare term instead of a 1-tuple: the
term's cached hash makes every dict operation on the index one cached
lookup instead of a tuple allocation plus a fresh tuple hash.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.terms.term import Term

ArgTuple = tuple[Term, ...]


class Relation:
    """The set of ground argument tuples of one predicate."""

    __slots__ = ("pred", "arity", "_tuples", "_indexes")

    def __init__(self, pred: str, arity: int) -> None:
        self.pred = pred
        self.arity = arity
        self._tuples: set[ArgTuple] = set()
        # bucket values are sets: ``_tuples`` guarantees uniqueness, so
        # membership and removal stay O(1) instead of O(bucket).  Keys
        # are bare terms for 1-position signatures, tuples otherwise.
        self._indexes: dict[tuple[int, ...], dict[object, set[ArgTuple]]] = {}

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[ArgTuple]:
        return iter(self._tuples)

    def __contains__(self, args: ArgTuple) -> bool:
        return args in self._tuples

    def add(self, args: ArgTuple) -> bool:
        """Insert a tuple; returns True when it is new."""
        if args in self._tuples:
            return False
        if len(args) != self.arity:
            raise ValueError(
                f"{self.pred}: arity {self.arity} but got {len(args)} args"
            )
        self._tuples.add(args)
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                key = args[positions[0]]
            else:
                key = tuple(args[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = {args}
            else:
                bucket.add(args)
        return True

    def add_all(self, tuples: Iterable[ArgTuple]) -> int:
        """Insert many tuples; returns how many were new."""
        return sum(1 for t in tuples if self.add(t))

    def discard(self, args: ArgTuple) -> bool:
        """Remove a tuple; returns True when it was present.

        Already-built hash indexes are maintained in place, mirroring
        :meth:`add`, so later probes stay consistent.
        """
        if args not in self._tuples:
            return False
        self._tuples.discard(args)
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                key = args[positions[0]]
            else:
                key = tuple(args[i] for i in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(args)
                if not bucket:
                    del index[key]
        return True

    def lookup(self, positions: tuple[int, ...], key: ArgTuple) -> Iterable[ArgTuple]:
        """Tuples whose projection on ``positions`` equals ``key``.

        Builds (and thereafter maintains) a hash index for the position
        signature on first use.  An empty signature scans everything.
        """
        if not positions:
            return self._tuples
        index = self.probe_index(positions)
        return index.get(key[0] if len(positions) == 1 else key, ())

    def probe_index(
        self, positions: tuple[int, ...]
    ) -> dict[object, set[ArgTuple]]:
        """The hash index for a non-empty position signature, built on
        first use.  The batch executor probes this dict directly — one
        cached-hash ``get`` per binding, no call layers in the join's
        inner loop.  Keys follow the index convention: bare term for
        1-position signatures, tuple otherwise.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                pos = positions[0]
                for args in self._tuples:
                    index_key = args[pos]
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = {args}
                    else:
                        bucket.add(args)
            else:
                for args in self._tuples:
                    index_key = tuple(args[i] for i in positions)
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = {args}
                    else:
                        bucket.add(args)
            self._indexes[positions] = index
        return index

    def copy(self) -> "Relation":
        """An independent clone, *including* already-built hash indexes.

        Copies used by incremental and well-founded evaluation probe the
        same signatures as the original; rebuilding every index on first
        probe would pay the full O(n) construction again.  Bucket sets
        are copied so later ``add``s on either side stay independent.
        """
        clone = Relation(self.pred, self.arity)
        clone._tuples = set(self._tuples)
        clone._indexes = {
            positions: {key: set(bucket) for key, bucket in index.items()}
            for positions, index in self._indexes.items()
        }
        return clone
