"""Columnar relations: dictionary-encoded tuples with hash indexes.

A :class:`Relation` stores the extension of one predicate.  Since PR 6
the primary representation is *columnar over dense term IDs*: every
stored tuple is encoded as a row of equality-class IDs
(:func:`repro.terms.term.row_id`), kept three ways at once —

* ``_rowpos`` — a dict mapping each ID row to its position, giving O(1)
  membership, insertion order, and the row *set* the specialized
  executors use for semi-join and anti-join membership tests;
* ``_columns`` — parallel ``array('q')`` int lanes, one per argument
  position (the dictionary-encoded columnar layout; ``column`` and
  ``id_set`` expose them for scans and per-position statistics, and
  ``lane`` hands out a zero-copy ``memoryview`` slice for the vector
  kernels);
* ``_id_indexes`` — per-signature hash indexes in ID space, keyed by a
  bare ``int`` for 1-position signatures and an int tuple otherwise,
  with ID-row-set buckets.  Built on first probe, maintained by every
  later ``add``/``discard``, and preserved by ``copy`` exactly as the
  term-level indexes always were.

Because ``row_id`` identifies the term *equality class*, ID equality on
rows coincides with term-tuple equality, so membership and join
semantics are unchanged from the term-set representation.

The term-level API (iteration, ``lookup``, ``probe_index``) reads a
parallel *term lane*: the exact argument tuples as added, kept verbatim
alongside the columns.  Equality-class IDs deliberately collapse
equal-but-distinct spellings (a quoted string vs the bare symbol), so
decoding rows back to terms would surface whichever spelling interned
first process-wide; the verbatim lane keeps answers and printing
deterministic, exactly as the pre-columnar representation did.
Term-level hash indexes are still built lazily per signature and
maintained incrementally.

Single-position signatures — the dominant shape in linear-recursive
joins — key both index families by the bare key instead of a 1-tuple:
an ``int`` key for ID indexes, the term itself (cached hash) for term
indexes.

``copy`` is copy-on-write: the clone shares every container with the
original until either side mutates, at which point the mutating side
takes private copies (``_unshare``).  Fixpoint delta bookkeeping and
magic evaluation copy relations that are usually never (or barely)
written afterwards; deep-copying the int lanes on every copy would eat
the vectorization win.
"""

from __future__ import annotations

from array import array
from itertools import filterfalse
from typing import Callable, Iterable, Iterator

from repro.terms.term import Term, _ID_TABLE, row_id

ArgTuple = tuple[Term, ...]

#: A stored tuple in ID space: one equality-class ID per argument.
IdRow = tuple[int, ...]


def encode_args(args: ArgTuple) -> IdRow:
    """Encode a term tuple as a row of equality-class IDs.

    Already-interned terms (the common case everywhere past the parser)
    encode with one attribute load each; anything else is interned on
    the way in, which also canonicalizes the stored representation.
    """
    row = []
    for term in args:
        rid = term._rid
        if rid is None:
            rid = row_id(term)
        row.append(rid)
    return tuple(row)


def decode_row(row: IdRow) -> ArgTuple:
    """Materialize the canonical term tuple for an ID row."""
    table = _ID_TABLE
    return tuple(table[rid] for rid in row)


class Relation:
    """The set of ground argument tuples of one predicate."""

    __slots__ = (
        "pred",
        "arity",
        "_rowpos",
        "_columns",
        "_id_indexes",
        "_indexes",
        "_decoded",
        "_cow",
        "partition",
    )

    def __init__(self, pred: str, arity: int) -> None:
        self.pred = pred
        self.arity = arity
        # (key_column, nparts, index) when this relation holds one hash
        # partition of a larger extension (see :meth:`split`); None for
        # an unpartitioned relation.  Metadata only — membership and
        # join semantics never read it.
        self.partition: tuple[int, int, int] | None = None
        self._rowpos: dict[IdRow, int] = {}
        self._columns: tuple[array, ...] = tuple(
            array("q") for _ in range(arity)
        )
        # bucket values are sets: ``_rowpos`` guarantees row uniqueness,
        # so membership and removal stay O(1) instead of O(bucket).
        self._id_indexes: dict[tuple[int, ...], dict[object, set[IdRow]]] = {}
        self._indexes: dict[tuple[int, ...], dict[object, set[ArgTuple]]] = {}
        # the term lane: the exact argument tuples as added, parallel to
        # ``_columns`` positions.  ID rows carry *equality-class* IDs,
        # which collapse equal-but-distinct spellings (a quoted string
        # vs the bare symbol), so decoding a row would surface whichever
        # spelling interned first process-wide; keeping the added tuples
        # verbatim makes iteration, answers, and printing deterministic
        # — exactly the pre-columnar behavior — at one list append per
        # insert.
        self._decoded: list[ArgTuple] = []
        # True while this relation's containers are shared with a
        # copy-on-write clone; the first mutation on either side calls
        # ``_unshare`` to take private copies.
        self._cow = False

    def __len__(self) -> int:
        return len(self._rowpos)

    def __iter__(self) -> Iterator[ArgTuple]:
        return iter(self._decoded)

    def __contains__(self, args: ArgTuple) -> bool:
        return encode_args(args) in self._rowpos

    # -- ID-space API (the specialized executors' surface) -----------------

    def id_rows(self):
        """The set of stored ID rows (a live dict keys view)."""
        return self._rowpos.keys()

    def contains_id_row(self, row: IdRow) -> bool:
        return row in self._rowpos

    def column(self, position: int) -> array:
        """The ID column for one argument position (do not mutate)."""
        return self._columns[position]

    def lane(self, position: int) -> memoryview:
        """A zero-copy ``memoryview`` slice of one ID column.

        The view reads the live ``array('q')`` buffer — no copy, valid
        int lane for the vector kernels.  It pins the buffer against
        resizing (``BufferError`` on ``add`` while a view is alive), so
        callers must release it — or simply let it fall out of scope —
        before mutating the relation.  Kernel call sites hold lanes
        only for the duration of one whole-column pass.
        """
        return memoryview(self._columns[position])

    def id_set(self, position: int) -> set[int]:
        """Distinct IDs appearing at one position (the dictionary of the
        dictionary encoding; useful for selectivity estimates)."""
        return set(self._columns[position])

    def id_index(
        self, positions: tuple[int, ...]
    ) -> dict[object, set[IdRow]]:
        """The ID-space hash index for a non-empty position signature,
        built on first use and maintained by later adds/discards.  Keys
        follow the index convention: bare ``int`` for 1-position
        signatures, int tuple otherwise; buckets are ID-row sets."""
        index = self._id_indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                pos = positions[0]
                for row in self._rowpos:
                    key = row[pos]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
            else:
                for row in self._rowpos:
                    key = tuple(row[i] for i in positions)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
            self._id_indexes[positions] = index
        return index

    # -- mutation ----------------------------------------------------------

    def add(self, args: ArgTuple) -> bool:
        """Insert a tuple; returns True when it is new."""
        return self.add_row(encode_args(args), args)

    def add_row(self, row: IdRow, args: ArgTuple) -> bool:
        """Insert a tuple whose ID row the caller already holds (the
        specialized executor derives facts in ID space); ``row`` must
        be the encoding of ``args``."""
        if row in self._rowpos:
            return False
        if len(args) != self.arity:
            raise ValueError(
                f"{self.pred}: arity {self.arity} but got {len(args)} args"
            )
        if self._cow:
            self._unshare()
        # columns first, with rollback: an exported lane pins its
        # buffer, and the BufferError must not leave the row half
        # registered (rowpos without lane entries).
        columns = self._columns
        done = 0
        try:
            for column, rid in zip(columns, row):
                column.append(rid)
                done += 1
        except BufferError:
            for column in columns[:done]:
                column.pop()
            raise
        self._rowpos[row] = len(self._rowpos)
        if self._id_indexes:
            for positions, index in self._id_indexes.items():
                if len(positions) == 1:
                    key = row[positions[0]]
                else:
                    key = tuple(row[i] for i in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {row}
                else:
                    bucket.add(row)
        self._decoded.append(args)
        if self._indexes:
            for positions, index in self._indexes.items():
                if len(positions) == 1:
                    key = args[positions[0]]
                else:
                    key = tuple(args[i] for i in positions)
                bucket = index.get(key)
                if bucket is None:
                    index[key] = {args}
                else:
                    bucket.add(args)
        return True

    def add_all(self, tuples: Iterable[ArgTuple]) -> int:
        """Insert many tuples; returns how many were new."""
        return sum(1 for t in tuples if self.add(t))

    def add_rows(
        self,
        rows: Iterable[IdRow],
        decode: Callable[[IdRow], ArgTuple],
    ) -> list[tuple[IdRow, ArgTuple]]:
        """Bulk-insert derived ID rows; returns the (row, args) pairs
        that were actually new, in derivation order.

        This is the vectorized fixpoint's scatter: the duplicate
        candidates a naive round re-derives by the hundreds of
        thousands are eliminated at C speed (``dict.fromkeys`` dedupe +
        ``filterfalse`` against the row→position dict), columns extend
        in one bulk gather/append per lane, and only the genuinely new
        rows pay Python-level work (one ``decode`` call each for the
        verbatim term lane, plus index maintenance when indexes exist).
        """
        fresh = list(filterfalse(self._rowpos.__contains__, dict.fromkeys(rows)))
        if not fresh:
            return []
        if self._cow:
            self._unshare()
        rowpos = self._rowpos
        base = len(rowpos)
        # columns first, with rollback (see add_row): a pinned lane must
        # not leave some columns extended and others not.
        done = 0
        try:
            for i, column in enumerate(self._columns):
                column.extend([row[i] for row in fresh])
                done += 1
        except BufferError:
            for column in self._columns[:done]:
                del column[base:]
            raise
        pos = base
        for row in fresh:
            rowpos[row] = pos
            pos += 1
        pairs = [(row, decode(row)) for row in fresh]
        self._decoded.extend([args for _, args in pairs])
        if self._id_indexes:
            for positions, index in self._id_indexes.items():
                single = len(positions) == 1
                first = positions[0]
                for row in fresh:
                    key = row[first] if single else tuple(
                        row[i] for i in positions
                    )
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
        if self._indexes:
            for positions, index in self._indexes.items():
                single = len(positions) == 1
                first = positions[0]
                for _, args in pairs:
                    key = args[first] if single else tuple(
                        args[i] for i in positions
                    )
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {args}
                    else:
                        bucket.add(args)
        return pairs

    def discard(self, args: ArgTuple) -> bool:
        """Remove a tuple; returns True when it was present.

        Already-built indexes — columnar ID indexes and term-level ones
        alike — are maintained in place, mirroring :meth:`add`, so
        later probes stay consistent.  Columns compact by swapping the
        last row into the vacated position (order is not part of the
        relation contract).
        """
        row = encode_args(args)
        if row not in self._rowpos:
            return False
        if self._cow:
            self._unshare()
        pos = self._rowpos.pop(row)
        last = len(self._rowpos)
        columns = self._columns
        if pos != last:
            moved = tuple(column[last] for column in columns)
            for column, rid in zip(columns, moved):
                column[pos] = rid
            self._rowpos[moved] = pos
        for column in columns:
            column.pop()
        decoded = self._decoded
        stored = decoded[pos]  # the verbatim tuple being removed
        if pos != last:
            decoded[pos] = decoded[last]
        decoded.pop()
        for positions, index in self._id_indexes.items():
            if len(positions) == 1:
                key = row[positions[0]]
            else:
                key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        if self._indexes:
            # ``stored`` is the tuple the index buckets actually hold;
            # bucket membership is structural, so its exact spelling
            # removes it even when ``args`` spelled some argument
            # differently (quoted vs bare — equal, hence same row).
            for positions, index in self._indexes.items():
                if len(positions) == 1:
                    key = stored[positions[0]]
                else:
                    key = tuple(stored[i] for i in positions)
                bucket = index.get(key)
                if bucket is not None:
                    bucket.discard(stored)
                    if not bucket:
                        del index[key]
        return True

    # -- term-space API (decoded view) -------------------------------------

    def lookup(self, positions: tuple[int, ...], key: ArgTuple) -> Iterable[ArgTuple]:
        """Tuples whose projection on ``positions`` equals ``key``.

        Builds (and thereafter maintains) a term-level hash index for
        the position signature on first use.  An empty signature scans
        everything.
        """
        if not positions:
            return iter(self)
        index = self.probe_index(positions)
        return index.get(key[0] if len(positions) == 1 else key, ())

    def probe_index(
        self, positions: tuple[int, ...]
    ) -> dict[object, set[ArgTuple]]:
        """The term-level hash index for a non-empty position signature,
        built on first use from the verbatim term lane.  The term-batch
        executor probes this dict directly — one cached-hash ``get``
        per binding, no call layers in the join's inner loop.  Keys
        follow the index convention: bare term for 1-position
        signatures, tuple otherwise.
        """
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            rows = self._decoded
            if len(positions) == 1:
                pos = positions[0]
                for targs in rows:
                    index_key = targs[pos]
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = {targs}
                    else:
                        bucket.add(targs)
            else:
                for targs in rows:
                    index_key = tuple(targs[i] for i in positions)
                    bucket = index.get(index_key)
                    if bucket is None:
                        index[index_key] = {targs}
                    else:
                        bucket.add(targs)
            self._indexes[positions] = index
        return index

    def split(self, partitioner) -> list["Relation"]:
        """Hash-partition this relation on the partitioner's key column.

        Returns ``partitioner.nparts`` relations whose extensions are
        disjoint and cover this one; each carries ``partition``
        metadata.  The split reads one ``array('q')`` ID lane straight
        through (``partitioner.split_indices`` — one consistent-hash
        memo hit per row) and gathers rows and the verbatim term lane
        by position, so the per-partition cost is the gather, not a
        re-encode.  Relations of arity 0 land wholly in partition 0.
        """
        key = min(partitioner.key, self.arity - 1) if self.arity else 0
        rows = list(self._rowpos)
        decoded = self._decoded
        parts: list[Relation] = []
        if self.arity:
            by_part = partitioner.split_indices(self._columns[key])
        else:
            by_part = [list(range(len(rows)))] + [
                [] for _ in range(partitioner.nparts - 1)
            ]
        for index, positions in enumerate(by_part):
            part = Relation(self.pred, self.arity)
            part.partition = (key, partitioner.nparts, index)
            for pos in positions:
                part.add_row(rows[pos], decoded[pos])
            parts.append(part)
        return parts

    @classmethod
    def merge(cls, parts: Iterable["Relation"]) -> "Relation":
        """Reassemble partitions into one unpartitioned relation — the
        inverse of :meth:`split` up to row order (which is not part of
        the relation contract)."""
        parts = list(parts)
        if not parts:
            raise ValueError("cannot merge zero partitions")
        merged = cls(parts[0].pred, parts[0].arity)
        for part in parts:
            if (part.pred, part.arity) != (merged.pred, merged.arity):
                raise ValueError(
                    f"cannot merge {part.pred}/{part.arity} into "
                    f"{merged.pred}/{merged.arity}"
                )
            rows = list(part._rowpos)
            decoded = part._decoded
            for pos, row in enumerate(rows):
                merged.add_row(row, decoded[pos])
        return merged

    def copy(self) -> "Relation":
        """A logically independent clone, *including* already-built
        indexes of both families (columnar ID indexes and term-level
        ones) — copies probe the same signatures as the original, and
        rebuilding every index on first probe would pay the full O(n)
        construction again.

        The clone is copy-on-write: it *shares* the row dict, int
        lanes, index dicts, and term lane with the original until
        either side first mutates, at which point the mutating side
        takes private copies (:meth:`_unshare`).  Fixpoint delta
        bookkeeping and magic/well-founded evaluation copy relations
        that often never get written afterwards, so the O(n) lane copy
        is deferred until a write proves it necessary.  Lazily building
        a *new* index signature into a shared index dict is benign:
        both sides hold identical rows while shared, so the built index
        is correct for whichever side triggered it and a free warm
        start for the other.
        """
        clone = Relation(self.pred, self.arity)
        clone._rowpos = self._rowpos
        clone._columns = self._columns
        clone._id_indexes = self._id_indexes
        clone._indexes = self._indexes
        clone._decoded = self._decoded
        clone.partition = self.partition
        clone._cow = True
        self._cow = True
        return clone

    def _unshare(self) -> None:
        """Take private copies of every shared container (first write
        after a copy-on-write :meth:`copy`).

        The lanes are copied as fresh ``array('q')`` buffers, so
        ``memoryview`` slices previously exported from the *other*
        side keep reading their original, still-valid buffer.
        """
        self._rowpos = dict(self._rowpos)
        self._columns = tuple(array("q", column) for column in self._columns)
        self._id_indexes = {
            positions: {key: set(bucket) for key, bucket in index.items()}
            for positions, index in self._id_indexes.items()
        }
        self._indexes = {
            positions: {key: set(bucket) for key, bucket in index.items()}
            for positions, index in self._indexes.items()
        }
        self._decoded = list(self._decoded)
        self._cow = False
