"""Built-in predicate evaluation (paper Sections 2.1–2.2).

Each built-in is evaluated against a binding, yielding zero or more
extended bindings.  Set-valued built-ins follow the Section 2.2
restrictions: they are true only when their arguments are sets in U.
Generative modes (``partition`` of a bound set, decomposition of a
bound ``union``, subset enumeration) are exponential in the set size by
nature; a safety cap guards against runaway enumeration.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterator, Mapping

from repro.engine.binding import as_chain, extended
from repro.engine.match import Binding, match_term_chain
from repro.errors import EvaluationError, NotInUniverseError
from repro.terms.term import (
    Const,
    SetVal,
    Term,
    Var,
    evaluate_ground,
    intern_term,
)


def _match(pattern: Term, value: Term, binding: Mapping[str, Term]):
    """Chain-based match: no dict copy per extension (see match.py)."""
    return match_term_chain(pattern, value, as_chain(binding))

#: Largest set for which exponential generative modes are allowed.
MAX_ENUMERATED_SET = 20


def _try_ground(term: Term, binding: Mapping[str, Term]) -> Term | None:
    """Evaluate ``term`` under ``binding`` to a U-element, or None.

    The dominant shapes — a variable bound to an already-canonical
    value, or a canonical constant — skip substitution entirely: values
    flowing out of the database are interned, so one ``_interned``
    check replaces substitute + groundness walk + re-evaluation.
    """
    if type(term) is Var:
        substituted = binding.get(term.name)
        if substituted is None:
            return None
    else:
        substituted = term
    if substituted._interned:
        return substituted
    if substituted is term and not term.is_ground():
        # only substitute when there is something to substitute: the
        # plan runner already pre-substitutes builtin arguments, so a
        # non-variable term here is usually ground.
        substituted = term.substitute(binding)
    if not substituted.is_ground():
        return None
    try:
        return evaluate_ground(substituted)
    except (NotInUniverseError, EvaluationError):
        return None


#: Sentinel: the argument is bound/ground but does not denote a set.
#: Section 2.2 makes set built-ins *false* (not erroneous) in that case.
_NOT_A_SET = object()


def _set_status(term: Term, binding: Mapping[str, Term]):
    """SetVal, None (still unbound), or ``_NOT_A_SET`` (bound, non-set).

    Same fast paths as :func:`_try_ground`: an interned value answers
    with one flag check and an ``isinstance``.
    """
    if type(term) is Var:
        substituted = binding.get(term.name)
        if substituted is None:
            return None
    else:
        substituted = term
    if substituted._interned:
        return substituted if isinstance(substituted, SetVal) else _NOT_A_SET
    if substituted is term and not term.is_ground():
        substituted = term.substitute(binding)
    if not substituted.is_ground():
        return None
    try:
        value = evaluate_ground(substituted)
    except (NotInUniverseError, EvaluationError):
        return _NOT_A_SET
    return value if isinstance(value, SetVal) else _NOT_A_SET


def _require_set(value: Term | None) -> SetVal | None:
    return value if isinstance(value, SetVal) else None


def _subsets(elements: frozenset[Term]) -> Iterator[frozenset[Term]]:
    if len(elements) > MAX_ENUMERATED_SET:
        raise EvaluationError(
            f"refusing to enumerate subsets of a {len(elements)}-element set "
            f"(cap {MAX_ENUMERATED_SET})"
        )
    ordered = sorted(elements, key=lambda t: t.sort_key())
    for size in range(len(ordered) + 1):
        for combo in combinations(ordered, size):
            yield frozenset(combo)


def solve_builtin(pred: str, args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    """Evaluate one built-in literal; yields extended bindings.

    Raises :class:`EvaluationError` when no supported mode applies
    (e.g. all arguments unbound) — the rule planner should have ordered
    literals so this cannot happen for safe rules.
    """
    handler = _HANDLERS.get(pred)
    if handler is None:
        raise EvaluationError(f"unknown built-in predicate {pred!r}")
    yield from handler(args, binding)


def _solve_member(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    element_pattern, set_term = args
    value = _try_ground(set_term, binding)
    if value is None:
        raise EvaluationError("member/2 needs its second argument bound")
    if not isinstance(value, SetVal):
        return  # Section 2.2: member is false when S is not a set.
    for element in value:
        yield from _match(element_pattern, element, binding)


def _solve_union(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    statuses = [_set_status(a, binding) for a in args]
    if any(s is _NOT_A_SET for s in statuses):
        return  # Section 2.2: union is false unless all three are sets
    s1_val, s2_val, s3_val = statuses
    if s1_val is not None and s2_val is not None:
        result = SetVal.from_ground(s1_val.elements | s2_val.elements)
        yield from _match(args[2], result, binding)
        return
    if s3_val is not None:
        if s1_val is not None:
            if not s1_val.elements <= s3_val.elements:
                return
            mandatory = s3_val.elements - s1_val.elements
            for extra in _subsets(s1_val.elements):
                candidate = SetVal.from_ground(mandatory | extra)
                yield from _match(args[1], candidate, binding)
            return
        if s2_val is not None:
            if not s2_val.elements <= s3_val.elements:
                return
            mandatory = s3_val.elements - s2_val.elements
            for extra in _subsets(s2_val.elements):
                candidate = SetVal.from_ground(mandatory | extra)
                yield from _match(args[0], candidate, binding)
            return
        for left in _subsets(s3_val.elements):
            mandatory = s3_val.elements - left
            for extra in _subsets(left):
                for ext in _match(args[0], SetVal.from_ground(left), binding):
                    yield from _match(
                        args[1], SetVal.from_ground(mandatory | extra), ext
                    )
        return
    raise EvaluationError("union/3 needs two operands or the union bound")


#: Memoized (part, complement) splits per whole set.  Partition-driven
#: divide-and-conquer (e.g. the parts-explosion TC program) re-splits
#: the same subassembly set once per containing binding; enumerating
#: subsets is O(2^n · n log n), so the splits are worth keeping.  The
#: pair SetVals are interned so downstream matches and head
#: instantiation share one object per distinct split.
_PARTITION_CACHE: dict[frozenset, tuple] = {}
_PARTITION_CACHE_MAX = 4096


def _partition_pairs(elements: frozenset) -> tuple:
    pairs = _PARTITION_CACHE.get(elements)
    if pairs is None:
        pairs = tuple(
            (
                intern_term(SetVal.from_ground(part)),
                intern_term(SetVal.from_ground(elements - part)),
            )
            for part in _subsets(elements)
        )
        if len(_PARTITION_CACHE) < _PARTITION_CACHE_MAX:
            _PARTITION_CACHE[elements] = pairs
    return pairs


def _solve_partition(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    statuses = [_set_status(a, binding) for a in args]
    if any(s is _NOT_A_SET for s in statuses):
        return  # false unless all three are sets
    whole, left, right = statuses
    if whole is not None:
        for part, complement in _partition_pairs(whole.elements):
            for ext in _match(args[1], part, binding):
                yield from _match(args[2], complement, ext)
        return
    if left is not None and right is not None:
        if left.elements & right.elements:
            return
        union = SetVal.from_ground(left.elements | right.elements)
        yield from _match(args[0], union, binding)
        return
    raise EvaluationError("partition/3 needs the whole set or both parts bound")


def _solve_subset(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    sub = _set_status(args[0], binding)
    super_ = _set_status(args[1], binding)
    if sub is _NOT_A_SET or super_ is _NOT_A_SET:
        return  # false unless both are sets
    if super_ is None:
        raise EvaluationError("subset/2 needs its second argument bound")
    if sub is not None:
        if sub.elements <= super_.elements:
            yield extended(binding)
        return
    for candidate in _subsets(super_.elements):
        yield from _match(args[0], SetVal.from_ground(candidate), binding)


def _solve_card(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    the_set = _set_status(args[0], binding)
    if the_set is _NOT_A_SET:
        return  # false when the argument is not a set
    if the_set is None:
        raise EvaluationError("card/2 needs its first argument bound")
    yield from _match(args[1], Const(len(the_set)), binding)


def _solve_eq(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    left = _try_ground(args[0], binding)
    right = _try_ground(args[1], binding)
    if left is not None and right is not None:
        if left == right:
            yield extended(binding)
        return
    if left is not None:
        yield from _match(args[1], left, binding)
        return
    if right is not None:
        yield from _match(args[0], right, binding)
        return
    raise EvaluationError("=/2 needs at least one side bound")


def _solve_ne(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    left = _try_ground(args[0], binding)
    right = _try_ground(args[1], binding)
    if left is None or right is None:
        raise EvaluationError("!=/2 needs both sides bound")
    if left != right:
        yield extended(binding)


def _comparable(value: Term):
    if isinstance(value, Const):
        return value.value
    raise EvaluationError(f"cannot order non-scalar term {value!r}")


def _make_comparison(op):
    def handler(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
        left = _try_ground(args[0], binding)
        right = _try_ground(args[1], binding)
        if left is None or right is None:
            raise EvaluationError("comparison needs both sides bound")
        left_value = _comparable(left)
        right_value = _comparable(right)
        if isinstance(left_value, str) != isinstance(right_value, str):
            raise EvaluationError(
                f"cannot compare {left_value!r} with {right_value!r}"
            )
        if op(left_value, right_value):
            yield extended(binding)

    return handler


def _solve_intersection(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    s1 = _set_status(args[0], binding)
    s2 = _set_status(args[1], binding)
    if s1 is _NOT_A_SET or s2 is _NOT_A_SET or _set_status(args[2], binding) is _NOT_A_SET:
        return
    if s1 is None or s2 is None:
        raise EvaluationError("intersection/3 needs both operands bound")
    result = SetVal.from_ground(s1.elements & s2.elements)
    yield from _match(args[2], result, binding)


def _solve_difference(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
    s1 = _set_status(args[0], binding)
    s2 = _set_status(args[1], binding)
    if s1 is _NOT_A_SET or s2 is _NOT_A_SET or _set_status(args[2], binding) is _NOT_A_SET:
        return
    if s1 is None or s2 is None:
        raise EvaluationError("difference/3 needs both operands bound")
    result = SetVal.from_ground(s1.elements - s2.elements)
    yield from _match(args[2], result, binding)


def _numeric_elements(the_set: SetVal) -> list:
    values = []
    for element in the_set:
        if not isinstance(element, Const) or isinstance(element.value, str):
            raise EvaluationError(
                f"aggregate over a non-numeric element: {element!r}"
            )
        values.append(element.value)
    return values


def _make_aggregate(name: str, fold, empty_ok: bool):
    def handler(args: tuple[Term, ...], binding: Binding) -> Iterator[Binding]:
        the_set = _set_status(args[0], binding)
        if the_set is _NOT_A_SET:
            return
        if the_set is None:
            raise EvaluationError(f"{name}/2 needs its first argument bound")
        values = _numeric_elements(the_set)
        if not values and not empty_ok:
            return  # min/max of the empty set are undefined
        yield from _match(args[1], Const(fold(values)), binding)

    return handler


_HANDLERS = {
    "member": _solve_member,
    "union": _solve_union,
    "intersection": _solve_intersection,
    "difference": _solve_difference,
    "sum": _make_aggregate("sum", sum, empty_ok=True),
    "min_of": _make_aggregate("min_of", min, empty_ok=False),
    "max_of": _make_aggregate("max_of", max, empty_ok=False),
    "partition": _solve_partition,
    "subset": _solve_subset,
    "card": _solve_card,
    "=": _solve_eq,
    "!=": _solve_ne,
    "<": _make_comparison(lambda a, b: a < b),
    "<=": _make_comparison(lambda a, b: a <= b),
    ">": _make_comparison(lambda a, b: a > b),
    ">=": _make_comparison(lambda a, b: a >= b),
}


def handler_for(pred: str):
    """The handler generator for a built-in predicate, or None.

    The plan compiler binds handlers to steps once, so the runner can
    call them directly instead of routing every candidate binding
    through :func:`solve_builtin`'s lookup-and-delegate frame.
    """
    return _HANDLERS.get(pred)
