"""A database of U-facts: one :class:`Relation` per predicate.

The database is the ``M`` of the paper's ``R(M)`` operator — a set of
U-facts — organized per predicate for indexed access.  Predicates are
keyed by name only; the first fact fixes the arity and later arity
mismatches raise.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.engine.relation import ArgTuple, Relation
from repro.errors import EvaluationError
from repro.program.rule import Atom


class Database:
    """Mutable set of ground atoms with per-predicate indexed storage."""

    __slots__ = ("_relations",)

    def __init__(self, facts: Iterable[Atom] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        for atom in facts:
            self.add(atom)

    def relation(self, pred: str, arity: int | None = None) -> Relation:
        """The relation for ``pred``, creating it when ``arity`` given."""
        rel = self._relations.get(pred)
        if rel is None:
            if arity is None:
                raise EvaluationError(f"unknown predicate {pred!r}")
            rel = Relation(pred, arity)
            self._relations[pred] = rel
        return rel

    def has_relation(self, pred: str) -> bool:
        return pred in self._relations

    def get_relation(self, pred: str) -> Relation | None:
        """The relation for ``pred``, or None when unknown (no create)."""
        return self._relations.get(pred)

    def add(self, atom: Atom) -> bool:
        """Insert a ground atom; returns True when new."""
        if not atom.is_ground():
            raise ValueError(f"cannot store non-ground atom {atom!r}")
        args = atom.args
        rel = self._relations.get(atom.pred)
        if rel is None:
            rel = self.relation(atom.pred, len(args))
        row = getattr(atom, "_row", None)
        if row is not None:
            # the specialized executor derived this fact in ID space
            # and attached the row: skip re-encoding the arguments
            return rel.add_row(row, args)
        return rel.add(args)

    def add_tuple(self, pred: str, args: ArgTuple) -> bool:
        return self.relation(pred, len(args)).add(args)

    def add_rows(self, pred: str, arity: int, rows, decode):
        """Bulk-insert derived ID rows for one predicate; returns the
        (row, args) pairs that were new.  See :meth:`Relation.add_rows`
        — this is the vectorized fixpoint's scatter entry point."""
        rel = self._relations.get(pred)
        if rel is None:
            rel = self.relation(pred, arity)
        return rel.add_rows(rows, decode)

    def discard(self, atom: Atom) -> bool:
        """Remove a ground atom; returns True when it was present.

        The symmetric counterpart of :meth:`add` — WAL replay and other
        update paths rely on add/discard round-tripping exactly.
        """
        rel = self._relations.get(atom.pred)
        return rel is not None and rel.discard(atom.args)

    def remove(self, atom: Atom) -> None:
        """Remove a ground atom that must be present.

        Raises :class:`~repro.errors.EvaluationError` when the fact is
        not stored; use :meth:`discard` for remove-if-present.
        """
        if not self.discard(atom):
            raise EvaluationError(f"fact not in database: {atom!r}")

    def __contains__(self, atom: Atom) -> bool:
        rel = self._relations.get(atom.pred)
        return rel is not None and atom.args in rel

    def contains_tuple(self, pred: str, args: ArgTuple) -> bool:
        """Membership test without building an :class:`Atom` (the batch
        executor's anti-join probes by raw argument tuple)."""
        rel = self._relations.get(pred)
        return rel is not None and args in rel

    def tuples(self, pred: str) -> Iterable[ArgTuple]:
        rel = self._relations.get(pred)
        return iter(rel) if rel is not None else ()

    def lookup(
        self, pred: str, positions: tuple[int, ...], key: ArgTuple
    ) -> Iterable[ArgTuple]:
        rel = self._relations.get(pred)
        if rel is None:
            return ()
        return rel.lookup(positions, key)

    def probe_index(
        self, pred: str, positions: tuple[int, ...]
    ) -> dict[object, set[ArgTuple]] | None:
        """The predicate's hash index for ``positions`` (built on first
        use), or None for an unknown predicate.  See
        :meth:`Relation.probe_index`."""
        rel = self._relations.get(pred)
        return None if rel is None else rel.probe_index(positions)

    def id_rows(self, pred: str):
        """The predicate's stored ID rows (a set-like view), or None for
        an unknown predicate.  See :meth:`Relation.id_rows`."""
        rel = self._relations.get(pred)
        return None if rel is None else rel.id_rows()

    def id_index(self, pred: str, positions: tuple[int, ...]):
        """The predicate's ID-space hash index for ``positions`` (built
        on first use), or None for an unknown predicate.  The
        specialized executors probe this dict directly.  See
        :meth:`Relation.id_index`."""
        rel = self._relations.get(pred)
        return None if rel is None else rel.id_index(positions)

    def count(self, pred: str | None = None) -> int:
        """Number of facts for one predicate, or in total."""
        if pred is not None:
            rel = self._relations.get(pred)
            return len(rel) if rel is not None else 0
        return sum(len(rel) for rel in self._relations.values())

    def predicates(self) -> tuple[str, ...]:
        return tuple(sorted(self._relations))

    def atoms(self, pred: str | None = None) -> Iterator[Atom]:
        """Iterate stored facts as atoms, optionally for one predicate."""
        preds = (pred,) if pred is not None else self.predicates()
        for name in preds:
            rel = self._relations.get(name)
            if rel is None:
                continue
            for args in rel:
                yield Atom(name, args)

    def sorted_atoms(self, pred: str | None = None) -> list[Atom]:
        """Deterministically ordered facts (for printing and tests)."""
        return sorted(self.atoms(pred), key=lambda a: a.sort_key())

    def copy(self) -> "Database":
        clone = Database()
        clone._relations = {
            pred: rel.copy() for pred, rel in self._relations.items()
        }
        return clone

    def as_set(self) -> frozenset[Atom]:
        return frozenset(self.atoms())

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Database) and self.as_set() == other.as_set()

    def __len__(self) -> int:
        return self.count()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{pred}:{len(rel)}" for pred, rel in sorted(self._relations.items())
        )
        return f"Database({parts})"
