"""Rule-body evaluation: literal ordering and binding enumeration.

Given a database M and a rule body, enumerate the *applicable* bindings
of Section 3.2 — assignments under which every positive literal is a
U-fact in M, every negative literal a U-fact absent from M, and every
built-in true.  Literals are reordered by a greedy planner so that:

* negative literals and test-only built-ins run as soon as their
  variables are bound (they are cheap filters and negation *requires*
  bound variables),
* equality runs as soon as one side is bound,
* positive literals are chosen by how many argument positions are
  already bound (index-join friendliness),
* generative set built-ins (``partition``, subset enumeration) run only
  once their required arguments are bound.

The planner refuses bodies where a negative literal can never have all
variables bound — the safety checker rejects those rules up front.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.engine.database import Database
from repro.engine.match import Binding, ground_atom
from repro.errors import SafetyError
from repro.names import is_builtin_predicate
from repro.program.modes import modes_for
from repro.program.rule import Literal
from repro.terms.pretty import format_literal

#: relation-override hook: maps a body-literal *original index* to an
#: alternative tuple source (e.g. the semi-naive delta).
SourceOverrides = dict[int, Iterable[tuple]]


def order_body(
    literals: Sequence[Literal],
    initially_bound: frozenset[str] = frozenset(),
    first: int | None = None,
    sizes: dict[str, int] | None = None,
) -> tuple[int, ...]:
    """Return an evaluation order (original indices) for a rule body.

    ``first`` forces one literal to the front (the semi-naive delta
    occurrence).  ``sizes`` (predicate → cardinality) switches the
    positive-literal heuristic from "most bound arguments" to an
    estimated scan cost ``|relation| / 4^bound_args`` — the
    statistics-aware planner of experiment E15.  Relations with no
    stored tuples (unpopulated IDB predicates, top-down tables) carry
    no cardinality evidence and are assumed as large as the largest
    known relation.  Raises :class:`SafetyError` when no safe order
    exists.
    """
    remaining = set(range(len(literals)))
    bound = set(initially_bound)
    plan: list[int] = []
    # a relation with no stored tuples carries no cardinality evidence
    # (an IDB predicate not yet populated, a top-down table): assume it
    # is as large as the largest known relation, so bound-argument
    # connectivity still ranks it — a zero-cost guess would schedule
    # recursive literals before their generators, unbinding them.
    unknown_size = max(sizes.values(), default=1) if sizes else 1

    def eligible_class(index: int) -> int | None:
        lit = literals[index]
        lit_vars = lit.atom.variables()
        if lit.negative:
            return 0 if lit_vars <= bound else None
        pred = lit.atom.pred
        if not is_builtin_predicate(pred):
            return 2
        if lit_vars <= bound:
            return 0
        for mode in modes_for(pred):
            required: set[str] = set()
            for pos in mode.requires:
                if pos < len(lit.atom.args):
                    required |= lit.atom.args[pos].variables()
            if required <= bound:
                return 1 if pred == "=" else 3
        return None

    if first is not None:
        plan.append(first)
        remaining.discard(first)
        bound |= literals[first].atom.variables()

    while remaining:
        best: tuple | None = None
        for index in sorted(remaining):
            klass = eligible_class(index)
            if klass is None:
                continue
            lit = literals[index]
            bound_args = sum(
                1 for a in lit.atom.args if a.variables() <= bound
            )
            if sizes is not None and klass == 2:
                relation_size = sizes.get(lit.atom.pred, 0) or unknown_size
                cost = relation_size / (4 ** bound_args)
                candidate = (klass, cost, -bound_args, index)
            else:
                candidate = (klass, 0, -bound_args, index)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            unsatisfied = ", ".join(
                format_literal(literals[i]) for i in sorted(remaining)
            )
            raise SafetyError(f"no safe evaluation order for: {unsatisfied}")
        index = best[-1]
        plan.append(index)
        remaining.discard(index)
        if literals[index].positive:
            bound |= literals[index].atom.variables()
    return tuple(plan)


def solve_body(
    db: Database,
    literals: Sequence[Literal],
    plan: Sequence[int] | None = None,
    binding: Binding | None = None,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
) -> Iterator[Binding]:
    """Enumerate applicable bindings for a rule body over ``db``.

    ``plan`` is an order from :func:`order_body` (computed on demand);
    ``overrides`` swaps the tuple source of specific body occurrences
    (semi-naive deltas, magic-constrained relations); ``negation_db``
    checks negative literals against a different interpretation (the
    well-founded semantics' reduct construction); ``executor`` picks
    the body executor (defaulting to the process-wide choice).

    Compatibility wrapper: compiles a throwaway
    :class:`~repro.engine.plan.RulePlan` body and hands it to the one
    shared executor pipeline (:mod:`repro.engine.exec`), materializing
    each applicable binding as a plain dict.  Engine hot paths share
    cached plans through :class:`~repro.engine.context.EvalContext`
    instead.
    """
    from repro.engine.exec import enumerate_bindings
    from repro.engine.plan import compile_body

    initially_bound = frozenset(binding) if binding else frozenset()
    compiled = compile_body(
        literals, order=plan, initially_bound=initially_bound
    )
    for result in enumerate_bindings(
        db,
        compiled,
        binding=binding,
        overrides=overrides,
        negation_db=negation_db,
        executor=executor,
    ):
        yield result.materialize()


def head_facts(
    rule_head, bindings: Iterable[Binding]
) -> Iterator:
    """Instantiate a (non-grouping) rule head for each binding.

    Bindings that take the head outside U are dropped (not applicable).
    """
    for binding in bindings:
        fact = ground_atom(rule_head, binding)
        if fact is not None:
            yield fact
