"""Naive and semi-naive fixpoint evaluation of non-grouping rules.

Implements the paper's ``R(M)`` operator (Section 3.2) for a set of
rules without head grouping: the naive strategy recomputes every rule
against the full database each iteration (the literal ``R_{i+1}(M)``
definition); the semi-naive strategy restricts one recursive body
occurrence per rule application to the facts newly derived in the
previous round, avoiding rediscovery.  Both reach the same fixpoint;
the benchmark suite quantifies the difference (experiment E1).

Rules are executed as compiled :class:`~repro.engine.plan.RulePlan`s
obtained through a shared :class:`~repro.engine.context.EvalContext`:
each (rule, delta-occurrence) pair is planned at most once per run, and
the "sized" planner re-plans only when the context's cardinality
snapshot changes between iterations (:meth:`EvalContext.refresh_sizes`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.context import EvalContext, ensure_context
from repro.engine.database import Database
from repro.engine.exec import RowBatch, derive_facts, derive_rows
from repro.engine.relation import encode_args
from repro.names import is_builtin_predicate
from repro.program.rule import Atom, Rule


@dataclass
class FixpointStats:
    """Work counters for one fixpoint run (feeds the benchmarks).

    ``rule_firings`` counts rule *applications* (one compiled plan
    executed against the database); ``facts_derived`` counts the new
    facts those applications contributed.  Both mean the same thing
    under every strategy, so traces and benchmarks compare like with
    like.
    """

    iterations: int = 0
    rule_firings: int = 0
    facts_derived: int = 0

    def merge(self, other: "FixpointStats") -> None:
        self.iterations += other.iterations
        self.rule_firings += other.rule_firings
        self.facts_derived += other.facts_derived


def occurrence_index(rules: Sequence[Rule]) -> list[tuple[Rule, int]]:
    """The (rule, body occurrence) pairs semi-naive rounds iterate:
    every positive non-builtin body literal of every rule.  Shared with
    the partitioned evaluator, whose workers walk the same index so
    parallel rounds fire the same rule applications."""
    index: list[tuple[Rule, int]] = []
    for rule in rules:
        for i, lit in enumerate(rule.body):
            if lit.positive and not is_builtin_predicate(lit.atom.pred):
                index.append((rule, i))
    return index


def _derive_any(ctx: EvalContext, db: Database, rule: Rule, plan, overrides=None):
    """One rule application, preferring the vectorized rows shape.

    Returns ``(dr, facts)`` — exactly one is non-None.  ``dr`` (a
    :class:`~repro.engine.exec.DerivedRows`) carries the emitted head
    ID rows for bulk insertion; ``facts`` is the per-Atom fallback.
    ``on_rule_fired`` counts are identical either way: the rows mode
    emits one row per would-be fact (it requires a fast head, which
    never drops bindings).
    """
    if ctx.timing:
        start = ctx.metrics.now()
        dr = derive_rows(
            db, plan, overrides=overrides, executor=ctx.executor,
            metrics=ctx.metrics,
        )
        facts = None
        if dr is None:
            facts = derive_facts(
                db, plan, overrides=overrides, executor=ctx.executor,
                metrics=ctx.metrics,
            )
        ctx.metrics.add_time("match", ctx.metrics.now() - start)
    else:
        dr = derive_rows(db, plan, overrides=overrides, executor=ctx.executor)
        facts = None
        if dr is None:
            facts = derive_facts(
                db, plan, overrides=overrides, executor=ctx.executor
            )
    if ctx.observing:
        count = len(dr.rows) if dr is not None else len(facts)
        ctx.hooks.on_rule_fired(rule, count)
    return dr, facts


def _derived_atom(pred: str, row, args) -> Atom:
    """A ground Atom for hooks/listeners, carrying its ID row so any
    later ``Database.add`` skips re-encoding."""
    fact = Atom(pred, args)
    fact._ground = True
    fact._row = row
    return fact


def _delta_extend_pairs(delta: dict, pred: str, arity: int, pairs) -> None:
    """Record bulk-inserted (row, args) pairs in a semi-naive delta.

    Vectorized entries are :class:`RowBatch`es (both lanes at once, so
    the next round's override source never re-encodes); an entry that
    already holds a plain args list (fallback-path facts) stays one.
    """
    entry = delta.get(pred)
    if entry is None:
        entry = RowBatch(pred, arity)
        delta[pred] = entry
    if type(entry) is RowBatch:
        entry.extend_pairs(pairs)
    else:
        entry.extend([args for _, args in pairs])


def _delta_append_fact(delta: dict, fact: Atom) -> None:
    """Record one fallback-path fact in a semi-naive delta, encoding it
    when the entry is a :class:`RowBatch` from an earlier bulk insert."""
    entry = delta.get(fact.pred)
    if entry is None:
        delta[fact.pred] = [fact.args]
    elif type(entry) is RowBatch:
        row = getattr(fact, "_row", None)
        if row is None:
            row = encode_args(fact.args)
        entry.add(row, fact.args)
    else:
        entry.append(fact.args)


def single_pass(
    db: Database,
    rules: Sequence[Rule],
    planner: str = "sized-once",
    context: EvalContext | None = None,
) -> FixpointStats:
    """Apply each rule exactly once.  Mutates ``db``.

    Complete (reaches the same result as a fixpoint) only when no rule
    reads a predicate any rule in ``rules`` defines — i.e. the rules of
    a non-recursive SCC whose lower components are already evaluated.
    The SCC scheduler calls this instead of a fixpoint, saving the
    second iteration a fixpoint needs just to observe emptiness.
    """
    ctx = ensure_context(context, db, planner)
    stats = FixpointStats(iterations=1)
    if ctx.sized:
        ctx.refresh_sizes()
    round_new = 0
    for rule in rules:
        dr, facts = _derive_any(ctx, db, rule, ctx.plan_for(rule))
        stats.rule_firings += 1
        if dr is not None:
            pairs = db.add_rows(dr.pred, dr.arity, dr.rows, dr.decode)
            stats.facts_derived += len(pairs)
            round_new += len(pairs)
            if ctx.observing:
                for row, args in pairs:
                    ctx.hooks.on_fact_derived(
                        _derived_atom(dr.pred, row, args), rule
                    )
        else:
            for fact in facts:
                if db.add(fact):
                    stats.facts_derived += 1
                    round_new += 1
                    if ctx.observing:
                        ctx.hooks.on_fact_derived(fact, rule)
    if ctx.observing:
        ctx.hooks.on_iteration(stats.iterations, round_new)
    return stats


def naive_fixpoint(
    db: Database,
    rules: Sequence[Rule],
    planner: str = "sized-once",
    context: EvalContext | None = None,
) -> FixpointStats:
    """Run all rules to fixpoint, naive strategy.  Mutates ``db``.

    ``planner="sized"`` reorders bodies by current relation
    cardinalities each iteration (experiment E15).
    """
    ctx = ensure_context(context, db, planner)
    stats = FixpointStats()
    while True:
        stats.iterations += 1
        if ctx.sized:
            ctx.refresh_sizes()
        # every rule evaluates against the same snapshot: batch the
        # derivations (with their deriving rule when hooks need it)
        # and add afterwards.
        new = 0
        pending = []
        for rule in rules:
            dr, facts = _derive_any(ctx, db, rule, ctx.plan_for(rule))
            stats.rule_firings += 1
            pending.append((rule, dr, facts))
        observing = ctx.observing
        add = db.add
        for rule, dr, facts in pending:
            if dr is not None:
                pairs = db.add_rows(dr.pred, dr.arity, dr.rows, dr.decode)
                new += len(pairs)
                if observing:
                    for row, args in pairs:
                        ctx.hooks.on_fact_derived(
                            _derived_atom(dr.pred, row, args), rule
                        )
            else:
                for fact in facts:
                    if add(fact):
                        new += 1
                        if observing:
                            ctx.hooks.on_fact_derived(fact, rule)
        stats.facts_derived += new
        if ctx.observing:
            ctx.hooks.on_iteration(stats.iterations, new)
        if not new:
            return stats


def seminaive_fixpoint(
    db: Database,
    rules: Sequence[Rule],
    planner: str = "sized-once",
    context: EvalContext | None = None,
) -> FixpointStats:
    """Run all rules to fixpoint, semi-naive strategy.  Mutates ``db``.

    Round 0 evaluates every rule against the full database; later
    rounds re-evaluate a rule once per positive body occurrence of a
    predicate that changed, with that occurrence restricted to the
    previous round's delta.
    """
    ctx = ensure_context(context, db, planner)
    stats = FixpointStats()

    stats.iterations += 1
    if ctx.sized:
        ctx.refresh_sizes()
    delta: dict[str, object] = {}
    round_new = 0
    for rule in rules:
        dr, facts = _derive_any(ctx, db, rule, ctx.plan_for(rule))
        stats.rule_firings += 1
        if dr is not None:
            pairs = db.add_rows(dr.pred, dr.arity, dr.rows, dr.decode)
            if pairs:
                stats.facts_derived += len(pairs)
                round_new += len(pairs)
                _delta_extend_pairs(delta, dr.pred, dr.arity, pairs)
                if ctx.observing:
                    for row, args in pairs:
                        ctx.hooks.on_fact_derived(
                            _derived_atom(dr.pred, row, args), rule
                        )
        else:
            for fact in facts:
                if db.add(fact):
                    stats.facts_derived += 1
                    round_new += 1
                    if ctx.observing:
                        ctx.hooks.on_fact_derived(fact, rule)
                    _delta_append_fact(delta, fact)
    if ctx.observing:
        ctx.hooks.on_iteration(stats.iterations, round_new)

    stats.merge(seminaive_rounds(db, rules, delta, planner=planner, context=ctx))
    return stats


def seminaive_rounds(
    db: Database,
    rules: Sequence[Rule],
    delta: dict[str, object],
    planner: str = "sized-once",
    context: EvalContext | None = None,
) -> FixpointStats:
    """Continue a semi-naive fixpoint from an explicit delta.

    ``db`` must already contain the delta's facts; only derivations
    using at least one delta fact are explored — the entry point for
    incremental insertion (:mod:`repro.engine.incremental`).  Delta
    values are plain argument-tuple lists or (from the vectorized
    round-0 path) :class:`RowBatch`es; both iterate as argument tuples
    for every executor, and the specialized lane reads a batch's ID
    rows directly.
    """
    ctx = ensure_context(context, db, planner)
    stats = FixpointStats()
    occurrences = occurrence_index(rules)

    while delta:
        stats.iterations += 1
        if ctx.sized:
            ctx.refresh_sizes()
        next_delta: dict[str, object] = {}
        round_new = 0
        for rule, occurrence in occurrences:
            pred = rule.body[occurrence].atom.pred
            changed = delta.get(pred)
            if not changed:
                continue
            plan = ctx.plan_for(rule, first=occurrence)
            dr, facts = _derive_any(
                ctx, db, rule, plan, overrides={occurrence: changed}
            )
            stats.rule_firings += 1
            if dr is not None:
                pairs = db.add_rows(dr.pred, dr.arity, dr.rows, dr.decode)
                if pairs:
                    stats.facts_derived += len(pairs)
                    round_new += len(pairs)
                    _delta_extend_pairs(next_delta, dr.pred, dr.arity, pairs)
                    if ctx.observing:
                        for row, args in pairs:
                            ctx.hooks.on_fact_derived(
                                _derived_atom(dr.pred, row, args), rule
                            )
            else:
                for fact in facts:
                    if db.add(fact):
                        stats.facts_derived += 1
                        round_new += 1
                        if ctx.observing:
                            ctx.hooks.on_fact_derived(fact, rule)
                        _delta_append_fact(next_delta, fact)
        if ctx.observing:
            ctx.hooks.on_iteration(stats.iterations, round_new)
        delta = next_delta
    return stats
