"""Naive and semi-naive fixpoint evaluation of non-grouping rules.

Implements the paper's ``R(M)`` operator (Section 3.2) for a set of
rules without head grouping: the naive strategy recomputes every rule
against the full database each iteration (the literal ``R_{i+1}(M)``
definition); the semi-naive strategy restricts one recursive body
occurrence per rule application to the facts newly derived in the
previous round, avoiding rediscovery.  Both reach the same fixpoint;
the benchmark suite quantifies the difference (experiment E1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.engine.database import Database
from repro.engine.solve import head_facts, order_body, solve_body
from repro.names import is_builtin_predicate
from repro.program.rule import Atom, Rule


@dataclass
class FixpointStats:
    """Work counters for one fixpoint run (feeds the benchmarks)."""

    iterations: int = 0
    rule_firings: int = 0
    facts_derived: int = 0

    def merge(self, other: "FixpointStats") -> None:
        self.iterations += other.iterations
        self.rule_firings += other.rule_firings
        self.facts_derived += other.facts_derived


def _sizes(db: Database, planner: str) -> dict[str, int] | None:
    if planner != "sized":
        return None
    return {pred: db.count(pred) for pred in db.predicates()}


def naive_fixpoint(
    db: Database, rules: Sequence[Rule], planner: str = "static"
) -> FixpointStats:
    """Run all rules to fixpoint, naive strategy.  Mutates ``db``.

    ``planner="sized"`` reorders bodies by current relation
    cardinalities each iteration (experiment E15).
    """
    stats = FixpointStats()
    plans = [order_body(rule.body) for rule in rules]
    while True:
        stats.iterations += 1
        sizes = _sizes(db, planner)
        if sizes is not None:
            plans = [order_body(rule.body, sizes=sizes) for rule in rules]
        batch: list[Atom] = []
        for rule, plan in zip(rules, plans):
            for fact in head_facts(rule.head, solve_body(db, rule.body, plan)):
                stats.rule_firings += 1
                batch.append(fact)
        new = sum(1 for fact in batch if db.add(fact))
        stats.facts_derived += new
        if not new:
            return stats


def seminaive_fixpoint(
    db: Database, rules: Sequence[Rule], planner: str = "static"
) -> FixpointStats:
    """Run all rules to fixpoint, semi-naive strategy.  Mutates ``db``.

    Round 0 evaluates every rule against the full database; later
    rounds re-evaluate a rule once per positive body occurrence of a
    predicate that changed, with that occurrence restricted to the
    previous round's delta.
    """
    stats = FixpointStats()

    stats.iterations += 1
    delta: dict[str, list[tuple]] = {}
    for rule in rules:
        plan = order_body(rule.body, sizes=_sizes(db, planner))
        derived = list(head_facts(rule.head, solve_body(db, rule.body, plan)))
        stats.rule_firings += len(derived)
        for fact in derived:
            if db.add(fact):
                stats.facts_derived += 1
                delta.setdefault(fact.pred, []).append(fact.args)

    stats.merge(seminaive_rounds(db, rules, delta, planner=planner))
    return stats


def seminaive_rounds(
    db: Database,
    rules: Sequence[Rule],
    delta: dict[str, list[tuple]],
    planner: str = "static",
) -> FixpointStats:
    """Continue a semi-naive fixpoint from an explicit delta.

    ``db`` must already contain the delta's facts; only derivations
    using at least one delta fact are explored — the entry point for
    incremental insertion (:mod:`repro.engine.incremental`).
    """
    stats = FixpointStats()
    occurrence_index: list[tuple[Rule, int]] = []
    for rule in rules:
        for i, lit in enumerate(rule.body):
            if lit.positive and not is_builtin_predicate(lit.atom.pred):
                occurrence_index.append((rule, i))

    while delta:
        stats.iterations += 1
        next_delta: dict[str, list[tuple]] = {}
        for rule, occurrence in occurrence_index:
            pred = rule.body[occurrence].atom.pred
            changed = delta.get(pred)
            if not changed:
                continue
            plan = order_body(
                rule.body, first=occurrence, sizes=_sizes(db, planner)
            )
            bindings = solve_body(
                db, rule.body, plan, overrides={occurrence: changed}
            )
            derived = list(head_facts(rule.head, bindings))
            stats.rule_firings += len(derived)
            for fact in derived:
                if db.add(fact):
                    stats.facts_derived += 1
                    next_delta.setdefault(fact.pred, []).append(fact.args)
        delta = next_delta
    return stats
