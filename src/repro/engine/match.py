"""One-way matching of rule terms against ground U-elements.

Matching drives bottom-up evaluation: body literals are matched against
stored facts to extend a binding (the paper's "applicable" bindings of
Section 3.2).  Matching is *nondeterministic* for set constructs:

* an enumerated set pattern ``{t1, ..., tn}`` matches a ground set S
  when the items can be assigned elements of S covering all of S
  (duplicate items may share an element — ``{X, Y}`` matches ``{1}``);
* ``{t1, ..., tn | R}`` additionally binds ``R`` to the uncovered rest
  of S (items may also overlap the rest);
* ``scons(t, T)`` matches S by choosing ``t`` in S and ``T`` as either
  ``S - {t}`` or S itself (both satisfy ``{t} | T = S``).

Two layers of API: the ``*_chain`` generators extend bindings as
immutable :class:`~repro.engine.binding.ChainBinding` links (no dict
copies — the engine's hot path), while the classic :func:`match_term` /
:func:`match_atom` wrappers materialize each success as a *new* plain
dict extending the input, exactly as the seed engine did.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.engine.binding import ChainBinding, as_chain, extended, materialize
from repro.errors import EvaluationError, NotInUniverseError
from repro.program.rule import Atom
from repro.terms.term import (
    SCONS,
    Const,
    Func,
    GroupTerm,
    SetPattern,
    SetVal,
    Term,
    Var,
    evaluate_ground,
)

Binding = dict[str, Term]


def match_term_chain(
    pattern: Term, value: Term, binding: ChainBinding
) -> Iterator[ChainBinding]:
    """Yield chain extensions of ``binding`` making ``pattern`` == ``value``.

    ``value`` must be a canonical ground U-element.  When the pattern is
    already ground it is evaluated (folding ``scons``/arithmetic) and
    compared; patterns that evaluate outside U simply fail (the binding
    is not applicable, Section 3.2).
    """
    if isinstance(pattern, Var):
        bound = binding.get(pattern.name)
        if bound is None:
            yield binding.bind(pattern.name, value)
        elif bound == value:
            yield binding
        return
    if isinstance(pattern, Const):
        if pattern == value:
            yield binding
        return
    if isinstance(pattern, SetVal):
        if pattern == value:
            yield binding
        return
    if isinstance(pattern, GroupTerm):
        raise EvaluationError(
            f"grouping term {pattern!r} cannot be matched; compile LDL1.5 first"
        )
    if pattern.is_ground():
        try:
            if evaluate_ground(pattern.substitute(binding)) == value:
                yield binding
        except NotInUniverseError:
            return
        except EvaluationError:
            return
        return
    if isinstance(pattern, Func):
        if pattern.functor == SCONS:
            yield from _match_scons(pattern, value, binding)
            return
        if (
            isinstance(value, Func)
            and value.functor == pattern.functor
            and len(value.args) == len(pattern.args)
        ):
            yield from _match_sequence(pattern.args, value.args, binding)
        return
    if isinstance(pattern, SetPattern):
        yield from _match_set_pattern(pattern, value, binding)
        return
    raise EvaluationError(f"cannot match pattern {pattern!r}")


def match_term(
    pattern: Term, value: Term, binding: Mapping[str, Term]
) -> Iterator[Binding]:
    """Yield dict extensions of ``binding`` making ``pattern`` == ``value``.

    Thin materializing wrapper over :func:`match_term_chain` — each
    success is a fresh plain dict, the historical public contract.
    """
    for result in match_term_chain(pattern, value, as_chain(binding)):
        yield materialize(result)


def _match_sequence(
    patterns: tuple[Term, ...],
    values: tuple[Term, ...],
    binding: ChainBinding,
) -> Iterator[ChainBinding]:
    if not patterns:
        yield binding
        return
    if len(patterns) == 1:
        yield from match_term_chain(patterns[0], values[0], binding)
        return
    for ext in match_term_chain(patterns[0], values[0], binding):
        yield from _match_sequence(patterns[1:], values[1:], ext)


def _match_scons(
    pattern: Func, value: Term, binding: ChainBinding
) -> Iterator[ChainBinding]:
    if not isinstance(value, SetVal) or len(pattern.args) != 2:
        return
    element_pattern, tail_pattern = pattern.args
    seen: set[frozenset] = set()
    for element in value:
        for ext in match_term_chain(element_pattern, element, binding):
            for tail in (SetVal(value.elements - {element}), value):
                for result in match_term_chain(tail_pattern, tail, ext):
                    key = frozenset(result.items())
                    if key not in seen:
                        seen.add(key)
                        yield result


def _match_set_pattern(
    pattern: SetPattern, value: Term, binding: ChainBinding
) -> Iterator[ChainBinding]:
    if not isinstance(value, SetVal):
        return
    elements = tuple(value)
    seen: set[frozenset] = set()

    def assign(
        items: tuple[Term, ...], covered: frozenset[Term], current: ChainBinding
    ) -> Iterator[tuple[ChainBinding, frozenset[Term]]]:
        if not items:
            yield current, covered
            return
        first, rest = items[0], items[1:]
        for element in elements:
            for ext in match_term_chain(first, element, current):
                yield from assign(rest, covered | {element}, ext)

    for assignment, covered in assign(pattern.items, frozenset(), binding):
        if pattern.rest is None:
            if covered != value.elements:
                continue
            key = frozenset(assignment.items())
            if key not in seen:
                seen.add(key)
                yield assignment
        else:
            rest_value = SetVal(value.elements - covered)
            for result in match_term_chain(pattern.rest, rest_value, assignment):
                key = frozenset(result.items())
                if key not in seen:
                    seen.add(key)
                    yield result


def match_atom_chain(
    pattern: Atom, fact_args: tuple[Term, ...], binding: ChainBinding
) -> Iterator[ChainBinding]:
    """Chain-based matching of a body atom against a stored fact tuple."""
    if len(pattern.args) != len(fact_args):
        return
    yield from _match_sequence(pattern.args, fact_args, binding)


def match_atom(
    pattern: Atom, fact_args: tuple[Term, ...], binding: Mapping[str, Term]
) -> Iterator[Binding]:
    """Match a body atom's arguments against a stored fact tuple."""
    for result in match_atom_chain(pattern, fact_args, as_chain(binding)):
        yield materialize(result)


def ground_atom(atom: Atom, binding: Mapping[str, Term]) -> Atom | None:
    """Instantiate ``atom`` under ``binding`` and canonicalize to a U-fact.

    Returns None when the result is not ground or falls outside the
    universe (the binding is then not applicable to this atom).
    """
    instantiated = atom.substitute(binding)
    try:
        args = tuple(evaluate_ground(a) for a in instantiated.args)
    except (NotInUniverseError, EvaluationError):
        return None
    return Atom(atom.pred, args)


__all__ = [
    "Binding",
    "extended",
    "ground_atom",
    "match_atom",
    "match_atom_chain",
    "match_term",
    "match_term_chain",
]
