"""Set-at-a-time batch executor: relational operators over binding lists.

Each :class:`RulePlan` step becomes one physical operator applied to the
WHOLE batch of candidate bindings at once, in the spirit of the paper's
bottom-up "applicable bindings" semantics (§3.2) and the set-oriented
engines that descended from LDL1:

* relation steps with probes → indexed hash join: the relation's hash
  index is fetched once per step and probed directly, one cached-hash
  dict get per binding;
* relation steps without probes → nested-loop join against one shared
  scan; override sources (the semi-naive delta) are materialized once
  and joined grouped by probe key;
* negation steps → anti-join with a per-step verdict memo, so each
  distinct argument tuple hits the database once;
* builtin steps → batch filter/generate, flattening each handler's
  output into the next batch.

The output batch is the same *multiset* of bindings the tuple executor
produces (order may differ): no deduplication happens here, so
``on_rule_fired`` counts and grouping multiplicities agree between the
two executors exactly.

Since PR 6 this module is the *term-lane* implementation: when plan
specialization is on (the default), supported plans instead run as
compiled ID-row closures over the columnar relation layer
(:mod:`repro.engine.exec.specialize`), and this executor serves as
their fallback for unsupported shapes — plus the whole engine's path
under ``REPRO_SPECIALIZE=off``.  Both lanes produce identical binding
multisets; the CI differential legs hold them to that.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.engine.binding import ChainBinding, as_chain
from repro.engine.database import Database
from repro.engine.exec import kernels
from repro.engine.exec.runtime import (
    builtin_step,
    match_residuals,
    negated_builtin_holds,
    negation_args,
    probe_key,
    substituted_residuals,
)
from repro.engine.plan import LiteralStep, RulePlan, SourceOverrides
from repro.errors import EvaluationError, NotInUniverseError
from repro.terms.term import Term, evaluate_ground


def run_plan_batch(
    db: Database,
    plan: RulePlan,
    binding: dict | ChainBinding | None = None,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    metrics=None,
) -> list[ChainBinding]:
    """All body bindings of ``plan``, computed one step at a time over
    the whole batch.  Returns a list (already realized, unlike the lazy
    tuple executor); bindings are copy-on-write chains."""
    batch: list[ChainBinding] = [as_chain(binding)]
    negative_source = negation_db if negation_db is not None else db
    for step in plan.steps:
        if not batch:
            break
        kind = step.kind
        if kind == "relation":
            source = overrides.get(step.index) if overrides else None
            if source is None:
                batch = _join_step(db, step, batch, metrics)
            else:
                batch = _source_join_step(step, batch, source)
        elif kind == "builtin":
            batch = _builtin_step(step, batch)
        else:
            batch = _antijoin_step(negative_source, step, batch, metrics)
        if metrics is not None:
            metrics.record_batch(len(batch))
    return batch


def _group_by_probe_key(
    step: LiteralStep, batch: list[ChainBinding], lenient: bool
) -> dict[tuple[Term, ...], list[ChainBinding]]:
    """Group the batch by evaluated probe key; bindings whose key fails
    to evaluate drop out (exactly the per-binding failure semantics)."""
    probes = step.probes
    by_key: dict[tuple[Term, ...], list[ChainBinding]] = {}
    for current in batch:
        key = probe_key(probes, current, lenient)
        if key is None:
            continue
        members = by_key.get(key)
        if members is None:
            by_key[key] = [current]
        else:
            members.append(current)
    return by_key


def _extend_simple(
    current: ChainBinding,
    tuples: Iterable[tuple[Term, ...]],
    simple: tuple[tuple[int, str], ...],
    out: list[ChainBinding],
) -> None:
    """Fresh-variable residuals: one chain node per position, no
    recursive matcher."""
    for args in tuples:
        extended = current
        for pos, name in simple:
            bound = extended.get(name)
            if bound is None:
                extended = ChainBinding(extended, name, args[pos])
            elif bound != args[pos]:
                break
        else:
            out.append(extended)


def _extend_general(
    step: LiteralStep,
    current: ChainBinding,
    tuples: Iterable[tuple[Term, ...]],
    out: list[ChainBinding],
) -> None:
    """General residual matching (repeated variables, nested terms)."""
    substituted = substituted_residuals(step, current)
    residuals = step.residuals
    for args in tuples:
        out.extend(match_residuals(residuals, args, current, substituted))


def _join_step(
    db: Database, step: LiteralStep, batch: list[ChainBinding], metrics=None
) -> list[ChainBinding]:
    """Indexed hash join of the batch against a stored relation.

    Probed steps fetch the relation's hash index once and probe it
    directly: the inner loop is one cached-hash dict get per binding,
    with no lookup call layers and no intermediate grouping.  With the
    vector kernels on, the probe itself runs as one bulk
    :func:`~repro.engine.exec.kernels.probe_buckets` pass over the
    whole key column."""
    pred = step.literal.atom.pred
    out: list[ChainBinding] = []
    probes = step.probes
    if probes:
        index = db.probe_index(pred, step.probe_positions)
        if index is None:
            return out
        single = len(step.probe_positions) == 1
        fully_bound = step.fully_bound
        simple = step.simple_residuals
        if kernels.enabled() and len(batch) > 1:
            # gather the key column, probe it in one map pass, then
            # extend per non-empty bucket.  A failed key evaluates to
            # None, which no index ever stores, so it probes to a None
            # bucket and drops out exactly like the per-row path.
            if single:
                keys = [
                    None if (k := probe_key(probes, current, False)) is None
                    else k[0]
                    for current in batch
                ]
            else:
                keys = [probe_key(probes, current, False) for current in batch]
            buckets = kernels.probe_buckets(index.get, keys)
            if metrics is not None:
                metrics.record_kernel(len(batch))
            for current, bucket in zip(batch, buckets):
                if not bucket:
                    continue
                if fully_bound:
                    out.append(current)
                elif simple is not None:
                    _extend_simple(current, bucket, simple, out)
                else:
                    _extend_general(step, current, bucket, out)
            return out
        for current in batch:
            key = probe_key(probes, current, False)
            if key is None:
                continue
            bucket = index.get(key[0] if single else key)
            if not bucket:
                continue
            if fully_bound:
                # semi-join: the full key is the whole row, so a
                # non-empty bucket means exactly one match.
                out.append(current)
            elif simple is not None:
                _extend_simple(current, bucket, simple, out)
            else:
                _extend_general(step, current, bucket, out)
        return out
    # no probes: one scan shared by every binding in the batch
    tuples: Iterable[tuple[Term, ...]] = db.tuples(pred)
    simple = step.simple_residuals
    if simple is not None:
        if len(batch) > 1:
            tuples = list(tuples)
        for current in batch:
            _extend_simple(current, tuples, simple, out)
        return out
    tuples = list(tuples)
    for current in batch:
        _extend_general(step, current, tuples, out)
    return out


def _source_join_step(
    step: LiteralStep,
    batch: list[ChainBinding],
    source: Iterable[tuple[Term, ...]],
) -> list[ChainBinding]:
    """Join the batch against an override source (the semi-naive delta).

    The delta is materialized once for the whole batch; probe checks
    are amortized per distinct key instead of per binding."""
    rows = source if isinstance(source, (list, tuple)) else list(source)
    out: list[ChainBinding] = []
    arity = len(step.literal.atom.args)
    if not step.probes:
        simple = step.simple_residuals
        if simple is not None:
            for current in batch:
                _extend_simple(current, rows, simple, out)
        else:
            for current in batch:
                _extend_general(step, current, rows, out)
        return out
    by_key = _group_by_probe_key(step, batch, lenient=True)
    probes = step.probes
    for key, members in by_key.items():
        matched = [
            args
            for args in rows
            if all(
                args[pos] == part
                for (pos, _kind, _payload), part in zip(probes, key)
            )
        ]
        if not matched:
            continue
        if not step.residuals:
            # probe-only literal: each binding passes once per row of
            # the right arity, mirroring the per-binding executor.
            passes = sum(1 for args in matched if len(args) == arity)
            for _ in range(passes):
                out.extend(members)
            continue
        for current in members:
            _extend_general(step, current, matched, out)
    return out


def _builtin_step(
    step: LiteralStep, batch: list[ChainBinding]
) -> list[ChainBinding]:
    """Batch filter/generate: flatten each binding's builtin output."""
    out: list[ChainBinding] = []
    for current in batch:
        out.extend(builtin_step(step, current))
    return out


def _antijoin_step(
    negation_db: Database, step: LiteralStep, batch: list[ChainBinding],
    metrics=None,
) -> list[ChainBinding]:
    """Anti-join: keep the bindings whose negated atom is absent.

    Distinct argument tuples are memoized per step, so a batch probing
    the same ground atom many times hits the database once.  With the
    vector kernels on, the whole batch's argument column is gathered
    first, distinct tuples probe the relation once each, and the keep
    pass is a single comprehension over the verdict column."""
    if step.neg_args is None:
        # negated built-in: a closed per-binding test, no relation to
        # anti-join against.
        return [
            current
            for current in batch
            if negated_builtin_holds(step, current)
        ]
    pred = step.literal.atom.pred
    if kernels.enabled() and len(batch) > 1:
        args_col = [negation_args(step, current) for current in batch]
        rel = negation_db.get_relation(pred)
        if metrics is not None:
            metrics.record_kernel(len(batch))
        if rel is None:
            # unknown predicate: every evaluable tuple is absent
            return [
                current
                for current, args in zip(batch, args_col)
                if args is not None
            ]
        contains = rel.__contains__
        verdicts = {
            args: contains(args)
            for args in dict.fromkeys(args_col)
            if args is not None
        }
        return [
            current
            for current, args in zip(batch, args_col)
            if args is not None and not verdicts[args]
        ]
    out: list[ChainBinding] = []
    verdicts: dict[tuple[Term, ...], bool] = {}
    for current in batch:
        args = negation_args(step, current)
        if args is None:
            continue
        present = verdicts.get(args)
        if present is None:
            present = negation_db.contains_tuple(pred, args)
            verdicts[args] = present
        if not present:
            out.append(current)
    return out


def group_bindings(
    bindings: Iterable[Mapping[str, Term]],
    group_var: str,
    other_terms: Iterable[tuple[int, Term]],
    describe,
) -> dict[tuple[Term, ...], set[Term]]:
    """Batch group-by for grouping rules: bucket the grouped variable's
    canonical values under the canonical key of the remaining head
    arguments.

    An unbound grouped variable is a range-restriction violation and
    raises :class:`EvaluationError` (``describe()`` supplies the message
    context); bindings whose key or value falls outside U drop out,
    exactly as the per-binding path did.  An empty batch yields no
    groups; duplicate bindings collapse in the value *sets*.
    """
    other_terms = tuple(other_terms)
    groups: dict[tuple[Term, ...], set[Term]] = {}
    for binding in bindings:
        value_term = binding.get(group_var)
        if value_term is None:
            raise EvaluationError(
                f"grouped variable {group_var} unbound by body: {describe()}"
            )
        try:
            key = tuple(
                evaluate_ground(term.substitute(binding))
                for _pos, term in other_terms
            )
            value = evaluate_ground(value_term)
        except (NotInUniverseError, EvaluationError):
            continue
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = {value}
        else:
            bucket.add(value)
    return groups
