"""Vector kernels: whole-column operators over dense-ID int lanes.

PR 6 made relations columnar and plans specialized, but the compiled
closures still advanced one ID row at a time through Python bytecode.
This module is the kernel vocabulary the vectorized executor emits
against: each kernel processes a WHOLE column (or row batch) per call,
with the hot callable (``dict.get``, ``set.__contains__``,
``list.append``) bound once so interpreter dispatch amortizes over
thousands of rows instead of one.

The kernel set mirrors the relational operators of the specialized
pipeline:

* **bulk hash-join probe** — :func:`probe_buckets` gathers the index
  bucket for every key of a key column in one ``map`` pass;
* **selection masks** — :func:`eq_mask` / :func:`ne_mask` /
  :func:`compare_mask` evaluate ``=`` / ``!=`` / comparison built-ins
  over ID (or numeric) lanes, one bool per row;
* **arithmetic lanes** — :func:`numeric_lane` reads the raw numbers of
  a rid lane from the interner's numeric table
  (:data:`repro.terms.term._NUM_TABLE`), and :func:`number_rid` interns
  a computed number back to its row ID through a process-wide memo, so
  ``C = C1 + C2`` runs as int adds plus one dict get per distinct
  result;
* **bulk anti-join** — :func:`antijoin_keep` keeps the rows absent from
  an ID-row set in one ``filterfalse`` pass;
* **gather / scatter** — :func:`gather` projects one column out of a
  row batch; :func:`scatter_column` bulk-appends a materialized output
  column onto a relation lane (``array.extend``, no per-row bytecode);
  :func:`fresh_rows` dedupes a derived row batch and drops
  already-stored rows at C speed (``dict.fromkeys`` + ``filterfalse``);
* **set algebra** — :func:`union_rid` is the ID-space form of LDL1's
  ``partition(S, S1, S2)`` with both parts bound (disjointness check +
  union), memoized per ``(rid, rid)`` pair.

:class:`RowBatch` is the delta currency of the vectorized fixpoint: ID
rows plus their verbatim argument tuples, so a semi-naive round feeds
the next round's override sources without re-encoding (the term-lane
executors iterate it as plain argument tuples).

Process-wide memos hold dense IDs, so :func:`clear_intern_table`
invalidates them through the term module's clear-listener registry.
The generated closures (:mod:`repro.engine.exec.specialize`) inline
the single-row forms of these kernels and call the batch forms for
their fused last step; :mod:`repro.engine.exec.batch` uses the batch
forms directly on the term lane.
"""

from __future__ import annotations

from itertools import filterfalse

from repro.terms.term import (
    SetVal,
    _ID_TABLE,
    _NUM_TABLE,
    intern_const,
    intern_term,
    register_clear_listener,
    row_id,
)

#: Process-wide toggle mirroring ``REPRO_VECTOR`` (see
#: :func:`repro.engine.exec.set_vectorization`).  The batch executor
#: checks it before taking its bulk-probe lanes; the rows-mode
#: specialization gate in :mod:`repro.engine.exec` checks it before
#: compiling against this module at all.
_enabled = True


def enabled() -> bool:
    """Whether the vector kernels are switched on process-wide."""
    return _enabled


def set_enabled(flag: bool) -> None:
    global _enabled
    _enabled = bool(flag)


# -- memoized ID-space scalar kernels ---------------------------------------

#: number → row ID.  Keyed by ``(type, value)`` because equal numbers of
#: different types (``2`` vs ``2.0``, ``True`` vs ``1``) hash alike but
#: intern to distinct constants with distinct row IDs.
_NUM_RIDS: dict = {}

#: (left rid, right rid) → union rid, or -1 when partition/3 is false
#: for that operand pair (overlapping parts, or a non-set operand).
_UNION_RIDS: dict = {}

_MEMO_CAP = 1 << 17


def _clear_memos() -> None:
    _NUM_RIDS.clear()
    _UNION_RIDS.clear()


register_clear_listener(_clear_memos)


def number_rid(value) -> int:
    """The row ID of a computed raw number, interning on first sight.

    The memo makes the arithmetic lane's common case — a result seen
    before — one dict get instead of an intern-table probe.
    """
    key = (value.__class__, value)
    rid = _NUM_RIDS.get(key)
    if rid is None:
        rid = row_id(intern_const(value))
        if len(_NUM_RIDS) < _MEMO_CAP:
            _NUM_RIDS[key] = rid
    return rid


def union_rid(left: int, right: int) -> int:
    """ID-space ``partition(Whole, left, right)`` with both parts bound.

    Returns the row ID of the disjoint union, or -1 when the built-in
    is false for these operands: overlapping parts, or an operand that
    is not a set (Section 2.2 makes set built-ins false, not erroneous,
    on bound non-set arguments).  Memoized per operand pair — the
    divide-and-conquer workloads re-join the same part pairs once per
    containing binding.
    """
    key = (left, right)
    rid = _UNION_RIDS.get(key)
    if rid is None:
        table = _ID_TABLE
        lval = table[left]
        rval = table[right]
        if (
            not isinstance(lval, SetVal)
            or not isinstance(rval, SetVal)
            or (lval.elements & rval.elements)
        ):
            rid = -1
        else:
            rid = row_id(
                intern_term(SetVal.from_ground(lval.elements | rval.elements))
            )
        if len(_UNION_RIDS) < _MEMO_CAP:
            _UNION_RIDS[key] = rid
    return rid


# -- whole-column kernels ---------------------------------------------------


def probe_buckets(get, keys) -> list:
    """Bulk hash-join probe: the index bucket (or None) for every key.

    ``get`` is the probed index's bound ``dict.get``; ``keys`` is a key
    column — a relation lane, a gathered list, or any iterable.  One C
    ``map`` pass, no per-key bytecode.
    """
    return list(map(get, keys))


def gather(rows, position: int) -> list:
    """Project one column out of a batch of ID rows (column gather)."""
    return [row[position] for row in rows]


def scatter_column(column, rows, position: int) -> None:
    """Bulk-append one output column onto a relation lane.

    ``column`` is an ``array('q')`` int lane; the gather + ``extend``
    pair replaces per-row ``append`` bytecode with two C calls.
    """
    column.extend([row[position] for row in rows])


def dedupe_rows(rows) -> list:
    """Distinct rows in first-occurrence order (``dict.fromkeys``)."""
    return list(dict.fromkeys(rows))


def fresh_rows(rows, rowpos) -> list:
    """Distinct derived rows not already stored, in derivation order.

    ``rowpos`` is the relation's row→position dict; the dedupe and the
    membership filter both run at C speed, so a fixpoint round that
    re-derives thousands of known facts pays near-zero Python cost for
    them.
    """
    return list(filterfalse(rowpos.__contains__, dict.fromkeys(rows)))


def antijoin_keep(rows, id_rows) -> list:
    """Bulk anti-join: the rows NOT present in an ID-row set."""
    return list(filterfalse(id_rows.__contains__, rows))


def eq_mask(lane, rid: int) -> list:
    """Selection mask for ``column = constant`` over a rid lane.

    Row-ID equality coincides with term equality, so this is exact.
    """
    return [value == rid for value in lane]


def ne_mask(lane, rid: int) -> list:
    """Selection mask for ``column != constant`` over a rid lane."""
    return [value != rid for value in lane]


def numeric_lane(lane) -> list:
    """The raw numbers of a rid lane (None where a row is non-numeric).

    Reads the interner's numeric table: one ``map`` over list
    subscripts, no term materialization.
    """
    return list(map(_NUM_TABLE.__getitem__, lane))


def compare_mask(op, left_lane, right_lane) -> list:
    """Selection mask for a comparison built-in over two numeric lanes.

    ``op`` is a two-argument predicate (e.g. ``operator.lt``); entries
    where either side is None (non-numeric) come out None — the caller
    routes those rows through the exact slow path.
    """
    return [
        None if (a is None or b is None) else op(a, b)
        for a, b in zip(left_lane, right_lane)
    ]


def arith_lane(fold, left_lane, right_lane) -> list:
    """Apply a two-argument arithmetic fold over two numeric lanes.

    None where either operand is None (the exact-semantics fallback
    rows).  ``fold`` must be total over numbers (``+``/``-``/``*``/
    ``min``/``max``; division routes through the slow path because it
    can raise).
    """
    return [
        None if (a is None or b is None) else fold(a, b)
        for a, b in zip(left_lane, right_lane)
    ]


def materialize_rows(rows, decode) -> list:
    """Decode a row batch to argument tuples (output gather)."""
    return list(map(decode, rows))


# -- the vectorized delta currency ------------------------------------------


class RowBatch:
    """A derived-fact batch carried in both lanes at once.

    ``rows`` holds the ID rows, ``args`` the parallel verbatim argument
    tuples.  The vectorized fixpoint uses it as the semi-naive delta:
    the specialized executors read ``rows`` directly (no re-encoding on
    the next round's override source), while the term-lane executors
    iterate it as plain argument tuples.
    """

    __slots__ = ("pred", "arity", "rows", "args")

    def __init__(self, pred: str, arity: int) -> None:
        self.pred = pred
        self.arity = arity
        self.rows: list[tuple[int, ...]] = []
        self.args: list[tuple] = []

    def add(self, row: tuple[int, ...], args: tuple) -> None:
        self.rows.append(row)
        self.args.append(args)

    def extend_pairs(self, pairs) -> None:
        for row, args in pairs:
            self.rows.append(row)
            self.args.append(args)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.args)

    def __repr__(self) -> str:
        return f"RowBatch({self.pred}/{self.arity}, {len(self.rows)} rows)"
