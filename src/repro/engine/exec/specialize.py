"""Per-plan specialization: compile a RulePlan to one Python closure.

The batch executor (:mod:`repro.engine.exec.batch`) still *interprets*
the step vocabulary per call: for every batch it re-dispatches on step
kind, re-reads descriptor tuples, and shuttles ``ChainBinding`` objects
of boxed terms between operators.  This module removes that
interpretive overhead: each :class:`~repro.engine.plan.RulePlan`
compiles once into a specialized function whose source *inlines* the
plan — nested loops over ID rows (:mod:`repro.engine.relation`), probe
keys as int (tuples of int) dict gets against
:meth:`~repro.engine.relation.Relation.id_index`, negation as ID-row
set membership, and residual fresh variables as direct tuple
subscripts into local ints.  Terms materialize from the ID table only
at the boundaries: builtin calls, general residual matching, and the
emitted facts/bindings.

Three modes share one generator:

* ``"atoms"`` — the :func:`~repro.engine.exec.derive_facts` shape:
  emits ground head :class:`~repro.program.rule.Atom` facts directly
  (the head template is inlined too; non-fast heads fall back to
  :func:`~repro.engine.match.ground_atom` per row);
* ``"bindings"`` — the :func:`~repro.engine.exec.enumerate_bindings`
  shape: emits :class:`~repro.engine.binding.ChainBinding` objects
  (consumers call ``.materialize()``), one root dict per row;
* ``"rows"`` — the vectorized :func:`~repro.engine.exec.derive_rows`
  shape: emits raw head ID rows (int tuples, no Atom per candidate —
  the fixpoint bulk-inserts them via ``Database.add_rows`` and only
  genuinely new facts ever materialize terms).  Rows mode also turns
  on the vector-kernel codegen (:mod:`repro.engine.exec.kernels`):
  the last relation step fuses emission into one whole-column list
  comprehension, arithmetic and comparisons read the interner's
  numeric lane directly, bound-parts ``partition`` runs as the
  memoized ID-space union kernel, and remaining known-handler builtin
  calls memoize on their input row IDs.  Requires an empty seed, a
  fast head template whose variables the body binds, and — because
  the emitted multiset of rows must equal the atoms mode's facts
  one-for-one — falls back for every shape atoms mode would.  The
  ``atoms``/``bindings`` generators are byte-identical with the knob
  on or off, so ``REPRO_VECTOR=off`` differential legs compare
  against exactly the PR 6 code paths.

Semantics are *identical by construction* to the term-level batch
executor — same binding multisets, same failure semantics (lenient
override probes vs raising database probes), same per-step
``record_batch`` metrics — and the tuple executor remains the
differential oracle for both.  Shapes the generator cannot prove it
handles raise :class:`_Unsupported` and the caller falls back to the
term-level batch lane; runtime conditions it cannot handle (a seed
binding whose keys differ from the plan's ``initially_bound``) return
:data:`FALLBACK` *before* any override source is consumed.

Compiled closures capture the ID table by reference; like relations,
they must not outlive :func:`repro.terms.term.clear_intern_table`.
"""

from __future__ import annotations

from typing import Mapping

from repro.engine.binding import (
    EMPTY_BINDING,
    ChainBinding,
    materialize,
)
from repro.engine.database import Database
from repro.engine.exec.kernels import number_rid, union_rid
from repro.engine.exec.runtime import (
    builtin_step,
    fold_arith,
    match_residuals,
    negated_builtin_holds,
    substituted_residuals,
)
from repro.engine.match import ground_atom
from repro.engine.plan import ARITH, CONST, VAR, LiteralStep, RulePlan, SourceOverrides
from repro.engine.relation import decode_row, encode_args
from repro.errors import EvaluationError, NotInUniverseError
from repro.program.rule import Atom
from repro.terms.term import (
    Const,
    Term,
    _ID_TABLE,
    _NUM_TABLE,
    evaluate_ground,
    row_id,
)

#: Sentinel: the specialized path declined (before consuming any
#: override source); the caller must run the term-level batch lane.
FALLBACK = object()


class _Unsupported(Exception):
    """The generator cannot prove it handles this plan shape."""


# -- runtime helpers shared by every generated closure ----------------------


def _encode_rows(source) -> list[tuple[int, ...]]:
    """Materialize an override source once, as ID rows.

    A :class:`~repro.engine.exec.kernels.RowBatch` source (the
    vectorized fixpoint's delta) already carries its ID rows — zero
    re-encoding on later semi-naive rounds."""
    rows = getattr(source, "rows", None)
    if rows is not None:
        return rows
    return [encode_args(args) for args in source]


def _encode_rows_exact(source, arity: int) -> list[tuple[int, ...]]:
    """Like :func:`_encode_rows` but dropping wrong-arity rows — the
    probe-only override semantics (each binding passes once per row *of
    the right arity*)."""
    rows = getattr(source, "rows", None)
    if rows is not None:
        return rows if source.arity == arity else []
    return [encode_args(args) for args in source if len(args) == arity]


def _build_index(rows, positions):
    """An ID-space hash index over override rows.  Buckets are lists:
    override sources are multisets and duplicates must keep counting."""
    index: dict = {}
    if len(positions) == 1:
        pos = positions[0]
        for row in rows:
            key = row[pos]
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
            else:
                bucket.append(row)
    else:
        for row in rows:
            key = tuple(row[i] for i in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
            else:
                bucket.append(row)
    return index


def _out_rid(value: Term) -> int:
    rid = value._rid
    return row_id(value) if rid is None else rid


def _term_prober(term: Term, in_names: tuple[str, ...]):
    """Evaluate a residual probe term to its row ID, or -1 to drop the
    binding.  Failure semantics match :func:`runtime.probe_key`:
    ``EvaluationError`` always drops; ``NotInUniverseError`` drops only
    for lenient (override) sources and raises for database probes."""

    def probe(in_rids, lenient):
        table = _ID_TABLE
        binding = {n: table[r] for n, r in zip(in_names, in_rids)}
        try:
            value = evaluate_ground(term.substitute(binding))
        except EvaluationError:
            return -1
        except NotInUniverseError:
            if lenient:
                return -1
            raise
        rid = value._rid
        return row_id(value) if rid is None else rid

    return probe


def _neg_prober(term: Term, in_names: tuple[str, ...]):
    """Evaluate a negation argument term to its row ID, or -1 to drop
    the binding (unbound or outside U: not applicable, as in
    :func:`runtime.negation_args`)."""

    def probe(in_rids):
        table = _ID_TABLE
        binding = {n: table[r] for n, r in zip(in_names, in_rids)}
        try:
            value = evaluate_ground(term.substitute(binding))
        except (NotInUniverseError, EvaluationError):
            return -1
        rid = value._rid
        return row_id(value) if rid is None else rid

    return probe


def _residual_matcher(
    step: LiteralStep, in_names: tuple[str, ...], out_names: tuple[str, ...]
):
    """General residual matching (repeated variables, nested patterns)
    over a whole bucket of ID rows: one call per outer binding, the
    mixed residual terms substituted once (exactly the batch
    executor's amortization), returning the row-ID tuples of the new
    variables, one per match."""

    residuals = step.residuals

    def matcher(in_rids, rows):
        table = _ID_TABLE
        root = {n: table[r] for n, r in zip(in_names, in_rids)}
        binding = ChainBinding(root=root) if root else EMPTY_BINDING
        substituted = substituted_residuals(step, binding)
        outs = []
        for row in rows:
            args = tuple(table[rid] for rid in row)
            for ext in match_residuals(residuals, args, binding, substituted):
                outs.append(tuple(_out_rid(ext[n]) for n in out_names))
        return outs

    return matcher


def _builtin_runner(
    step: LiteralStep, in_names: tuple[str, ...], out_names: tuple[str, ...]
):
    """Generic builtin fallback (unknown predicates route through
    ``solve_builtin``): materialize the bound arguments, run the step,
    re-encode the output variables.  One result tuple per yielded
    extension, so filter multiplicities survive.  Known handlers are
    inlined by the generator instead."""

    def run(in_rids):
        table = _ID_TABLE
        root = {n: table[r] for n, r in zip(in_names, in_rids)}
        binding = ChainBinding(root=root) if root else EMPTY_BINDING
        outs = []
        for ext in builtin_step(step, binding):
            outs.append(tuple(_out_rid(ext[n]) for n in out_names))
        return outs

    return run


def _single_out_rid(step: LiteralStep, in_names: tuple[str, ...], out_name: str):
    """Slow path for an inlined assignment builtin whose arithmetic
    fast-fold declined (unbound/non-numeric operand, fold failure): run
    the full builtin step — exact error and universe semantics — and
    return the single extension's output row ID, or -1 when the builtin
    is false.  Only used for shapes that yield at most one extension
    (``=`` binding one fresh variable)."""

    def run(in_rids):
        table = _ID_TABLE
        root = {n: table[r] for n, r in zip(in_names, in_rids)}
        binding = ChainBinding(root=root) if root else EMPTY_BINDING
        for ext in builtin_step(step, binding):
            return _out_rid(ext[out_name])
        return -1

    return run


def _filter_holds(step: LiteralStep, in_names: tuple[str, ...]):
    """Slow path for an inlined filter builtin: True iff the step
    yields (filters yield at most one extension)."""

    def run(in_rids):
        table = _ID_TABLE
        root = {n: table[r] for n, r in zip(in_names, in_rids)}
        binding = ChainBinding(root=root) if root else EMPTY_BINDING
        for _ in builtin_step(step, binding):
            return True
        return False

    return run


def _neg_builtin(step: LiteralStep, in_names: tuple[str, ...]):
    """Closed negated-builtin test over materialized bound arguments."""

    def holds(in_rids):
        table = _ID_TABLE
        root = {n: table[r] for n, r in zip(in_names, in_rids)}
        binding = ChainBinding(root=root) if root else EMPTY_BINDING
        return negated_builtin_holds(step, binding)

    return holds


# -- the generator ----------------------------------------------------------


class _Codegen:
    """Builds the source of one specialized closure.

    The generated function has the shape::

        def _specialized(db, overrides, seed, base, negdb, metrics):
            out = []; _ap = out.append
            <per-step source prologue: override vs db, indexes, counters>
            for _root in _ONE:            # single pass; makes every
                <nested per-step loops>   # drop-binding check a plain
                    <emission epilogue>   # ``continue``
            <record_batch epilogue>
            return out

    ``seed`` maps initially-bound variable names to row IDs, ``base``
    the same names to their original term values (used verbatim in
    emitted bindings, exactly as the term executors keep the caller's
    root binding)."""

    def __init__(self, plan: RulePlan, mode: str) -> None:
        self.plan = plan
        self.mode = mode
        # rows mode doubles as the vector-kernel switch: the extra
        # codegen below (numeric-lane arithmetic, the partition union
        # kernel, builtin memos, fused emission) is emitted only when
        # ``vector`` — atoms/bindings sources stay byte-identical to
        # the non-vectorized generator, so the ``REPRO_VECTOR=off``
        # differential leg compares against exactly the old code.
        self.vector = mode == "rows"
        if self.vector and plan.initially_bound:
            # rows mode only serves the seedless fixpoint shape; a
            # seeded call could not decode initially-bound head
            # variables back to the caller's verbatim spellings.
            raise _Unsupported("rows mode requires an empty seed")
        self.env: dict = {
            "_T": _ID_TABLE,
            "_CB": ChainBinding,
            "_Atom": Atom,
            "_ga": ground_atom,
            "_enc": _encode_rows,
            "_encf": _encode_rows_exact,
            "_bix": _build_index,
            "_fold": fold_arith,
            "_rid": row_id,
            "_EB": EMPTY_BINDING,
            "_ED": {},
            "_ONE": (0,),
            "_ES": frozenset(),
        }
        if self.vector:
            self.env["_NT"] = _NUM_TABLE
            self.env["_nr"] = number_rid
            self.env["_un"] = union_rid
        self.locals: dict[str, str] = {}  # variable name -> local name
        self.assigned: set[str] = set()
        self.pro: list[str] = []  # prologue lines (one indent level)
        self.body: list[str] = []  # loop-nest lines (absolute indent)
        self.depth = 2  # inside the function and the _ONE loop
        self.fused = False  # rows mode: last step emitted its own output

    # -- small emission helpers --------------------------------------------

    def emit(self, line: str) -> None:
        self.body.append("    " * self.depth + line)

    def local_for(self, name: str) -> str:
        loc = self.locals.get(name)
        if loc is None:
            loc = f"v{len(self.locals)}"
            self.locals[name] = loc
        return loc

    def bound_local(self, name: str) -> str:
        """The local holding an already-bound variable, loading it from
        the seed on first use."""
        if name not in self.assigned:
            if name not in self.plan.initially_bound:
                raise _Unsupported(f"variable {name!r} unbound at use")
            loc = self.local_for(name)
            self.pro.append(f"{loc} = seed[{name!r}]")
            self.assigned.add(name)
        return self.locals[name]

    def ins_expr(self, names) -> str:
        for name in names:
            self.bound_local(name)
        if not names:
            return "()"
        inner = ", ".join(self.locals[n] for n in names)
        return f"({inner},)" if len(names) == 1 else f"({inner})"

    # -- per-step emission -------------------------------------------------

    def relation_step(self, k: int, step: LiteralStep, fuse: bool = False) -> None:
        atom = step.literal.atom
        pred = atom.pred
        arity = len(atom.args)
        general = bool(step.residuals) and step.simple_residuals is None
        pro = self.pro
        emit = self.emit
        pro.append(
            f"_s{k} = None if overrides is None else overrides.get({step.index})"
        )
        if step.probes:
            # probe-only override rows must be arity-filtered (each
            # binding passes once per matching row of the right arity);
            # rows feeding residual matching are not (parity with the
            # term-level matchers, which ignore trailing columns).
            enc = "_enc" if step.residuals else "_encf"
            arg = f"_s{k}" if step.residuals else f"_s{k}, {arity}"
            pro.append(f"if _s{k} is None:")
            pro.append(
                f"    _i{k} = db.id_index({pred!r}, {step.probe_positions!r})"
            )
            pro.append(f"    _l{k} = False")
            pro.append("else:")
            pro.append(
                f"    _i{k} = _bix({enc}({arg}), {step.probe_positions!r})"
            )
            pro.append(f"    _l{k} = True")
            # an unknown predicate skips the step wholesale, before any
            # probe-key evaluation (the batch executor's semantics)
            emit(f"if _i{k} is None:")
            emit("    continue")
            parts = []
            for pos, kindp, payload in step.probes:
                if kindp == VAR:
                    parts.append(self.bound_local(payload))
                elif kindp == CONST:
                    parts.append(str(row_id(payload)))
                else:  # TERM: evaluate per binding at the term boundary
                    hname = f"_t{k}_{pos}"
                    in_names = tuple(sorted(payload.variables()))
                    ins = self.ins_expr(in_names)
                    self.env[hname] = _term_prober(payload, in_names)
                    tloc = f"_p{k}_{pos}"
                    emit(f"{tloc} = {hname}({ins}, _l{k})")
                    emit(f"if {tloc} < 0:")
                    emit("    continue")
                    parts.append(tloc)
            key = parts[0] if len(parts) == 1 else "(" + ", ".join(parts) + ")"
            emit(f"_b{k} = _i{k}.get({key})")
            emit(f"if not _b{k}:")
            emit("    continue")
            rows = f"_b{k}"
        else:
            pro.append(f"if _s{k} is None:")
            pro.append(f"    _r{k} = db.id_rows({pred!r})")
            pro.append(f"    if _r{k} is None:")
            pro.append(f"        _r{k} = ()")
            pro.append("else:")
            pro.append(f"    _r{k} = _enc(_s{k})")
            rows = f"_r{k}"
        if general:
            # one matcher call per outer binding over the whole bucket:
            # the mixed residual terms substitute once, as in the batch
            # executor's general-residual operator
            bound = step.bound_before
            in_names = tuple(sorted(atom.variables() & bound))
            out_names = tuple(sorted(atom.variables() - bound))
            ins = self.ins_expr(in_names)
            hname = f"_m{k}"
            self.env[hname] = _residual_matcher(step, in_names, out_names)
            emit(f"for _y{k} in {hname}({ins}, {rows}):")
            self.depth += 1
            if out_names:
                targets = ", ".join(self.local_for(n) for n in out_names)
                comma = "," if len(out_names) == 1 else ""
                emit(f"{targets}{comma} = _y{k}")
                self.assigned.update(out_names)
            emit(f"_c{k} += 1")
            return
        if fuse:
            # rows mode, last step: fuse iteration and emission into one
            # whole-column gather — a single list comprehension builds
            # every output ID row of this dispatch (this step's fresh
            # variables substitute as direct row subscripts), and one
            # C-level ``extend`` scatters the batch onto the output.
            sub = {}
            if step.residuals:
                for pos, name in step.simple_residuals:
                    sub[name] = f"_x{k}[{pos}]"
            row_expr = self.head_row_expr(sub)
            emit(f"_t{k} = [{row_expr} for _x{k} in {rows}]")
            emit(f"_xt(_t{k})")
            emit(f"_c{k} += len(_t{k})")
            self.fused = True
            return
        emit(f"for _x{k} in {rows}:")
        self.depth += 1
        if not step.residuals:
            emit(f"_c{k} += 1")
        else:
            for pos, name in step.simple_residuals:
                loc = self.local_for(name)
                emit(f"{loc} = _x{k}[{pos}]")
                self.assigned.add(name)
            emit(f"_c{k} += 1")

    def negation_step(self, k: int, step: LiteralStep) -> None:
        atom = step.literal.atom
        emit = self.emit
        if step.neg_args is None:  # negated builtin: closed test
            in_names = tuple(sorted(atom.variables() & step.bound_before))
            ins = self.ins_expr(in_names)
            hname = f"_nb{k}"
            self.env[hname] = _neg_builtin(step, in_names)
            emit(f"if not {hname}({ins}):")
            emit("    continue")
            emit(f"_c{k} += 1")
            return
        self.pro.append(f"_n{k} = negdb.id_rows({atom.pred!r})")
        self.pro.append(f"if _n{k} is None:")
        self.pro.append(f"    _n{k} = _ES")
        parts = []
        for i, (kindn, payload) in enumerate(step.neg_args):
            if kindn == VAR:
                parts.append(self.bound_local(payload))
            elif kindn == CONST:
                parts.append(str(row_id(payload)))
            else:  # TERM: unbound or outside U drops the binding
                hname = f"_g{k}_{i}"
                in_names = tuple(
                    sorted(payload.variables() & step.bound_before)
                )
                ins = self.ins_expr(in_names)
                self.env[hname] = _neg_prober(payload, in_names)
                tloc = f"_q{k}_{i}"
                emit(f"{tloc} = {hname}({ins})")
                emit(f"if {tloc} < 0:")
                emit("    continue")
                parts.append(tloc)
        comma = "," if len(parts) == 1 else ""
        emit(f"if ({', '.join(parts)}{comma}) in _n{k}:")
        emit("    continue")
        emit(f"_c{k} += 1")

    def builtin_step(self, k: int, step: LiteralStep) -> None:
        atom = step.literal.atom
        emit = self.emit
        bound = step.bound_before
        in_names = tuple(sorted(atom.variables() & bound))
        out_names = tuple(sorted(atom.variables() - bound))
        handler = step.builtin_handler
        if (
            handler is not None
            and len(step.builtin_args) == 2
            and atom.pred in ("=", "!=")
            and self._builtin_eq_ne(k, step, in_names, out_names)
        ):
            return
        if handler is None:
            # unknown predicate: generic solve_builtin fallback helper
            ins = self.ins_expr(in_names)
            hname = f"_u{k}"
            self.env[hname] = _builtin_runner(step, in_names, out_names)
            emit(f"for _x{k} in {hname}({ins}):")
            self.depth += 1
            if out_names:
                targets = ", ".join(self.local_for(n) for n in out_names)
                comma = "," if len(out_names) == 1 else ""
                emit(f"{targets}{comma} = _x{k}")
                self.assigned.update(out_names)
            emit(f"_c{k} += 1")
            return
        if self.vector:
            if self._vector_compare(k, step, in_names, out_names):
                return
            if self._vector_partition(k, step, out_names):
                return
        # known handler: inline the argument materialization (the
        # builtin_call_args descriptor walk resolves at generation
        # time — a VAR argument is statically bound or not) and call
        # the compiled handler directly with a minimal root binding
        memo = self.vector
        if memo:
            # rows mode: the handler is a pure function of its bound
            # inputs, so the whole extension list memoizes on the input
            # row IDs — repeat bindings (the measured common case for
            # divide-and-conquer set builtins) replay cached rid tuples
            # instead of re-materializing terms and re-running the
            # solver.  Errors propagate uncached: the store happens
            # after the handler loop completes.
            self.env[f"_M{k}"] = {}
            emit(f"_key{k} = {self.ins_expr(in_names)}")
            emit(f"_z{k} = _M{k}.get(_key{k})")
            emit(f"if _z{k} is None:")
            self.depth += 1
            emit(f"_z{k} = []")
        for name in in_names:
            self.bound_local(name)
        if in_names:
            entries = ", ".join(f"{n!r}: _T[{self.locals[n]}]" for n in in_names)
            emit(f"_d{k} = {{{entries}}}")
            emit(f"_e{k} = _CB(root=_d{k})")
            dct, bnd = f"_d{k}", f"_e{k}"
        else:
            dct, bnd = "_ED", "_EB"
        arg_exprs = []
        for j, (kinda, payload, term) in enumerate(step.builtin_args):
            if kinda == VAR:
                if payload in bound:
                    arg_exprs.append(f"_T[{self.locals[payload]}]")
                else:
                    cname = f"_v{k}_{j}"
                    self.env[cname] = term
                    arg_exprs.append(cname)
            elif kinda == CONST:
                cname = f"_k{k}_{j}"
                self.env[cname] = payload
                arg_exprs.append(cname)
            elif kinda == ARITH:
                self.env[f"_af{k}_{j}"] = payload[0]
                self.env[f"_ag{k}_{j}"] = payload[1]
                self.env[f"_at{k}_{j}"] = term
                wname = f"_w{k}_{j}"
                emit(f"{wname} = _fold(_af{k}_{j}, _ag{k}_{j}, {dct})")
                emit(f"if {wname} is None:")
                emit(f"    {wname} = _at{k}_{j}.substitute({bnd})")
                arg_exprs.append(wname)
            else:  # TERM: mixed pattern, substitute per binding
                self.env[f"_at{k}_{j}"] = term
                arg_exprs.append(f"_at{k}_{j}.substitute({bnd})")
        comma = "," if len(arg_exprs) == 1 else ""
        hname = f"_h{k}"
        self.env[hname] = handler
        emit(f"for _x{k} in {hname}(({', '.join(arg_exprs)}{comma}), {bnd}):")
        self.depth += 1
        if memo:
            rid_exprs = []
            for j2, name in enumerate(out_names):
                emit(f"_o{k}_{j2} = _x{k}[{name!r}]")
                emit(f"_or{k}_{j2} = _o{k}_{j2}._rid")
                emit(f"if _or{k}_{j2} is None:")
                emit(f"    _or{k}_{j2} = _rid(_o{k}_{j2})")
                rid_exprs.append(f"_or{k}_{j2}")
            comma2 = "," if len(rid_exprs) == 1 else ""
            emit(f"_z{k}.append(({', '.join(rid_exprs)}{comma2}))")
            self.depth -= 1  # close the handler loop
            emit(f"if len(_M{k}) < 65536:")
            emit(f"    _M{k}[_key{k}] = _z{k}")
            self.depth -= 1  # close the memo-miss branch
            emit(f"for _y{k} in _z{k}:")
            self.depth += 1
            if out_names:
                targets = ", ".join(self.local_for(n) for n in out_names)
                comma3 = "," if len(out_names) == 1 else ""
                emit(f"{targets}{comma3} = _y{k}")
                self.assigned.update(out_names)
            emit(f"_c{k} += 1")
            return
        for name in out_names:
            loc = self.local_for(name)
            emit(f"_o{k} = _x{k}[{name!r}]")
            emit(f"{loc} = _o{k}._rid")
            emit(f"if {loc} is None:")
            emit(f"    {loc} = _rid(_o{k})")
            self.assigned.add(name)
        emit(f"_c{k} += 1")

    def _emit_fold(self, k: int, arg) -> None:
        """Emit the arithmetic fast-fold for one ARITH argument into
        ``_w{k}`` (a Const, or None when the fold declines)."""
        _kinda, payload, _term = arg
        names = []
        for kv, name in payload[1]:
            if kv == VAR and name not in names:
                names.append(name)
        for name in names:
            self.bound_local(name)
        entries = ", ".join(f"{n!r}: _T[{self.locals[n]}]" for n in names)
        self.env[f"_af{k}"] = payload[0]
        self.env[f"_ag{k}"] = payload[1]
        self.emit(f"_w{k} = _fold(_af{k}, _ag{k}, {{{entries}}})")

    #: Arithmetic functors safe to inline over the numeric lane: total
    #: over numbers, so the raw-value result matches the fold exactly.
    #: ``/`` and ``mod`` can raise (zero divisors) — the fold path owns
    #: that error semantics and they stay excluded.
    _SAFE_ARITH = frozenset({"+", "-", "*", "min", "max", "abs"})

    def _arith_numeric(self, k: int, arg):
        """The rows-mode numeric fast lane for one ARITH argument:
        ``(guard_expr, rid_expr)``, or None when ineligible.

        Emits one ``_NT`` (numeric-lane) load per variable operand at
        the current depth; ``guard_expr`` is true when every operand is
        numeric, and ``rid_expr`` then computes the result's row ID via
        raw Python arithmetic plus the memoized number→rid kernel —
        identical to ``fold_arith`` + intern for these functors, with
        no Const materialization.  Non-numeric rows take the caller's
        exact fold/slow chain."""
        _kinda, payload, _term = arg
        functor, operands = payload
        if functor not in self._SAFE_ARITH:
            return None
        n = len(operands)
        if functor in ("+", "*") and n != 2:
            return None
        if functor == "-" and n not in (1, 2):
            return None
        if functor == "abs" and n != 1:
            return None
        if functor in ("min", "max") and not operands:
            return None
        for kv, value in operands:
            if kv != VAR and not isinstance(value, (int, float)):
                return None
        emit = self.emit
        exprs = []
        checks = []
        for j, (kv, value) in enumerate(operands):
            if kv == VAR:
                loc = f"_na{k}_{j}"
                emit(f"{loc} = _NT[{self.bound_local(value)}]")
                exprs.append(loc)
                checks.append(f"{loc} is not None")
            else:
                exprs.append(repr(value))
        if functor in ("+", "-", "*"):
            if len(exprs) == 1:
                expr = f"-{exprs[0]}"
            else:
                expr = f"{exprs[0]} {functor} {exprs[1]}"
        elif functor == "abs":
            expr = f"abs({exprs[0]})"
        else:
            expr = f"{functor}({', '.join(exprs)})"
        guard = " and ".join(checks) if checks else "True"
        return guard, f"_nr({expr})"

    def _vector_compare(self, k: int, step, in_names, out_names) -> bool:
        """Rows-mode comparison over the numeric lane: when both sides
        are bound variables or numeric constants, ``<``/``<=``/``>``/
        ``>=`` compare raw lane values directly; rows where either side
        is non-numeric route through the exact slow path (which owns
        the raise semantics for strings and mixed types).  Returns True
        when the step was emitted."""
        pred = step.literal.atom.pred
        if (
            pred not in ("<", "<=", ">", ">=")
            or out_names
            or len(step.builtin_args) != 2
        ):
            return False
        bound = step.bound_before
        sides = []
        for kinda, payload, _term in step.builtin_args:
            if kinda == VAR and payload in bound:
                sides.append((VAR, payload))
            elif (
                kinda == CONST
                and type(payload) is Const
                and isinstance(payload.value, (int, float))
            ):
                sides.append((CONST, payload.value))
            else:
                return False
        emit = self.emit
        exprs = []
        none_checks = []
        for j, (kindv, value) in enumerate(sides):
            if kindv == VAR:
                loc = f"_fa{k}_{j}"
                emit(f"{loc} = _NT[{self.bound_local(value)}]")
                exprs.append(loc)
                none_checks.append(f"{loc} is None")
            else:
                exprs.append(repr(value))
        ins = self.ins_expr(in_names)
        hname = f"_uf{k}"
        self.env[hname] = _filter_holds(step, in_names)
        if none_checks:
            emit(f"if {' or '.join(none_checks)}:")
            emit(f"    if not {hname}({ins}):")
            emit("        continue")
            emit(f"elif not ({exprs[0]} {pred} {exprs[1]}):")
            emit("    continue")
        else:
            emit(f"if not ({exprs[0]} {pred} {exprs[1]}):")
            emit("    continue")
        emit(f"_c{k} += 1")
        return True

    def _vector_partition(self, k: int, step, out_names) -> bool:
        """Rows-mode ``partition(Whole, P1, P2)`` with both parts bound
        and the whole a fresh variable: one call to the memoized
        ID-space union kernel replaces status checks, set allocation,
        and binding construction per row (-1 means the built-in is
        false: overlapping parts or a non-set operand).  Returns True
        when the step was emitted."""
        atom = step.literal.atom
        if atom.pred != "partition" or len(step.builtin_args) != 3:
            return False
        bound = step.bound_before
        whole, left, right = step.builtin_args
        kw, pw, _tw = whole
        if kw != VAR or pw in bound or out_names != (pw,):
            return False

        def ground_rid(arg):
            kinda, payload, _term = arg
            if kinda == CONST:
                return str(row_id(payload))
            if kinda == VAR and payload in bound:
                return self.bound_local(payload)
            return None

        gl, gr = ground_rid(left), ground_rid(right)
        if gl is None or gr is None:
            return False
        emit = self.emit
        emit(f"_y{k} = _un({gl}, {gr})")
        emit(f"if _y{k} < 0:")
        emit("    continue")
        loc = self.local_for(pw)
        emit(f"{loc} = _y{k}")
        self.assigned.add(pw)
        emit(f"_c{k} += 1")
        return True

    def _builtin_eq_ne(self, k: int, step, in_names, out_names) -> bool:
        """Inline the ``=``/``!=`` shapes that resolve in ID space —
        row-ID equality coincides with term equality, so ground
        comparisons become int comparisons and ``Fresh = expr``
        becomes a local assignment (with the full builtin step as the
        slow path whenever the arithmetic fold declines).  Returns
        True when the step was emitted."""
        emit = self.emit
        bound = step.bound_before
        pred = step.literal.atom.pred

        def ground_expr(arg):
            kinda, payload, _term = arg
            if kinda == CONST:
                return str(row_id(payload))
            if kinda == VAR and payload in bound:
                return self.bound_local(payload)
            return None

        def arith_ok(arg):
            kinda, payload, _term = arg
            return kinda == ARITH and all(
                kv != VAR or name in bound for kv, name in payload[1]
            )

        a, b = step.builtin_args
        ga, gb = ground_expr(a), ground_expr(b)
        if ga is not None and gb is not None:
            op = "==" if pred == "!=" else "!="
            emit(f"if {ga} {op} {gb}:")
            emit("    continue")
            emit(f"_c{k} += 1")
            return True
        if pred == "!=":
            return False
        for this, other, gother in ((a, b, gb), (b, a, ga)):
            kinda, payload, _term = this
            if kinda != VAR or payload in bound:
                continue
            if out_names != (payload,):
                return False
            if gother is not None:
                loc = self.local_for(payload)
                emit(f"{loc} = {gother}")
                self.assigned.add(payload)
                emit(f"_c{k} += 1")
                return True
            if arith_ok(other):
                ins = self.ins_expr(in_names)
                hname = f"_uq{k}"
                self.env[hname] = _single_out_rid(step, in_names, payload)
                parts = self._arith_numeric(k, other) if self.vector else None
                if parts is not None:
                    guard, rid_expr = parts
                    emit(f"if {guard}:")
                    emit(f"    _y{k} = {rid_expr}")
                    emit("else:")
                    self.depth += 1
                    self._emit_fold(k, other)
                    emit(f"if _w{k} is None:")
                    emit(f"    _y{k} = {hname}({ins})")
                    emit("else:")
                    emit(f"    _y{k} = _w{k}._rid")
                    emit(f"    if _y{k} is None:")
                    emit(f"        _y{k} = _rid(_w{k})")
                    self.depth -= 1
                else:
                    self._emit_fold(k, other)
                    emit(f"if _w{k} is None:")
                    emit(f"    _y{k} = {hname}({ins})")
                    emit("else:")
                    emit(f"    _y{k} = _w{k}._rid")
                    emit(f"    if _y{k} is None:")
                    emit(f"        _y{k} = _rid(_w{k})")
                emit(f"if _y{k} < 0:")
                emit("    continue")
                loc = self.local_for(payload)
                emit(f"{loc} = _y{k}")
                self.assigned.add(payload)
                emit(f"_c{k} += 1")
                return True
            return False
        for gthis, other in ((ga, b), (gb, a)):
            if gthis is not None and arith_ok(other):
                ins = self.ins_expr(in_names)
                hname = f"_uf{k}"
                self.env[hname] = _filter_holds(step, in_names)
                parts = self._arith_numeric(k, other) if self.vector else None
                if parts is not None:
                    guard, rid_expr = parts
                    emit(f"if {guard}:")
                    emit(f"    if {rid_expr} != {gthis}:")
                    emit("        continue")
                    emit("else:")
                    self.depth += 1
                    self._emit_fold(k, other)
                    emit(f"if _w{k} is None:")
                    emit(f"    if not {hname}({ins}):")
                    emit("        continue")
                    emit("else:")
                    emit(f"    _y{k} = _w{k}._rid")
                    emit(f"    if _y{k} is None:")
                    emit(f"        _y{k} = _rid(_w{k})")
                    emit(f"    if _y{k} != {gthis}:")
                    emit("        continue")
                    self.depth -= 1
                else:
                    self._emit_fold(k, other)
                    emit(f"if _w{k} is None:")
                    emit(f"    if not {hname}({ins}):")
                    emit("        continue")
                    emit("else:")
                    emit(f"    _y{k} = _w{k}._rid")
                    emit(f"    if _y{k} is None:")
                    emit(f"        _y{k} = _rid(_w{k})")
                    emit(f"    if _y{k} != {gthis}:")
                    emit("        continue")
                emit(f"_c{k} += 1")
                return True
        return False

    # -- emission epilogue (innermost loop body) ---------------------------

    def head_row_expr(self, sub: dict[str, str]) -> str:
        """The head ID-row tuple expression for rows mode.  ``sub``
        overrides the expression for variables bound by a fused last
        step (direct row subscripts); everything else must already be
        assigned a local.  Constants bake as row-ID literals."""
        head = self.plan.head
        if head is None:
            raise _Unsupported("body-only plan has no head template")
        if not head.fast:
            raise _Unsupported("rows mode needs a fast head template")
        rids = []
        for kindh, payload in head.parts:
            if kindh == VAR:
                expr = sub.get(payload)
                if expr is None:
                    if payload not in self.assigned:
                        # head variable the body never binds: atoms mode
                        # handles it via per-row ground_atom; rows mode
                        # cannot (a U-drop would break count parity)
                        raise _Unsupported("head variable never bound")
                    expr = self.locals[payload]
                rids.append(expr)
            else:
                rids.append(str(row_id(payload)))
        comma = "," if len(rids) == 1 else ""
        return f"({', '.join(rids)}{comma})"

    def binding_dict_expr(self) -> str:
        """A dict literal of the full output binding: seed variables
        keep their original term values (from ``base``), body-bound
        variables materialize from the ID table."""
        entries = [
            f"{name!r}: base[{name!r}]" for name in sorted(self.plan.initially_bound)
        ]
        for name, loc in self.locals.items():
            if name in self.plan.initially_bound:
                continue
            if name in self.assigned:
                entries.append(f"{name!r}: _T[{loc}]")
        return "{" + ", ".join(entries) + "}"

    def emit_result(self) -> None:
        if self.mode == "rows":
            self.emit(f"_ap({self.head_row_expr({})})")
            return
        if self.mode == "bindings":
            self.emit(f"_ap(_CB(root={self.binding_dict_expr()}))")
            return
        head = self.plan.head
        if head is None:
            raise _Unsupported("body-only plan has no head template")
        parts = []
        rids = []
        fast = head.fast
        if fast:
            for i, (kindh, payload) in enumerate(head.parts):
                if kindh == VAR:
                    if payload in self.plan.initially_bound:
                        parts.append(f"base[{payload!r}]")
                        rids.append(self.bound_local(payload))
                    elif payload in self.assigned:
                        parts.append(f"_T[{self.locals[payload]}]")
                        rids.append(self.locals[payload])
                    else:
                        # head variable the body never binds: per-row
                        # ground_atom fallback, like the term template
                        fast = False
                        break
                else:
                    cname = f"_k{i}"
                    self.env[cname] = payload
                    parts.append(cname)
                    rids.append(str(row_id(payload)))
        if fast:
            comma = "," if len(parts) == 1 else ""
            self.emit(
                f"_a = _Atom({head.atom.pred!r}, ({', '.join(parts)}{comma}))"
            )
            self.emit("_a._ground = True")
            # the ID row rides along so Database.add skips re-encoding
            self.emit(f"_a._row = ({', '.join(rids)}{comma})")
            self.emit("_ap(_a)")
        else:
            self.env["_H"] = head.atom
            self.emit(f"_d = {self.binding_dict_expr()}")
            self.emit("_f = _ga(_H, _d)")
            self.emit("if _f is not None:")
            self.emit("    _ap(_f)")

    # -- assembly ----------------------------------------------------------

    def build(self) -> tuple[str, dict]:
        steps = self.plan.steps
        last = len(steps) - 1
        for k, step in enumerate(steps):
            self.pro.append(f"_c{k} = 0")
            if step.kind == "relation":
                # rows mode fuses the last relation step with emission
                # (whole-column comprehension) unless it needs the
                # general residual matcher
                fuse = (
                    self.vector
                    and k == last
                    and not (step.residuals and step.simple_residuals is None)
                )
                self.relation_step(k, step, fuse=fuse)
            elif step.kind == "negation":
                self.negation_step(k, step)
            elif step.kind == "builtin":
                self.builtin_step(k, step)
            else:
                raise _Unsupported(f"unknown step kind {step.kind!r}")
        if not self.fused:
            self.emit_result()
        lines = ["def _specialized(db, overrides, seed, base, negdb, metrics):"]
        lines.append("    out = []")
        lines.append("    _ap = out.append")
        if self.vector:
            lines.append("    _xt = out.extend")
        lines.extend("    " + line for line in self.pro)
        lines.append("    for _root in _ONE:")
        lines.extend(self.body)
        if steps:
            # per-step record_batch parity with the term batch executor:
            # step k is recorded iff the batch entering it was non-empty
            lines.append("    if metrics is not None:")
            lines.append("        _rb = metrics.record_batch")
            lines.append("        _rb(_c0)")
            indent = "        "
            for k in range(1, len(steps)):
                lines.append(f"{indent}if _c{k - 1}:")
                indent += "    "
                lines.append(f"{indent}_rb(_c{k})")
            if self.vector:
                # one vector dispatch produced this whole output batch
                lines.append("        metrics.record_kernel(len(out))")
        elif self.vector:
            lines.append("    if metrics is not None:")
            lines.append("        metrics.record_kernel(len(out))")
        lines.append("    return out")
        return "\n".join(lines) + "\n", self.env


def _generate(plan: RulePlan, mode: str) -> tuple[str, dict]:
    return _Codegen(plan, mode).build()


# -- the compiled-plan wrapper ----------------------------------------------


#: Process-wide source → code-object memo.  Plan caches live per
#: EvalContext, so the same rule re-specializes on every evaluation;
#: its generated source is deterministic (locals are numbered in
#: discovery order, constants are baked as row-ID literals, which are
#: stable for the life of the intern table), so ``compile`` — by far
#: the expensive part — runs once per distinct source per process.
#: After ``clear_intern_table`` the baked IDs change, so stale entries
#: mismatch by text and are simply never reused.
_CODE_CACHE: dict[tuple[str, str], object] = {}


class SpecializedPlan:
    """Lazy per-mode compilation cache hung off a :class:`RulePlan`.

    Each mode compiles at most once; an unsupported shape caches False
    so the term-level fallback is not re-attempted per call."""

    __slots__ = ("plan", "_fns", "_decode")

    def __init__(self, plan: RulePlan) -> None:
        self.plan = plan
        self._fns: dict[str, object] = {}
        self._decode = None

    def decoder(self):
        """The rows→args materializer for this plan's head: variable
        positions decode through the ID table, constant positions reuse
        the rule's evaluated constant verbatim (preserving the exact
        spelling atoms mode emits — equality-class IDs would surface
        whichever equal spelling interned first)."""
        fn = self._decode
        if fn is None:
            parts = self.plan.head.parts
            table = _ID_TABLE
            if all(kindh == VAR for kindh, _ in parts):

                def fn(row, _table=table):
                    return tuple([_table[rid] for rid in row])

            else:
                slots = tuple(
                    payload if kindh != VAR else None
                    for kindh, payload in parts
                )

                def fn(row, _table=table, _slots=slots):
                    return tuple(
                        _table[rid] if term is None else term
                        for rid, term in zip(row, _slots)
                    )

            self._decode = fn
        return fn

    def _function(self, mode: str):
        fn = self._fns.get(mode)
        if fn is None:
            plan = self.plan
            try:
                source, env = _generate(plan, mode)
                label = plan.head.atom.pred if plan.head is not None else "body"
                key = (f"<specialized:{label}:{mode}>", source)
                code = _CODE_CACHE.get(key)
                if code is None:
                    code = compile(source, key[0], "exec")
                    _CODE_CACHE[key] = code
                exec(code, env)
                fn = env["_specialized"]
            except _Unsupported:
                fn = False
            self._fns[mode] = fn
        return fn

    def run(
        self,
        mode: str,
        db: Database,
        binding: Mapping[str, Term] | None,
        overrides: SourceOverrides | None,
        negation_db: Database | None,
        metrics,
    ):
        """Run one mode, or :data:`FALLBACK` (always before consuming
        any override source, so the term lane sees fresh iterators)."""
        plan = self.plan
        base = {} if binding is None else materialize(binding)
        if frozenset(base) != plan.initially_bound:
            return FALLBACK
        fn = self._function(mode)
        if fn is False:
            return FALLBACK
        try:
            seed = {name: row_id(value) for name, value in base.items()}
        except (TypeError, AttributeError):
            return FALLBACK
        negdb = db if negation_db is None else negation_db
        return fn(db, overrides, seed, base, negdb, metrics)


def specialized_plan(plan: RulePlan) -> SpecializedPlan:
    """The plan's specialization cache, created on first use."""
    spec = plan._spec
    if spec is None:
        spec = SpecializedPlan(plan)
        plan._spec = spec
    return spec
