"""Tuple-at-a-time executor: the original recursive enumeration.

Kept as ``executor="tuple"`` for differential testing against the batch
executor, mirroring how the layer scheduler survives alongside the SCC
scheduler.  One binding flows through the whole step sequence before
the next one starts; every step shape delegates to the shared
per-binding runtime helpers.
"""

from __future__ import annotations

from typing import Iterator

from repro.engine.binding import ChainBinding, as_chain
from repro.engine.database import Database
from repro.engine.exec.runtime import builtin_step, negation_step, relation_step
from repro.engine.plan import RulePlan, SourceOverrides


def run_plan_tuple(
    db: Database,
    plan: RulePlan,
    binding: dict | ChainBinding | None = None,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
) -> Iterator[ChainBinding]:
    """Enumerate body bindings one at a time (depth-first).

    Yields copy-on-write :class:`ChainBinding` views; callers that store
    results should ``materialize()`` them.
    """
    steps = plan.steps
    total = len(steps)
    negative_source = negation_db if negation_db is not None else db

    def recurse(index: int, current: ChainBinding) -> Iterator[ChainBinding]:
        if index == total:
            yield current
            return
        step = steps[index]
        kind = step.kind
        if kind == "relation":
            source = overrides.get(step.index) if overrides else None
            produced = relation_step(db, step, current, source)
        elif kind == "builtin":
            produced = builtin_step(step, current)
        else:
            produced = negation_step(negative_source, step, current)
        for extended in produced:
            yield from recurse(index + 1, extended)

    yield from recurse(0, as_chain(binding))
