"""Executor package: one body-evaluation entry point for the engine.

Every consumer — the fixpoint loops, grouping, magic evaluation, the
incremental model, explanation, and the semantics reference modules —
enumerates rule-body bindings through :func:`enumerate_bindings` (or
its fact-producing wrapper :func:`derive_facts`).  Three lanes sit
behind it:

* **specialized** (default) — each plan compiles once into a closure
  of nested loops over ID rows (:mod:`repro.engine.exec.specialize`);
  shapes or call conditions it cannot prove it handles fall through to
* ``"batch"`` — the set-at-a-time term-level operator pipeline in
  :mod:`repro.engine.exec.batch`;
* ``"tuple"`` — the original one-binding-at-a-time recursion in
  :mod:`repro.engine.exec.tuplewise`, kept for differential testing.

The process-wide executor default comes from the ``REPRO_EXECUTOR``
environment variable (CI runs the engine suite under
``REPRO_EXECUTOR=tuple`` so the compatibility path cannot rot) and can
be changed with :func:`set_default_executor` (the benchmark harness
``--executor`` knob).  Plan specialization sits *on top of* the batch
executor and is toggled independently by ``REPRO_SPECIALIZE``
(``on``/``off``; CI runs a leg with ``REPRO_SPECIALIZE=off`` so the
term-level batch lane cannot rot either) or
:func:`set_specialization`.
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.engine.binding import ChainBinding
from repro.engine.database import Database
from repro.engine.exec.batch import group_bindings, run_plan_batch
from repro.engine.exec.specialize import FALLBACK, specialized_plan
from repro.engine.exec.tuplewise import run_plan_tuple
from repro.engine.plan import RulePlan, SourceOverrides
from repro.program.rule import Atom

EXECUTORS = ("batch", "tuple")

SPECIALIZE_MODES = ("on", "off")


def _validated(name: str) -> str:
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTORS}"
        )
    return name


def _validated_specialize(name: str) -> str:
    if name not in SPECIALIZE_MODES:
        raise ValueError(
            f"unknown specialization mode {name!r}; "
            f"expected one of {SPECIALIZE_MODES}"
        )
    return name


_default_executor = _validated(os.environ.get("REPRO_EXECUTOR", "batch"))
_specialize = _validated_specialize(os.environ.get("REPRO_SPECIALIZE", "on"))


def default_executor() -> str:
    """The process-wide executor used when none is requested."""
    return _default_executor


def set_default_executor(name: str) -> None:
    """Change the process-wide default (harness ``--executor`` knob)."""
    global _default_executor
    _default_executor = _validated(name)


def specialization() -> str:
    """Whether compiled-plan specialization is ``"on"`` or ``"off"``."""
    return _specialize


def set_specialization(name: str) -> None:
    """Toggle compiled-plan specialization (harness ``--specialize``)."""
    global _specialize
    _specialize = _validated_specialize(name)


def enumerate_bindings(
    db: Database,
    plan: RulePlan,
    binding: dict | ChainBinding | None = None,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
    metrics=None,
) -> Iterable[ChainBinding]:
    """All bindings satisfying ``plan``'s body, via the chosen executor.

    Returns an iterable of copy-on-write chain bindings: a realized
    list from the batch and specialized executors, a lazy iterator from
    the tuple one.
    """
    name = _default_executor if executor is None else _validated(executor)
    if name == "tuple":
        return run_plan_tuple(
            db, plan, binding=binding, overrides=overrides,
            negation_db=negation_db,
        )
    if _specialize == "on":
        result = specialized_plan(plan).run(
            "bindings", db, binding, overrides, negation_db, metrics
        )
        if result is not FALLBACK:
            return result
    return run_plan_batch(
        db, plan, binding=binding, overrides=overrides,
        negation_db=negation_db, metrics=metrics,
    )


def derive_facts(
    db: Database,
    plan: RulePlan,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
    metrics=None,
) -> list[Atom]:
    """Head facts derived by one rule application (ground heads only;
    bindings that take the head outside U are dropped)."""
    name = _default_executor if executor is None else _validated(executor)
    if name == "batch" and _specialize == "on" and plan.head is not None:
        # the specialized atoms mode inlines head instantiation too:
        # facts come straight off the ID rows, no intermediate binding
        result = specialized_plan(plan).run(
            "atoms", db, None, overrides, negation_db, metrics
        )
        if result is not FALLBACK:
            return result
    instantiate = plan.instantiate_head
    facts: list[Atom] = []
    for binding in enumerate_bindings(
        db, plan, overrides=overrides, negation_db=negation_db,
        executor=name, metrics=metrics,
    ):
        fact = instantiate(binding)
        if fact is not None:
            facts.append(fact)
    return facts


__all__ = [
    "EXECUTORS",
    "SPECIALIZE_MODES",
    "default_executor",
    "set_default_executor",
    "specialization",
    "set_specialization",
    "enumerate_bindings",
    "derive_facts",
    "group_bindings",
    "run_plan_batch",
    "run_plan_tuple",
]
