"""Executor package: one body-evaluation entry point for the engine.

Every consumer — the fixpoint loops, grouping, magic evaluation, the
incremental model, explanation, and the semantics reference modules —
enumerates rule-body bindings through :func:`enumerate_bindings` (or
its fact-producing wrapper :func:`derive_facts`).  Two executors sit
behind it:

* ``"batch"`` (default) — the set-at-a-time operator pipeline in
  :mod:`repro.engine.exec.batch`;
* ``"tuple"`` — the original one-binding-at-a-time recursion in
  :mod:`repro.engine.exec.tuplewise`, kept for differential testing.

The process-wide default comes from the ``REPRO_EXECUTOR`` environment
variable (CI runs the engine suite under ``REPRO_EXECUTOR=tuple`` so
the compatibility path cannot rot) and can be changed with
:func:`set_default_executor` (the benchmark harness ``--executor``
knob).
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.engine.binding import ChainBinding
from repro.engine.database import Database
from repro.engine.exec.batch import group_bindings, run_plan_batch
from repro.engine.exec.tuplewise import run_plan_tuple
from repro.engine.plan import RulePlan, SourceOverrides
from repro.program.rule import Atom

EXECUTORS = ("batch", "tuple")


def _validated(name: str) -> str:
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTORS}"
        )
    return name


_default_executor = _validated(os.environ.get("REPRO_EXECUTOR", "batch"))


def default_executor() -> str:
    """The process-wide executor used when none is requested."""
    return _default_executor


def set_default_executor(name: str) -> None:
    """Change the process-wide default (harness ``--executor`` knob)."""
    global _default_executor
    _default_executor = _validated(name)


def enumerate_bindings(
    db: Database,
    plan: RulePlan,
    binding: dict | ChainBinding | None = None,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
    metrics=None,
) -> Iterable[ChainBinding]:
    """All bindings satisfying ``plan``'s body, via the chosen executor.

    Returns an iterable of copy-on-write chain bindings: a realized
    list from the batch executor, a lazy iterator from the tuple one.
    """
    name = _default_executor if executor is None else _validated(executor)
    if name == "tuple":
        return run_plan_tuple(
            db, plan, binding=binding, overrides=overrides,
            negation_db=negation_db,
        )
    return run_plan_batch(
        db, plan, binding=binding, overrides=overrides,
        negation_db=negation_db, metrics=metrics,
    )


def derive_facts(
    db: Database,
    plan: RulePlan,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
    metrics=None,
) -> list[Atom]:
    """Head facts derived by one rule application (ground heads only;
    bindings that take the head outside U are dropped)."""
    instantiate = plan.instantiate_head
    facts: list[Atom] = []
    for binding in enumerate_bindings(
        db, plan, overrides=overrides, negation_db=negation_db,
        executor=executor, metrics=metrics,
    ):
        fact = instantiate(binding)
        if fact is not None:
            facts.append(fact)
    return facts


__all__ = [
    "EXECUTORS",
    "default_executor",
    "set_default_executor",
    "enumerate_bindings",
    "derive_facts",
    "group_bindings",
    "run_plan_batch",
    "run_plan_tuple",
]
