"""Executor package: one body-evaluation entry point for the engine.

Every consumer — the fixpoint loops, grouping, magic evaluation, the
incremental model, explanation, and the semantics reference modules —
enumerates rule-body bindings through :func:`enumerate_bindings` (or
its fact-producing wrapper :func:`derive_facts`).  Three lanes sit
behind it:

* **specialized** (default) — each plan compiles once into a closure
  of nested loops over ID rows (:mod:`repro.engine.exec.specialize`);
  shapes or call conditions it cannot prove it handles fall through to
* ``"batch"`` — the set-at-a-time term-level operator pipeline in
  :mod:`repro.engine.exec.batch`;
* ``"tuple"`` — the original one-binding-at-a-time recursion in
  :mod:`repro.engine.exec.tuplewise`, kept for differential testing.

The process-wide executor default comes from the ``REPRO_EXECUTOR``
environment variable (CI runs the engine suite under
``REPRO_EXECUTOR=tuple`` so the compatibility path cannot rot) and can
be changed with :func:`set_default_executor` (the benchmark harness
``--executor`` knob).  Plan specialization sits *on top of* the batch
executor and is toggled independently by ``REPRO_SPECIALIZE``
(``on``/``off``; CI runs a leg with ``REPRO_SPECIALIZE=off`` so the
term-level batch lane cannot rot either) or
:func:`set_specialization`.

A third knob, ``REPRO_VECTOR`` (``on``/``off``, default ``on``;
:func:`set_vectorization`), toggles the vector-kernel layer
(:mod:`repro.engine.exec.kernels`) on top of both lanes: with it on,
the fixpoint derives whole ID-row batches through
:func:`derive_rows` (specialized ``"rows"`` mode + bulk
``Database.add_rows``) and the term-level batch operators take their
bulk-probe paths; with it off, every call goes through exactly the
per-row PR 6 code (CI runs a ``REPRO_VECTOR=off`` differential leg).
"""

from __future__ import annotations

import os
from typing import Iterable

from repro.engine.binding import ChainBinding
from repro.engine.database import Database
from repro.engine.exec import kernels
from repro.engine.exec.batch import group_bindings, run_plan_batch
from repro.engine.exec.kernels import RowBatch
from repro.engine.exec.specialize import FALLBACK, specialized_plan
from repro.engine.exec.tuplewise import run_plan_tuple
from repro.engine.plan import RulePlan, SourceOverrides
from repro.program.rule import Atom

EXECUTORS = ("batch", "tuple")

SPECIALIZE_MODES = ("on", "off")

VECTOR_MODES = ("on", "off")


def _validated(name: str) -> str:
    if name not in EXECUTORS:
        raise ValueError(
            f"unknown executor {name!r}; expected one of {EXECUTORS}"
        )
    return name


def _validated_specialize(name: str) -> str:
    if name not in SPECIALIZE_MODES:
        raise ValueError(
            f"unknown specialization mode {name!r}; "
            f"expected one of {SPECIALIZE_MODES}"
        )
    return name


def _validated_vector(name: str) -> str:
    if name not in VECTOR_MODES:
        raise ValueError(
            f"unknown vectorization mode {name!r}; "
            f"expected one of {VECTOR_MODES}"
        )
    return name


_default_executor = _validated(os.environ.get("REPRO_EXECUTOR", "batch"))
_specialize = _validated_specialize(os.environ.get("REPRO_SPECIALIZE", "on"))
kernels.set_enabled(
    _validated_vector(os.environ.get("REPRO_VECTOR", "on")) == "on"
)


def default_executor() -> str:
    """The process-wide executor used when none is requested."""
    return _default_executor


def set_default_executor(name: str) -> None:
    """Change the process-wide default (harness ``--executor`` knob)."""
    global _default_executor
    _default_executor = _validated(name)


def specialization() -> str:
    """Whether compiled-plan specialization is ``"on"`` or ``"off"``."""
    return _specialize


def set_specialization(name: str) -> None:
    """Toggle compiled-plan specialization (harness ``--specialize``)."""
    global _specialize
    _specialize = _validated_specialize(name)


def vectorization() -> str:
    """Whether the vector-kernel layer is ``"on"`` or ``"off"``."""
    return "on" if kernels.enabled() else "off"


def set_vectorization(name: str) -> None:
    """Toggle the vector-kernel layer (harness ``--vector`` knob)."""
    kernels.set_enabled(_validated_vector(name) == "on")


class DerivedRows:
    """One rule application's derived head facts, still in ID space.

    ``rows`` is the emitted multiset of head ID rows (pre-dedup, so
    ``len(rows)`` matches the facts atoms mode would have returned);
    ``decode`` materializes one row to its argument tuple — the
    fixpoint hands both straight to ``Database.add_rows`` so only
    genuinely new facts ever decode."""

    __slots__ = ("pred", "arity", "rows", "decode")

    def __init__(self, pred: str, arity: int, rows: list, decode) -> None:
        self.pred = pred
        self.arity = arity
        self.rows = rows
        self.decode = decode


def as_row_batch(pred: str, arity: int, atoms) -> RowBatch:
    """Wrap ground atoms as an override-ready :class:`RowBatch`.

    Override sources flow into every executor lane carrying both the ID
    rows (the specialized lane reads ``batch.rows`` directly — zero
    re-encoding) and the verbatim argument tuples (the term-lane
    executors iterate them).  Atoms that already carry their ID row
    (``_row``, attached by the fixpoint and the maintenance engine)
    contribute it as-is; others encode once here.  This is the shape
    the shard exchange re-partitions and the maintenance boundary
    dispatches, instead of re-encoding to atoms per stage.
    """
    from repro.engine.relation import encode_args

    batch = RowBatch(pred, arity)
    rows = batch.rows
    args_lane = batch.args
    for atom in atoms:
        row = getattr(atom, "_row", None)
        if row is None:
            row = encode_args(atom.args)
        rows.append(row)
        args_lane.append(atom.args)
    return batch


def enumerate_bindings(
    db: Database,
    plan: RulePlan,
    binding: dict | ChainBinding | None = None,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
    metrics=None,
) -> Iterable[ChainBinding]:
    """All bindings satisfying ``plan``'s body, via the chosen executor.

    Returns an iterable of copy-on-write chain bindings: a realized
    list from the batch and specialized executors, a lazy iterator from
    the tuple one.
    """
    name = _default_executor if executor is None else _validated(executor)
    if name == "tuple":
        return run_plan_tuple(
            db, plan, binding=binding, overrides=overrides,
            negation_db=negation_db,
        )
    if _specialize == "on":
        result = specialized_plan(plan).run(
            "bindings", db, binding, overrides, negation_db, metrics
        )
        if result is not FALLBACK:
            return result
    return run_plan_batch(
        db, plan, binding=binding, overrides=overrides,
        negation_db=negation_db, metrics=metrics,
    )


def derive_facts(
    db: Database,
    plan: RulePlan,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
    metrics=None,
) -> list[Atom]:
    """Head facts derived by one rule application (ground heads only;
    bindings that take the head outside U are dropped)."""
    name = _default_executor if executor is None else _validated(executor)
    if name == "batch" and _specialize == "on" and plan.head is not None:
        # the specialized atoms mode inlines head instantiation too:
        # facts come straight off the ID rows, no intermediate binding
        result = specialized_plan(plan).run(
            "atoms", db, None, overrides, negation_db, metrics
        )
        if result is not FALLBACK:
            return result
    instantiate = plan.instantiate_head
    facts: list[Atom] = []
    for binding in enumerate_bindings(
        db, plan, overrides=overrides, negation_db=negation_db,
        executor=name, metrics=metrics,
    ):
        fact = instantiate(binding)
        if fact is not None:
            facts.append(fact)
    return facts


def derive_rows(
    db: Database,
    plan: RulePlan,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
    metrics=None,
) -> DerivedRows | None:
    """The vectorized shape of :func:`derive_facts`: head facts as raw
    ID rows plus a decoder, or None when this call must take the
    per-fact path (vectorization off, non-batch executor, or a plan
    shape the rows mode does not cover).

    None is only ever returned *before* any override source has been
    consumed, so the caller can fall through to :func:`derive_facts`
    with the same arguments.
    """
    name = _default_executor if executor is None else _validated(executor)
    if (
        name != "batch"
        or _specialize != "on"
        or not kernels.enabled()
        or plan.head is None
    ):
        return None
    result = specialized_plan(plan).run(
        "rows", db, None, overrides, negation_db, metrics
    )
    if result is FALLBACK:
        return None
    head = plan.head.atom
    return DerivedRows(
        head.pred, len(head.args), result, specialized_plan(plan).decoder()
    )


__all__ = [
    "EXECUTORS",
    "SPECIALIZE_MODES",
    "VECTOR_MODES",
    "DerivedRows",
    "RowBatch",
    "as_row_batch",
    "default_executor",
    "set_default_executor",
    "specialization",
    "set_specialization",
    "vectorization",
    "set_vectorization",
    "enumerate_bindings",
    "derive_facts",
    "derive_rows",
    "group_bindings",
    "run_plan_batch",
    "run_plan_tuple",
]
