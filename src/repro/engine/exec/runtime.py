"""Shared per-binding step interpretation for both executors.

The compile side (:mod:`repro.engine.plan`) reduces every body literal
to descriptor tuples; this module owns their runtime meaning for ONE
binding at a time: probe-key evaluation, residual matching, builtin
argument materialization, and negation argument evaluation.  The
tuple-at-a-time executor (:mod:`repro.engine.exec.tuplewise`) composes
these into a recursive enumeration; the batch executor
(:mod:`repro.engine.exec.batch`) reuses them for the shapes that are
inherently per-binding (negated built-ins, general residual matching)
and replaces the rest with set-at-a-time operators.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.engine.binding import ChainBinding
from repro.engine.builtins import solve_builtin
from repro.engine.database import Database
from repro.engine.match import match_term_chain
from repro.engine.plan import ARITH, BIND, CONST, MATCH, VAR, LiteralStep
from repro.errors import EvaluationError, NotInUniverseError
from repro.terms.term import (
    Const,
    Term,
    evaluate_ground,
    fold_arithmetic_values,
    intern_const,
)


def probe_key(
    probes: tuple, binding: ChainBinding, lenient: bool
) -> tuple[Term, ...] | None:
    """Evaluate the probe descriptors to a key tuple.

    ``lenient`` controls failure semantics for residual terms, matching
    the seed: probing the database caught only :class:`EvaluationError`
    (``NotInUniverseError`` propagated), while matching override tuples
    went through ``match_term`` which swallowed both.
    """
    parts: list[Term] = []
    for _pos, kind, payload in probes:
        if kind == CONST:
            parts.append(payload)
        elif kind == VAR:
            parts.append(binding[payload])
        else:
            try:
                parts.append(evaluate_ground(payload.substitute(binding)))
            except EvaluationError:
                return None
            except NotInUniverseError:
                if lenient:
                    return None
                raise
    return tuple(parts)


def fold_arith(functor: str, parts: tuple, binding) -> Const | None:
    """Evaluate a precompiled arithmetic argument, or None to fall back.

    Falls back (to substitute-then-evaluate semantics) when an operand
    is unbound, non-numeric, or the fold itself fails (e.g. division by
    zero) — the general path then reproduces the exact builtin
    behavior for those cases.
    """
    values = []
    for kind, payload in parts:
        if kind == VAR:
            bound = binding.get(payload)
            if (
                bound is None
                or type(bound) is not Const
                or not isinstance(bound.value, (int, float))
            ):
                return None
            values.append(bound.value)
        else:
            values.append(payload)
    try:
        return intern_const(fold_arithmetic_values(functor, values))
    except EvaluationError:
        return None


def match_residuals(
    residuals: tuple,
    args: tuple[Term, ...],
    binding: ChainBinding,
    substituted: dict[int, Term] | None,
) -> Iterator[ChainBinding]:
    """Extend ``binding`` over the non-probe positions of one tuple."""
    if not residuals:
        yield binding
        return
    pos, kind, payload = residuals[0]
    rest = residuals[1:]
    if kind == BIND:
        bound = binding.get(payload)
        if bound is None:
            yield from match_residuals(
                rest, args, binding.bind(payload, args[pos]), substituted
            )
        elif bound == args[pos]:
            yield from match_residuals(rest, args, binding, substituted)
        return
    term, needs_substitute = payload
    if needs_substitute and substituted is not None:
        term = substituted[pos]
    for ext in match_term_chain(term, args[pos], binding):
        yield from match_residuals(rest, args, ext, substituted)


def substituted_residuals(
    step: LiteralStep, binding: ChainBinding
) -> dict[int, Term] | None:
    """Mixed residual terms substituted once per outer binding, as the
    seed did by substituting the whole atom before matching."""
    substituted: dict[int, Term] | None = None
    for pos, kind, payload in step.residuals:
        if kind == MATCH and payload[1]:
            if substituted is None:
                substituted = {}
            substituted[pos] = payload[0].substitute(binding)
    return substituted


def builtin_call_args(
    step: LiteralStep, binding: ChainBinding
) -> tuple[Term, ...]:
    """Materialize a builtin literal's arguments under ``binding``."""
    args = []
    for kind, payload, term in step.builtin_args:
        if kind == VAR:
            value = binding.get(payload)
            args.append(term if value is None else value)
        elif kind == CONST:
            args.append(payload)
        elif kind == ARITH:
            value = fold_arith(payload[0], payload[1], binding)
            args.append(term.substitute(binding) if value is None else value)
        else:
            args.append(term.substitute(binding))
    return tuple(args)


def builtin_step(
    step: LiteralStep, binding: ChainBinding
) -> Iterable[ChainBinding]:
    """Bindings produced by one builtin literal under ``binding``."""
    args = builtin_call_args(step, binding)
    handler = step.builtin_handler
    if handler is not None:
        return handler(args, binding)
    # unknown predicates fall back to solve_builtin, which raises the
    # same EvaluationError a direct call would.
    return solve_builtin(step.literal.atom.pred, args, binding)


def negation_args(
    step: LiteralStep, binding: ChainBinding
) -> tuple[Term, ...] | None:
    """The ground argument tuple of a negated stored literal, or None
    when an argument is unbound or falls outside U (both: not
    applicable, the binding fails)."""
    args: list[Term] = []
    for kind, payload in step.neg_args:
        if kind == CONST:
            args.append(payload)
        elif kind == VAR:
            value = binding.get(payload)
            if value is None:
                return None
            args.append(value)
        else:
            try:
                args.append(evaluate_ground(payload.substitute(binding)))
            except (NotInUniverseError, EvaluationError):
                return None
    return tuple(args)


def negated_builtin_holds(step: LiteralStep, binding: ChainBinding) -> bool:
    """Closed test: does the negated built-in FAIL under ``binding``?"""
    substituted = step.literal.atom.substitute(binding)
    return not any(
        True for _ in solve_builtin(substituted.pred, substituted.args, binding)
    )


def relation_step(
    db: Database,
    step: LiteralStep,
    binding: ChainBinding,
    source: Iterable[tuple[Term, ...]] | None,
) -> Iterator[ChainBinding]:
    """One relation step for one binding (the tuple-at-a-time shape)."""
    if source is None:
        key = probe_key(step.probes, binding, lenient=False)
        if key is None:
            return
        tuples = db.lookup(step.literal.atom.pred, step.probe_positions, key)
        if step.fully_bound:
            for _args in tuples:
                yield binding
            return
        check_probes = False
    else:
        tuples = source
        key = probe_key(step.probes, binding, lenient=True)
        if key is None:
            return
        check_probes = bool(step.probes)
    simple = step.simple_residuals
    if simple is not None and not check_probes:
        # all residuals are fresh variables: bind them directly with
        # one chain node each, skipping the general recursive matcher.
        for args in tuples:
            ext = binding
            for pos, name in simple:
                bound = ext.get(name)
                if bound is None:
                    ext = ChainBinding(ext, name, args[pos])
                elif bound != args[pos]:
                    break
            else:
                yield ext
        return
    substituted = substituted_residuals(step, binding)
    for args in tuples:
        if check_probes:
            ok = True
            for (pos, _kind, _payload), part in zip(step.probes, key):
                if args[pos] != part:
                    ok = False
                    break
            if not ok:
                continue
            if not step.residuals:
                if len(args) == len(step.literal.atom.args):
                    yield binding
                continue
        yield from match_residuals(step.residuals, args, binding, substituted)


def negation_step(
    negation_db: Database, step: LiteralStep, binding: ChainBinding
) -> Iterator[ChainBinding]:
    """One negation step for one binding (the tuple-at-a-time shape)."""
    if step.neg_args is None:
        if negated_builtin_holds(step, binding):
            yield binding
        return
    args = negation_args(step, binding)
    if args is None:
        return
    if not negation_db.contains_tuple(step.literal.atom.pred, args):
        yield binding
