"""Tabled top-down evaluation (QSQ/OLDT-style) for admissible programs.

Section 1 contrasts LDL with PROLOG's programmer-controlled top-down
execution; Section 6's magic sets make bottom-up evaluation simulate
exactly the goal-directed behaviour a top-down engine gets for free.
This module provides that missing baseline: a memoizing (tabling)
top-down evaluator, used to cross-validate the magic compiler and as a
comparison point in the benchmarks (experiment E12).

Design:

* a *subgoal* is ``(pred, key)`` where ``key`` fixes the ground
  arguments of the call and leaves the rest free (``None``);
* each subgoal owns a :class:`Table` of answers; recursive calls read
  partial tables and an outer driver re-runs the evaluation until no
  table grows (a simple, obviously-sound completeness rule instead of
  full OLDT completion detection);
* negation and grouping follow the stratified discipline: their
  sub-derivations live in strictly lower layers, so by the time a
  negative literal or a grouping body is needed, one recursive
  ``solve`` fully completes it (checked, not assumed);
* EDB facts are read straight from an indexed
  :class:`~repro.engine.database.Database`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.engine.builtins import solve_builtin
from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.match import Binding, ground_atom, match_atom, match_term
from repro.errors import EvaluationError, NotInUniverseError
from repro.observe import EngineHooks
from repro.names import is_builtin_predicate
from repro.program.rule import Atom, Literal, Program, Query, Rule
from repro.program.stratify import stratify
from repro.program.wellformed import check_program
from repro.terms.term import GroupTerm, SetVal, Term, Var, evaluate_ground

SubgoalKey = tuple  # tuple[Term | None, ...]


@dataclass
class Table:
    """Memoized answers of one subgoal."""

    answers: set[tuple[Term, ...]] = field(default_factory=set)
    complete: bool = False


@dataclass
class TopDownStats:
    """Work counters: table count, answers, and rule applications."""

    subgoals: int = 0
    answers: int = 0
    rule_applications: int = 0
    driver_rounds: int = 0


class TopDownEvaluator:
    """Goal-directed evaluation of an admissible LDL1 program."""

    def __init__(
        self,
        program: Program,
        edb: Iterable[Atom] = (),
        check: bool = True,
        hooks: EngineHooks | None = None,
    ) -> None:
        if check:
            check_program(program)
        self.program = program
        self.layering = stratify(program)  # also verifies admissibility
        self._idb = program.idb_predicates()
        self._db = Database(edb)
        # body orders are planned per (rule, bound head vars) and cached
        # for the evaluator's lifetime — the driver re-runs rules many
        # times before tables quiesce.
        self._context = EvalContext(self._db, hooks=hooks)
        for rule in program.facts():
            args = tuple(evaluate_ground(a) for a in rule.head.args)
            self._db.add(Atom(rule.head.pred, args))
        self._tables: dict[tuple[str, SubgoalKey], Table] = {}
        self._active: set[tuple[str, SubgoalKey]] = set()
        self._grew = False
        # grouping-rule bodies must see *complete* sub-derivations,
        # otherwise a partial grouped set could be recorded as an answer.
        self._require_complete = False
        self.stats = TopDownStats()

    # -- public API -----------------------------------------------------

    def query(self, query: Query) -> list[Atom]:
        """All facts matching the query atom, goal-directed."""
        key = self._call_key(query.atom, {})
        self.solve(query.atom.pred, key)
        out = []
        for args in self._table(query.atom.pred, key).answers:
            for _ in match_atom(query.atom, args, {}):
                out.append(Atom(query.atom.pred, args))
                break
        return sorted(set(out), key=lambda a: a.sort_key())

    def answers(self, query: Query) -> list[Binding]:
        """Query-variable bindings, deterministic order."""
        bindings = []
        seen = set()
        for fact in self.query(query):
            for binding in match_atom(query.atom, fact.args, {}):
                frozen = frozenset(binding.items())
                if frozen not in seen:
                    seen.add(frozen)
                    bindings.append(binding)
        bindings.sort(
            key=lambda b: tuple(
                (name, value.sort_key()) for name, value in sorted(b.items())
            )
        )
        return bindings

    # -- tabling machinery -------------------------------------------------

    def _table(self, pred: str, key: SubgoalKey) -> Table:
        table = self._tables.get((pred, key))
        if table is None:
            table = Table()
            self._tables[(pred, key)] = table
            self.stats.subgoals += 1
        return table

    def solve(self, pred: str, key: SubgoalKey) -> Table:
        """Ensure the subgoal's table is complete; outer driver loop.

        Subgoal chains recurse proportionally to derivation depth
        (e.g. the length of a chain being closed), so the recursion
        limit is raised for the duration, scaled by the database size.
        """
        from repro.util import deep_recursion

        table = self._table(pred, key)
        if table.complete:
            return table
        estimated = 80 * (len(self._db) + len(self.program) * 10) + 10_000
        with deep_recursion(estimated):
            while True:
                self.stats.driver_rounds += 1
                self._grew = False
                self._expand(pred, key)
                if not self._grew:
                    break
        # global quiescence: every table created below is at fixpoint.
        for subgoal_table in self._tables.values():
            subgoal_table.complete = True
        return table

    def _expand(self, pred: str, key: SubgoalKey) -> None:
        """One evaluation pass over a subgoal (re-entrant, memoized)."""
        subgoal = (pred, key)
        if subgoal in self._active:
            return  # recursive hit: caller reads the partial table
        table = self._table(pred, key)
        if table.complete:
            return
        self._active.add(subgoal)
        try:
            for rule in self.program.rules_for(pred):
                if rule.is_fact():
                    continue  # installed into the EDB store already
                if rule.is_grouping():
                    self._apply_grouping_rule(rule, key, table)
                else:
                    self._apply_rule(rule, key, table)
        finally:
            self._active.discard(subgoal)

    def _record(self, table: Table, args: tuple[Term, ...]) -> None:
        if args not in table.answers:
            table.answers.add(args)
            self.stats.answers += 1
            self._grew = True

    # -- rule application -------------------------------------------------

    def _head_bindings(self, rule: Rule, key: SubgoalKey) -> Iterator[Binding]:
        """Bindings unifying the rule head with the subgoal's bound args."""

        def recurse(i: int, binding: Binding) -> Iterator[Binding]:
            if i == len(key):
                yield binding
                return
            bound = key[i]
            if bound is None:
                yield from recurse(i + 1, binding)
                return
            for extended in match_term(rule.head.args[i], bound, binding):
                yield from recurse(i + 1, extended)

        yield from recurse(0, {})

    def _apply_rule(self, rule: Rule, key: SubgoalKey, table: Table) -> None:
        for head_binding in self._head_bindings(rule, key):
            plan = self._context.plan_for(
                rule, initially_bound=frozenset(head_binding)
            ).order
            for binding in self._body_bindings(rule.body, plan, head_binding):
                self.stats.rule_applications += 1
                fact = ground_atom(rule.head, binding)
                if fact is not None:
                    self._record(table, fact.args)

    def _apply_grouping_rule(
        self, rule: Rule, key: SubgoalKey, table: Table
    ) -> None:
        """Grouping per Section 3.2, restricted to the subgoal's key.

        The grouped argument can never be restricted (footnote 6), so
        the equivalence classes are formed over all body solutions
        compatible with the *other* bound head arguments.
        """
        positions = rule.head.group_positions()
        group_position = positions[0]
        inner = rule.head.args[group_position].inner
        if not isinstance(inner, Var):
            raise EvaluationError("compile LDL1.5 heads before evaluation")
        group_var = inner.name
        relaxed_key = tuple(
            None if i == group_position else bound for i, bound in enumerate(key)
        )
        other_terms = [
            (i, arg)
            for i, arg in enumerate(rule.head.args)
            if i != group_position
        ]
        groups: dict[tuple[Term, ...], set[Term]] = {}
        previous_mode = self._require_complete
        self._require_complete = True
        try:
            solutions: list[Binding] = []
            for head_binding in self._head_bindings(rule, relaxed_key):
                plan = self._context.plan_for(
                    rule, initially_bound=frozenset(head_binding)
                ).order
                solutions.extend(
                    self._body_bindings(rule.body, plan, head_binding)
                )
        finally:
            self._require_complete = previous_mode
        for binding in solutions:
            self.stats.rule_applications += 1
            try:
                group_key = tuple(
                    evaluate_ground(arg.substitute(binding))
                    for _, arg in other_terms
                )
                value = evaluate_ground(binding[group_var])
            except (NotInUniverseError, EvaluationError):
                continue
            groups.setdefault(group_key, set()).add(value)
        for group_key, values in groups.items():
            args: list[Term] = [None] * len(rule.head.args)  # type: ignore[list-item]
            for (i, _), value in zip(other_terms, group_key):
                args[i] = value
            args[group_position] = SetVal(values)
            fact_args = tuple(args)
            bound_group = key[group_position]
            if bound_group is not None and fact_args[group_position] != bound_group:
                continue
            self._record(table, fact_args)

    # -- body evaluation ---------------------------------------------------

    def _call_key(self, atom: Atom, binding: Binding) -> SubgoalKey:
        key: list[Term | None] = []
        for arg in atom.args:
            substituted = arg.substitute(binding)
            if substituted.is_ground() and not isinstance(substituted, GroupTerm):
                try:
                    key.append(evaluate_ground(substituted))
                except (NotInUniverseError, EvaluationError):
                    key.append(None)
            else:
                key.append(None)
        return tuple(key)

    def _body_bindings(
        self, body: tuple[Literal, ...], plan: tuple[int, ...], binding: Binding
    ) -> list[Binding]:
        # set-at-a-time, like the bottom-up batch executor: each literal
        # extends the whole batch before the next literal runs.  Eager
        # table reads are safe because the tabling driver iterates to
        # fixpoint — any pass-ordering difference is absorbed by _grew.
        batch: list[Binding] = [binding]
        for index in plan:
            lit = body[index]
            next_batch: list[Binding] = []
            for current in batch:
                next_batch.extend(self._solve_literal(lit, current))
            batch = next_batch
            if not batch:
                break
        return batch

    def _solve_literal(self, lit: Literal, binding: Binding) -> Iterator[Binding]:
        pred = lit.atom.pred
        if lit.negative:
            yield from self._solve_negative(lit, binding)
            return
        if is_builtin_predicate(pred):
            substituted = lit.atom.substitute(binding)
            yield from solve_builtin(substituted.pred, substituted.args, binding)
            return
        if pred in self._idb:
            key = self._call_key(lit.atom, binding)
            table = self._table(pred, key)
            if (
                self._require_complete
                and not table.complete
                and (pred, key) not in self._active
            ):
                # grouping-rule body: the top-level subgoal lives in a
                # strictly lower layer, so it can be fully evaluated now.
                # (Recursive re-entries *within* that completion read the
                # partial table; the completion driver iterates to
                # fixpoint, which is what makes the outer read complete.)
                self._expand_to_completion(pred, key)
            else:
                self._expand(pred, key)
            for args in list(table.answers):
                yield from match_atom(lit.atom, args, binding)
            return
        # EDB predicate: indexed lookup
        atom = lit.atom.substitute(binding)
        bound_positions = []
        key_parts = []
        for i, arg in enumerate(atom.args):
            if arg.is_ground():
                try:
                    key_parts.append(evaluate_ground(arg))
                    bound_positions.append(i)
                except (NotInUniverseError, EvaluationError):
                    return
        for args in self._db.lookup(pred, tuple(bound_positions), tuple(key_parts)):
            yield from match_atom(atom, args, binding)

    def _solve_negative(self, lit: Literal, binding: Binding) -> Iterator[Binding]:
        pred = lit.atom.pred
        if is_builtin_predicate(pred):
            substituted = lit.atom.substitute(binding)
            if not any(
                True
                for _ in solve_builtin(substituted.pred, substituted.args, binding)
            ):
                yield dict(binding)
            return
        fact = ground_atom(lit.atom, binding)
        if fact is None:
            return
        if pred in self._idb:
            key = self._call_key(lit.atom, binding)
            subgoal = (pred, key)
            table = self._table(pred, key)
            if not table.complete:
                if subgoal in self._active:
                    raise EvaluationError(
                        f"negative recursion through {pred!r} (not admissible)"
                    )
                # a lower layer: one full solve completes it
                self._expand_to_completion(pred, key)
            if fact.args not in table.answers:
                yield dict(binding)
            return
        if fact not in self._db:
            yield dict(binding)

    def _expand_to_completion(self, pred: str, key: SubgoalKey) -> None:
        """Fully evaluate a strictly-lower subgoal (for negation).

        Runs its own inner driver loop; sound because stratification
        guarantees the subgoal's derivations never depend on anything
        currently active in a higher layer.
        """
        while True:
            grew_before = self._grew
            self._grew = False
            self._expand(pred, key)
            grew_now = self._grew
            self._grew = grew_before or grew_now
            if not grew_now:
                break
        self._table(pred, key).complete = True


def evaluate_topdown(
    program: Program, query: Query, edb: Iterable[Atom] = (), check: bool = True
) -> tuple[list[Atom], TopDownStats]:
    """Convenience wrapper: answer a query top-down with tabling."""
    evaluator = TopDownEvaluator(program, edb=edb, check=check)
    answers = evaluator.query(query)
    return answers, evaluator.stats
