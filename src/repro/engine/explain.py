"""Provenance: explain why a fact is in the computed model.

Reconstructs a derivation tree for a fact of the standard model by
matching it against rule heads and re-solving rule bodies, recursively.
Well-foundedness of the bottom-up fixpoint guarantees an acyclic
derivation exists for every derived fact; the search skips candidate
derivations that would use a fact to justify itself.

Negative premises are recorded as absences (they have no sub-tree —
their justification is the completed lower layer), grouping rules list
one premise per contributing body solution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.context import EvalContext, ensure_context
from repro.engine.database import Database
from repro.engine.exec import enumerate_bindings
from repro.engine.grouping import apply_grouping_rule
from repro.engine.match import Binding, ground_atom, match_atom
from repro.names import is_builtin_predicate
from repro.program.rule import Atom, Program, Rule
from repro.terms.pretty import format_atom, format_rule


@dataclass
class Derivation:
    """One node of a derivation tree."""

    fact: Atom
    rule: Rule | None = None  # None: base (EDB) fact
    premises: tuple["Derivation", ...] = ()
    absences: tuple[Atom, ...] = ()  # satisfied negative literals

    def is_base(self) -> bool:
        return self.rule is None

    def depth(self) -> int:
        # iterative: derivations can be as deep as the model is large
        best = 0
        stack: list[tuple[Derivation, int]] = [(self, 1)]
        while stack:
            node, level = stack.pop()
            best = max(best, level)
            stack.extend((p, level + 1) for p in node.premises)
        return best

    def size(self) -> int:
        total = 0
        stack: list[Derivation] = [self]
        while stack:
            node = stack.pop()
            total += 1
            stack.extend(node.premises)
        return total

    def format(self, indent: int = 0) -> str:
        lines: list[str] = []
        stack: list[tuple[Derivation, int]] = [(self, indent)]
        while stack:
            node, level = stack.pop()
            pad = "  " * level
            line = f"{pad}{format_atom(node.fact)}"
            if node.rule is not None:
                line += f"   [{format_rule(node.rule)}]"
            lines.append(line)
            for absent in node.absences:
                lines.append(f"{pad}  ~{format_atom(absent)} (absent)")
            stack.extend(
                (premise, level + 1) for premise in reversed(node.premises)
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"Derivation({format_atom(self.fact)}, depth={self.depth()})"


def explain(
    program: Program,
    db: Database,
    fact: Atom,
    context: EvalContext | None = None,
) -> Derivation | None:
    """Build a derivation tree for ``fact`` over the computed model
    ``db``; returns None when the fact is not in the model.

    ``context`` shares the evaluation's plan cache (the session passes
    the context its model was computed under), so explanation re-solves
    rule bodies with exactly the plans evaluation used instead of
    recompiling orders per call.  Derivation depth is bounded by the
    model size, so the recursion limit is raised proportionally for the
    duration of the search.
    """
    from repro.util import deep_recursion

    ctx = ensure_context(context, db)
    with deep_recursion(60 * len(db) + 10_000):
        return _explain(program, db, fact, frozenset(), ctx)


def _explain(
    program: Program,
    db: Database,
    fact: Atom,
    forbidden: frozenset[Atom],
    ctx: EvalContext,
) -> Derivation | None:
    if fact not in db or fact in forbidden:
        return None
    if any(
        r.is_fact() and ground_atom(r.head, {}) == fact
        for r in program.rules_for(fact.pred)
    ):
        return Derivation(fact)  # a program ground fact
    rules = [r for r in program.rules_for(fact.pred) if not r.is_fact()]
    if not rules:
        return Derivation(fact)  # pure EDB fact

    blocked = forbidden | {fact}
    for rule in rules:
        if rule.is_grouping():
            derivation = _explain_grouping(
                program, db, fact, rule, blocked, ctx
            )
        else:
            derivation = _explain_plain(program, db, fact, rule, blocked, ctx)
        if derivation is not None:
            return derivation
    # present in the model but not derivable by any rule: an EDB-loaded
    # fact under a predicate that also has rules.  (A *derived* fact
    # always has a rank-minimal, cycle-free derivation, so the rule
    # search above cannot miss it.)
    return Derivation(fact)


def _justify_premises(
    program: Program,
    db: Database,
    rule: Rule,
    binding: Binding,
    blocked: frozenset[Atom],
    ctx: EvalContext,
) -> tuple[tuple[Derivation, ...], tuple[Atom, ...]] | None:
    premises: list[Derivation] = []
    absences: list[Atom] = []
    for lit in rule.body:
        if is_builtin_predicate(lit.atom.pred):
            continue
        ground = ground_atom(lit.atom, binding)
        if ground is None:
            return None
        if lit.negative:
            absences.append(ground)
            continue
        sub = _explain(program, db, ground, blocked, ctx)
        if sub is None:
            return None
        premises.append(sub)
    return tuple(premises), tuple(absences)


def _explain_plain(
    program: Program,
    db: Database,
    fact: Atom,
    rule: Rule,
    blocked: frozenset[Atom],
    ctx: EvalContext,
) -> Derivation | None:
    for head_binding in match_atom(rule.head, fact.args, {}):
        plan = ctx.plan_for(
            rule, initially_bound=frozenset(head_binding)
        )
        for binding in enumerate_bindings(
            db, plan, binding=head_binding, executor=ctx.executor
        ):
            derived = ground_atom(rule.head, binding)
            if derived != fact:
                continue
            justified = _justify_premises(
                program, db, rule, binding, blocked, ctx
            )
            if justified is None:
                continue
            premises, absences = justified
            return Derivation(fact, rule, premises, absences)
    return None


def _explain_grouping(
    program: Program,
    db: Database,
    fact: Atom,
    rule: Rule,
    blocked: frozenset[Atom],
    ctx: EvalContext,
) -> Derivation | None:
    # recompute the rule's groups and locate the class producing `fact`
    if fact not in set(apply_grouping_rule(rule, db, context=ctx)):
        return None
    premises: list[Derivation] = []
    absences: list[Atom] = []
    seen_premises: set[Atom] = set()
    group_position = rule.head.group_positions()[0]
    for binding in enumerate_bindings(
        db, ctx.plan_for(rule), executor=ctx.executor
    ):
        derived_key = ground_atom(
            Atom(
                rule.head.pred,
                tuple(
                    arg
                    for i, arg in enumerate(rule.head.args)
                    if i != group_position
                ),
            ),
            binding,
        )
        fact_key = Atom(
            fact.pred,
            tuple(
                arg for i, arg in enumerate(fact.args) if i != group_position
            ),
        )
        if derived_key != fact_key:
            continue
        justified = _justify_premises(
            program, db, rule, binding, blocked, ctx
        )
        if justified is None:
            return None
        for premise in justified[0]:
            if premise.fact not in seen_premises:
                seen_premises.add(premise.fact)
                premises.append(premise)
        for absent in justified[1]:
            if absent not in absences:
                absences.append(absent)
    return Derivation(fact, rule, tuple(premises), tuple(absences))
