"""Bottom-up evaluation engine: storage, matching, built-ins, fixpoints."""

from repro.engine.binding import ChainBinding
from repro.engine.builtins import MAX_ENUMERATED_SET, solve_builtin
from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.evaluator import (
    EvaluationResult,
    LayerStats,
    SCCStats,
    answer_query,
    evaluate,
    evaluate_component,
)
from repro.engine.fixpoint import (
    FixpointStats,
    naive_fixpoint,
    seminaive_fixpoint,
    single_pass,
)
from repro.engine.exec import (
    EXECUTORS,
    default_executor,
    derive_facts,
    enumerate_bindings,
    set_default_executor,
)
from repro.engine.explain import Derivation, explain
from repro.engine.grouping import apply_grouping_rule, apply_grouping_rules
from repro.engine.incremental import (
    IncrementalModel,
    MaintenanceTotals,
    UpdateStats,
)
from repro.engine.maintain import (
    MAINTAIN_MODES,
    DeltaBatch,
    maintain_mode,
    set_maintain_mode,
)
from repro.engine.match import Binding, ground_atom, match_atom, match_term
from repro.engine.plan import (
    HeadTemplate,
    LiteralStep,
    RulePlan,
    apply_rule_plan,
    compile_body,
    compile_rule,
    run_plan,
)
from repro.engine.relation import Relation
from repro.engine.solve import head_facts, order_body, solve_body
from repro.engine.topdown import TopDownEvaluator, TopDownStats, evaluate_topdown

__all__ = [
    "Binding",
    "ChainBinding",
    "Database",
    "EvalContext",
    "HeadTemplate",
    "LiteralStep",
    "RulePlan",
    "apply_rule_plan",
    "compile_body",
    "compile_rule",
    "run_plan",
    "Derivation",
    "EXECUTORS",
    "default_executor",
    "derive_facts",
    "enumerate_bindings",
    "set_default_executor",
    "IncrementalModel",
    "MaintenanceTotals",
    "UpdateStats",
    "MAINTAIN_MODES",
    "DeltaBatch",
    "maintain_mode",
    "set_maintain_mode",
    "explain",
    "EvaluationResult",
    "FixpointStats",
    "LayerStats",
    "SCCStats",
    "evaluate_component",
    "single_pass",
    "MAX_ENUMERATED_SET",
    "Relation",
    "TopDownEvaluator",
    "TopDownStats",
    "answer_query",
    "evaluate_topdown",
    "apply_grouping_rule",
    "apply_grouping_rules",
    "evaluate",
    "ground_atom",
    "head_facts",
    "match_atom",
    "match_term",
    "naive_fixpoint",
    "order_body",
    "seminaive_fixpoint",
    "solve_body",
    "solve_builtin",
]
