"""The shared evaluation context: plan cache, planner policy, hooks.

Every evaluation strategy (layered bottom-up, incremental, magic,
tabled top-down) runs against an :class:`EvalContext` that owns

* the database under evaluation,
* the planner policy and, for size-aware policies, the current
  relation-cardinality snapshot,
* the executor choice (``"batch"`` set-at-a-time pipeline or
  ``"tuple"`` one-binding-at-a-time recursion; ``None`` defers to the
  process-wide default in :mod:`repro.engine.exec`),
* a cache of compiled :class:`~repro.engine.plan.RulePlan`s keyed by
  (rule, delta occurrence, initially-bound variables) — each distinct
  key is compiled at most once until the policy invalidates it,
* the :class:`~repro.observe.EngineHooks` sink and an optional
  :class:`~repro.observe.MetricsCollector`.

Hot paths guard hook dispatch behind the plain-attribute
:attr:`EvalContext.observing` flag (and timing behind
:attr:`EvalContext.timing`) so the no-op defaults cost one attribute
check.  The seed recomputed ``order_body`` every fixpoint iteration;
under the context the planner is a *re-plan policy*:

* ``"sized-once"`` (default) — cardinality-aware join ordering from
  live size snapshots (:meth:`refresh_sizes` updates them once per
  fixpoint iteration), but a plan compiled for a key is kept for the
  context's lifetime;
* ``"sized"`` — like ``"sized-once"`` but the plan cache is
  invalidated whenever the snapshot changes, so every rule re-plans
  against fresh statistics (the E15 planner experiment);
* ``"static"`` — sizes are never consulted; ordering falls back to
  the syntactic heuristic alone.
"""

from __future__ import annotations

from repro.engine.database import Database
from repro.engine.plan import RulePlan, compile_rule
from repro.observe import EngineHooks, MetricsCollector, NULL_HOOKS, NullHooks
from repro.program.rule import Rule

#: planner policies accepted by :class:`EvalContext`.
PLANNERS = ("static", "sized", "sized-once")

#: policies that snapshot live relation sizes for join ordering.
_SIZE_AWARE = ("sized", "sized-once")


class EvalContext:
    """Evaluation-wide state shared by all strategies and layers."""

    __slots__ = (
        "db",
        "planner",
        "sized",
        "executor",
        "hooks",
        "observing",
        "metrics",
        "timing",
        "sizes",
        "_plans",
    )

    def __init__(
        self,
        db: Database | None = None,
        planner: str = "sized-once",
        hooks: EngineHooks | None = None,
        metrics: MetricsCollector | None = None,
        executor: str | None = None,
    ) -> None:
        self.db = db
        self.planner = planner
        # fixpoint loops test this plain attribute instead of calling
        # refresh_sizes() per iteration under the static policy.
        self.sized = planner in _SIZE_AWARE
        # None defers to repro.engine.exec.default_executor() at each
        # call, so set_default_executor affects existing contexts too.
        self.executor = executor
        self.hooks: EngineHooks = hooks if hooks is not None else NULL_HOOKS
        self.observing = not isinstance(self.hooks, NullHooks)
        self.metrics = metrics
        self.timing = metrics is not None
        self.sizes: dict[str, int] | None = None
        self._plans: dict[tuple, RulePlan] = {}
        if self.sized and db is not None:
            # seed the snapshot so even the first plans see live sizes
            self.sizes = {pred: db.count(pred) for pred in db.predicates()}

    def plan_for(
        self,
        rule: Rule,
        first: int | None = None,
        initially_bound: frozenset[str] = frozenset(),
    ) -> RulePlan:
        """The compiled plan for ``rule``, compiled at most once per key.

        ``first`` pins a body occurrence to the front (the semi-naive
        delta); ``initially_bound`` seeds the bound-variable set
        (top-down sideways information).  Compilation fires
        ``on_plan_built`` and is timed under the ``plan`` phase.
        """
        key = (rule, first, initially_bound)
        plan = self._plans.get(key)
        if plan is not None:
            if self.timing:
                self.metrics.incr("plan_cache_hits")
            return plan
        if self.timing:
            start = self.metrics.now()
        plan = compile_rule(
            rule,
            first=first,
            sizes=self.sizes,
            initially_bound=initially_bound,
            planner=self.planner,
        )
        self._plans[key] = plan
        if self.timing:
            self.metrics.add_time("plan", self.metrics.now() - start)
            self.metrics.incr("plans_built")
            self.metrics.record_join_order(plan)
        if self.observing:
            self.hooks.on_plan_built(plan)
        return plan

    def refresh_sizes(self) -> None:
        """Size-snapshot policy, called once per fixpoint iteration.

        Under ``"sized-once"`` (the default) the snapshot is updated so
        plans compiled *later* — new rules, new delta occurrences —
        order their joins against live cardinalities, but already-built
        plans are kept.  Under ``"sized"`` a changed snapshot also
        invalidates the plan cache, so the next :meth:`plan_for`
        re-plans with fresh statistics.  A no-op under the static
        policy (callers on hot paths skip the call entirely via
        :attr:`sized`).
        """
        if not self.sized or self.db is None:
            return
        sizes = {pred: self.db.count(pred) for pred in self.db.predicates()}
        if sizes != self.sizes:
            self.sizes = sizes
            if self.planner == "sized" and self._plans:
                if self.timing:
                    self.metrics.incr("plan_invalidations")
                self._plans.clear()

    @property
    def plans_cached(self) -> int:
        return len(self._plans)

    def __repr__(self) -> str:
        return (
            f"EvalContext(planner={self.planner!r}, "
            f"plans={len(self._plans)}, observing={self.observing})"
        )


def ensure_context(
    context: EvalContext | None, db: Database, planner: str = "sized-once"
) -> EvalContext:
    """The given context, or a fresh private one for direct calls.

    Strategy entry points accept ``context=None`` so the seed's
    call signatures keep working; callers that share a context get plan
    caching across layers, phases, and updates.
    """
    if context is not None:
        return context
    return EvalContext(db, planner=planner)
