"""Compile-once rule plans: the executable IR of rule evaluation.

The seed engine re-derived everything per call: :func:`order_body`
ran every fixpoint iteration, ``Atom.substitute`` plus per-argument
groundness checks ran for every binding at every literal, and the head
was re-substituted per derived fact.  This module performs that
analysis *once* per (rule, delta-occurrence, planner) and emits a
:class:`RulePlan`:

* an evaluation order (from :func:`repro.engine.solve.order_body`),
* one :class:`LiteralStep` per body literal carrying its *probe spec*
  — which argument positions are ground at that step given the
  variables bound so far, how to produce each probe key part (constant
  / direct variable lookup / residual term evaluation), and which
  positions still need general matching — plus the step kind
  (relation scan, pure filter, negation, builtin),
* a precomputed :class:`HeadTemplate` that instantiates the head by
  direct binding lookups when possible.

Execution lives in :mod:`repro.engine.exec`: the batch executor runs a
plan set-at-a-time over whole binding batches, the tuple executor keeps
the original one-binding-at-a-time recursion for differential testing.
:func:`run_plan` and :func:`apply_rule_plan` remain as thin wrappers
that route to the configured executor, extending bindings as immutable
chains (:mod:`repro.engine.binding`) so that a dict is materialized
only when a consumer asks for one.  Plans are cached and shared by
:class:`~repro.engine.context.EvalContext`.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.engine.binding import ChainBinding
from repro.engine.builtins import handler_for
from repro.engine.database import Database
from repro.engine.match import ground_atom
from repro.errors import EvaluationError, NotInUniverseError
from repro.names import is_builtin_predicate
from repro.program.rule import Atom, Literal, Rule
from repro.terms.term import (
    ARITHMETIC_FUNCTORS,
    Const,
    Func,
    Term,
    Var,
    evaluate_ground,
)

#: relation-override hook: maps a body-literal *original index* to an
#: alternative tuple source (e.g. the semi-naive delta).
SourceOverrides = dict[int, Iterable[tuple[Term, ...]]]

# Probe/argument descriptor kinds.
CONST = "const"  # payload: pre-evaluated canonical value
VAR = "var"  # payload: variable name, bound before this step
TERM = "term"  # payload: raw term, substitute+evaluate at runtime
BIND = "bind"  # payload: variable name, first unbound occurrence
MATCH = "match"  # payload: (term, needs_substitute) general match
ARITH = "arith"  # payload: (functor, ((VAR, name) | (CONST, number), ...))


def _compile_builtin_arg(arg: Term) -> tuple:
    """One ``(kind, payload, term)`` descriptor for a builtin argument.

    Variables resolve by one binding lookup; variable-free terms pass
    through untouched; arithmetic over variables and numeric constants
    folds directly to an interned constant at run time (no intermediate
    ``Func`` allocation or ground-term re-evaluation); anything else
    substitutes at run time.
    """
    if isinstance(arg, Var):
        return (VAR, arg.name, arg)
    if not arg.variables():
        return (CONST, arg, arg)
    if (
        isinstance(arg, Func)
        and arg.functor in ARITHMETIC_FUNCTORS
        and all(
            isinstance(a, Var)
            or (isinstance(a, Const) and isinstance(a.value, (int, float)))
            for a in arg.args
        )
    ):
        parts = tuple(
            (VAR, a.name) if isinstance(a, Var) else (CONST, a.value)
            for a in arg.args
        )
        return (ARITH, (arg.functor, parts), arg)
    return (TERM, arg, arg)


class LiteralStep:
    """One executable step of a rule body.

    ``kind`` is ``"relation"`` (positive stored-predicate literal),
    ``"builtin"`` (positive built-in) or ``"negation"``.  For relation
    steps, ``probes`` describes the index key (argument positions whose
    variables are all bound before the step) and ``residuals`` the
    positions that extend the binding; ``fully_bound`` marks pure
    membership filters.  ``simple_residuals`` is the pre-extracted
    ``(position, name)`` list when *every* residual is a plain fresh
    variable — the overwhelmingly common Datalog shape, executed
    without the general recursive matcher.  For non-builtin negations
    ``neg_args`` holds one descriptor per argument (negation always
    runs fully bound).
    """

    __slots__ = (
        "index",
        "literal",
        "kind",
        "bound_before",
        "probe_positions",
        "probes",
        "residuals",
        "simple_residuals",
        "fully_bound",
        "neg_args",
        "builtin_args",
        "builtin_handler",
    )

    def __init__(
        self,
        index: int,
        literal: Literal,
        kind: str,
        bound_before: frozenset[str],
        probe_positions: tuple[int, ...] = (),
        probes: tuple = (),
        residuals: tuple = (),
        fully_bound: bool = False,
        neg_args: tuple | None = None,
    ) -> None:
        self.index = index
        self.literal = literal
        self.kind = kind
        self.bound_before = bound_before
        self.probe_positions = probe_positions
        self.probes = probes
        self.residuals = residuals
        self.fully_bound = fully_bound
        self.neg_args = neg_args
        if residuals and all(kind_ == BIND for _, kind_, _ in residuals):
            self.simple_residuals = tuple(
                (pos, name) for pos, _, name in residuals
            )
        else:
            self.simple_residuals = None
        if kind == "builtin":
            # per-argument descriptors: variables resolve by one binding
            # lookup, variable-free terms pass through untouched, mixed
            # terms substitute at runtime.  Avoids rebuilding the whole
            # atom per candidate binding.
            self.builtin_args = tuple(
                _compile_builtin_arg(arg) for arg in literal.atom.args
            )
            # unknown predicates keep the None handler and fall back to
            # solve_builtin at run time, which raises the same
            # EvaluationError a direct call would.
            self.builtin_handler = handler_for(literal.atom.pred)
        else:
            self.builtin_args = None
            self.builtin_handler = None

    def __repr__(self) -> str:
        return (
            f"LiteralStep({self.index}, kind={self.kind!r}, "
            f"probe={self.probe_positions!r})"
        )


class HeadTemplate:
    """Precomputed head instantiation.

    When every head argument is a plain variable or a constant that
    canonicalizes at compile time, instantiation is a tuple of direct
    binding lookups; otherwise it falls back to
    :func:`~repro.engine.match.ground_atom` (substitute + evaluate).
    """

    __slots__ = ("atom", "fast", "parts")

    def __init__(self, atom: Atom) -> None:
        self.atom = atom
        parts: list[tuple[str, object]] = []
        fast = True
        for arg in atom.args:
            if isinstance(arg, Var):
                parts.append((VAR, arg.name))
            elif arg.is_ground():
                try:
                    parts.append((CONST, evaluate_ground(arg)))
                except (NotInUniverseError, EvaluationError):
                    fast = False
                    break
            else:
                fast = False
                break
        self.fast = fast
        self.parts = tuple(parts) if fast else ()

    def instantiate(self, binding: Mapping[str, Term]) -> Atom | None:
        """The head fact under ``binding``, or None when outside U."""
        if self.fast:
            args: list[Term] = []
            for kind, payload in self.parts:
                if kind == VAR:
                    value = binding.get(payload)
                    if value is None:
                        return ground_atom(self.atom, binding)
                    args.append(value)
                else:
                    args.append(payload)
            atom = Atom(self.atom.pred, args)
            # binding values are U-elements and CONST parts evaluated at
            # compile time: skip the per-argument groundness walk that
            # Database.add would otherwise repeat for every derivation.
            atom._ground = True
            return atom
        return ground_atom(self.atom, binding)


class RulePlan:
    """A rule compiled to an ordered sequence of literal steps."""

    __slots__ = (
        "rule",
        "order",
        "steps",
        "head",
        "planner",
        "first",
        "initially_bound",
        "_spec",
    )

    def __init__(
        self,
        rule: Rule | None,
        order: tuple[int, ...],
        steps: tuple[LiteralStep, ...],
        head: HeadTemplate | None,
        planner: str,
        first: int | None,
        initially_bound: frozenset[str],
    ) -> None:
        self.rule = rule
        self.order = order
        self.steps = steps
        self.head = head
        self.planner = planner
        self.first = first
        self.initially_bound = initially_bound
        # lazy per-plan specialization cache; the compiled-closure
        # executor (repro.engine.exec.specialize) hangs its state here.
        # Populated on first execution, after compile_rule has finished
        # mutating head/rule.
        self._spec = None

    def instantiate_head(self, binding: Mapping[str, Term]) -> Atom | None:
        assert self.head is not None, "body-only plan has no head template"
        return self.head.instantiate(binding)

    def __repr__(self) -> str:
        return f"RulePlan(order={self.order!r}, planner={self.planner!r})"


def _compile_relation_step(
    index: int, literal: Literal, bound: frozenset[str]
) -> LiteralStep:
    atom = literal.atom
    probe_positions: list[int] = []
    probes: list[tuple[int, str, object]] = []
    residuals: list[tuple[int, str, object]] = []
    seen_here: set[str] = set()
    for pos, arg in enumerate(atom.args):
        arg_vars = arg.variables()
        if arg_vars <= bound and not (arg_vars & seen_here):
            # ground at this step (given bound-so-far): part of the key
            if isinstance(arg, Var):
                probes.append((pos, VAR, arg.name))
            elif not arg_vars:
                try:
                    probes.append((pos, CONST, evaluate_ground(arg)))
                except (NotInUniverseError, EvaluationError):
                    # defer to runtime so failure semantics match the
                    # seed exactly (silent vs raising, see run_plan)
                    probes.append((pos, TERM, arg))
            else:
                probes.append((pos, TERM, arg))
            probe_positions.append(pos)
        elif isinstance(arg, Var) and arg.name not in bound | seen_here:
            residuals.append((pos, BIND, arg.name))
            seen_here.add(arg.name)
        else:
            # general match: repeated variables, or compound terms with
            # unbound variables.  Substitute at runtime only when the
            # term mixes in already-bound variables.
            needs_substitute = bool(arg_vars & (bound | seen_here))
            residuals.append((pos, MATCH, (arg, needs_substitute)))
            seen_here |= arg_vars
    fully_bound = bool(probe_positions) and not residuals
    return LiteralStep(
        index,
        literal,
        "relation",
        bound,
        tuple(probe_positions),
        tuple(probes),
        tuple(residuals),
        fully_bound,
    )


def _compile_negation_step(
    index: int, literal: Literal, bound: frozenset[str]
) -> LiteralStep:
    if is_builtin_predicate(literal.atom.pred):
        return LiteralStep(index, literal, "negation", bound, neg_args=None)
    neg_args: list[tuple[str, object]] = []
    for arg in literal.atom.args:
        if isinstance(arg, Var) and arg.name in bound:
            neg_args.append((VAR, arg.name))
        elif not arg.variables():
            try:
                neg_args.append((CONST, evaluate_ground(arg)))
            except (NotInUniverseError, EvaluationError):
                neg_args.append((TERM, arg))
        else:
            neg_args.append((TERM, arg))
    return LiteralStep(
        index, literal, "negation", bound, neg_args=tuple(neg_args)
    )


def compile_body(
    literals: Sequence[Literal],
    order: Sequence[int] | None = None,
    first: int | None = None,
    sizes: dict[str, int] | None = None,
    initially_bound: frozenset[str] = frozenset(),
    planner: str = "static",
) -> RulePlan:
    """Compile a body into a head-less :class:`RulePlan`.

    ``order`` reuses a precomputed evaluation order; otherwise
    :func:`~repro.engine.solve.order_body` runs with the given
    ``first``/``sizes``/``initially_bound`` arguments.
    """
    from repro.engine.solve import order_body

    if order is None:
        order = order_body(
            literals, initially_bound, first=first, sizes=sizes
        )
    bound = frozenset(initially_bound)
    steps: list[LiteralStep] = []
    for index in order:
        literal = literals[index]
        if literal.negative:
            steps.append(_compile_negation_step(index, literal, bound))
        elif is_builtin_predicate(literal.atom.pred):
            steps.append(LiteralStep(index, literal, "builtin", bound))
            bound |= literal.atom.variables()
        else:
            steps.append(_compile_relation_step(index, literal, bound))
            bound |= literal.atom.variables()
    return RulePlan(
        None,
        tuple(order),
        tuple(steps),
        None,
        planner,
        first,
        frozenset(initially_bound),
    )


def compile_rule(
    rule: Rule,
    first: int | None = None,
    sizes: dict[str, int] | None = None,
    initially_bound: frozenset[str] = frozenset(),
    planner: str = "static",
) -> RulePlan:
    """Compile a full rule: ordered body steps plus a head template.

    Grouping rules get no head template (the R1 step builds grouped
    heads from equivalence classes, not per-binding instantiation).
    """
    plan = compile_body(
        rule.body,
        first=first,
        sizes=sizes,
        initially_bound=initially_bound,
        planner=planner,
    )
    plan.rule = rule
    if not rule.is_grouping():
        plan.head = HeadTemplate(rule.head)
    return plan



def run_plan(
    db: Database,
    plan: RulePlan,
    binding: Mapping[str, Term] | None = None,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
) -> Iterator[ChainBinding]:
    """Enumerate applicable bindings of a compiled body over ``db``.

    Routes to the configured executor (:mod:`repro.engine.exec`); the
    default is the set-at-a-time batch executor.  Yields
    :class:`ChainBinding` extensions of ``binding`` (read-only
    Mappings; call ``.materialize()`` for a plain dict).  ``overrides``
    swaps the tuple source of specific body occurrences (semi-naive
    deltas); ``negation_db`` checks negative literals against a
    different interpretation (well-founded reduct construction).
    """
    from repro.engine.exec import enumerate_bindings

    return iter(
        enumerate_bindings(
            db,
            plan,
            binding=binding,
            overrides=overrides,
            negation_db=negation_db,
            executor=executor,
        )
    )


def apply_rule_plan(
    db: Database,
    plan: RulePlan,
    overrides: SourceOverrides | None = None,
    negation_db: Database | None = None,
    executor: str | None = None,
) -> Iterator[Atom]:
    """Head facts derived by one (non-grouping) compiled rule over ``db``."""
    from repro.engine.exec import derive_facts

    return iter(
        derive_facts(
            db,
            plan,
            overrides=overrides,
            negation_db=negation_db,
            executor=executor,
        )
    )
