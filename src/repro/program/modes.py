"""Binding modes for built-in predicates.

The paper leaves arithmetic and comparison predicates "outside the
scope" but relies on them in examples; any evaluable implementation
needs *modes*: which argument positions must be bound before the
built-in can run, and which positions it can then produce bindings for.

A :class:`Mode` ``(requires, produces)`` reads: when every position in
``requires`` is bound, evaluation can enumerate values for the
positions in ``produces`` (and test the rest).  Several modes per
predicate are allowed; the engine and the safety checker pick any whose
requirements are met.
"""

from __future__ import annotations

from typing import NamedTuple


class Mode(NamedTuple):
    """One usable binding pattern of a built-in predicate."""

    requires: frozenset[int]
    produces: frozenset[int]


def _mode(requires: tuple[int, ...], produces: tuple[int, ...]) -> Mode:
    return Mode(frozenset(requires), frozenset(produces))


#: Modes per built-in predicate symbol.  Positions are 0-based.
BUILTIN_MODES: dict[str, tuple[Mode, ...]] = {
    # member(X, S): test, or enumerate the elements of a bound set.
    "member": (_mode((0, 1), ()), _mode((1,), (0,))),
    # union(S1, S2, S3): compute the union, decompose a bound union, or
    # complete one operand.  Decomposition enumerates (exponentially many)
    # covers of S3, as the paper's partition example requires.
    "union": (
        _mode((0, 1, 2), ()),
        _mode((0, 1), (2,)),
        _mode((2,), (0, 1)),
        _mode((0, 2), (1,)),
        _mode((1, 2), (0,)),
    ),
    # intersection/difference(S1, S2, S3): compute or test from bound operands.
    "intersection": (_mode((0, 1, 2), ()), _mode((0, 1), (2,))),
    "difference": (_mode((0, 1, 2), ()), _mode((0, 1), (2,))),
    # aggregates over a bound set of numbers.
    "sum": (_mode((0, 1), ()), _mode((0,), (1,))),
    "min_of": (_mode((0, 1), ()), _mode((0,), (1,))),
    "max_of": (_mode((0, 1), ()), _mode((0,), (1,))),
    # partition(S, S1, S2): disjoint two-way splits of a bound set, or
    # recompose the whole from two bound disjoint parts.
    "partition": (_mode((0, 1, 2), ()), _mode((0,), (1, 2)), _mode((1, 2), (0,))),
    # subset(S1, S2): test, or enumerate subsets of a bound set.
    "subset": (_mode((0, 1), ()), _mode((1,), (0,))),
    # card(S, N): cardinality of a bound set.
    "card": (_mode((0, 1), ()), _mode((0,), (1,))),
    # Equality evaluates either side once the other is ground.
    "=": (_mode((0, 1), ()), _mode((0,), (1,)), _mode((1,), (0,))),
    "!=": (_mode((0, 1), ()),),
    "<": (_mode((0, 1), ()),),
    "<=": (_mode((0, 1), ()),),
    ">": (_mode((0, 1), ()),),
    ">=": (_mode((0, 1), ()),),
}


def modes_for(pred: str) -> tuple[Mode, ...]:
    """Modes of a built-in predicate; empty tuple for unknown names."""
    return BUILTIN_MODES.get(pred, ())
