"""Predicate dependency graph with the paper's ``>=`` / ``>`` relations.

Section 3.1 defines, for a program P:

1. ``p >= q`` — some rule has head symbol ``p`` with no ``<X>`` in the
   head and ``q`` occurs non-negated in the body;
2. ``p > q`` — some rule has head ``p`` *with* ``<X>`` in the head and
   ``q`` occurs (in any polarity) in the body;
3. ``p > q`` — ``q`` occurs negated in the body of a rule with head
   ``p``.

``P`` is *admissible* iff there is no cycle through a strict (``>``)
edge.  Built-in predicates have fixed interpretations and take no part
in the relation.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

import networkx as nx

from repro.names import is_builtin_predicate
from repro.program.rule import Program, Rule


class DependencyEdge(NamedTuple):
    """An edge ``head -> body-predicate`` with its strictness."""

    head: str
    body: str
    strict: bool
    rule: Rule


def rule_edges(rule: Rule) -> Iterator[DependencyEdge]:
    """Yield the dependency edges contributed by one rule."""
    grouping = rule.is_grouping()
    for lit in rule.body:
        if is_builtin_predicate(lit.atom.pred):
            continue
        strict = grouping or lit.negative
        yield DependencyEdge(rule.head.pred, lit.atom.pred, strict, rule)


def dependency_graph(program: Program) -> nx.DiGraph:
    """Directed graph: node per predicate, edge head -> body predicate.

    Edge attribute ``strict`` is True when *any* rule forces ``>``
    between the pair.  All predicates of the program appear as nodes,
    including EDB predicates (no outgoing edges) — built-ins excluded.
    """
    graph = nx.DiGraph()
    for pred in program.predicates():
        if not is_builtin_predicate(pred):
            graph.add_node(pred)
    for rule in program.rules:
        for edge in rule_edges(rule):
            if graph.has_edge(edge.head, edge.body):
                graph[edge.head][edge.body]["strict"] |= edge.strict
            else:
                graph.add_edge(edge.head, edge.body, strict=edge.strict)
    return graph


def strict_cycle(graph: nx.DiGraph) -> tuple[str, ...] | None:
    """Return a predicate cycle through a strict edge, or None.

    A strict edge inside a strongly connected component witnesses
    inadmissibility; the returned tuple is the offending SCC ordered
    deterministically, for error messages.
    """
    for component in nx.strongly_connected_components(graph):
        for u in component:
            for v in graph.successors(u):
                if v in component and graph[u][v]["strict"]:
                    return tuple(sorted(component))
    return None


def is_admissible(program: Program) -> bool:
    """True iff the program can be layered (Lemma 3.1)."""
    return strict_cycle(dependency_graph(program)) is None


def depends_on(program: Program, pred: str) -> frozenset[str]:
    """All predicates ``pred`` transitively depends on (excl. built-ins)."""
    graph = dependency_graph(program)
    if pred not in graph:
        return frozenset()
    return frozenset(nx.descendants(graph, pred))


class SCCComponent(NamedTuple):
    """One strongly connected component of the dependency graph.

    ``recursive`` is True when the component's rules can feed
    themselves — more than one predicate, or a self-loop.  ``rules``
    holds the program's non-fact rules whose head lies in ``preds``
    (empty for pure EDB components).
    """

    preds: frozenset[str]
    recursive: bool
    rules: tuple[Rule, ...]


def condense_program(
    program: Program, graph: nx.DiGraph | None = None
) -> list[SCCComponent]:
    """SCCs of the dependency graph in bottom-up evaluation order.

    The returned list is topologically ordered so that every predicate a
    component depends on lives in an *earlier* component (dependency
    edges run head → body, so the condensation's topological order is
    reversed).  Theorem 2 licenses the move: the minimal model does not
    depend on the layering, so each SCC may be evaluated as its own —
    much smaller — fixpoint, and non-recursive SCCs need only a single
    rule application each.
    """
    if graph is None:
        graph = dependency_graph(program)
    rules_by_head: dict[str, list[Rule]] = {}
    for rule in program.rules:
        if not rule.is_fact():
            rules_by_head.setdefault(rule.head.pred, []).append(rule)
    condensation = nx.condensation(graph)
    components: list[SCCComponent] = []
    for node in reversed(list(nx.topological_sort(condensation))):
        members = frozenset(condensation.nodes[node]["members"])
        recursive = len(members) > 1 or any(
            graph.has_edge(p, p) for p in members
        )
        rules = tuple(
            r
            for pred in sorted(members)
            for r in rules_by_head.get(pred, ())
        )
        components.append(SCCComponent(members, recursive, rules))
    return components


def scc_schedule(
    program: Program, layering
) -> list[list[SCCComponent]]:
    """Per-layer evaluation schedule: SCCs in dependency order.

    An SCC never spans layers (mutually dependent predicates satisfy
    ``p >= q`` and ``q >= p``, forcing equal layer indexes under any
    valid layering), so each component of :func:`condense_program` is
    assigned to the layer of its predicates; within a layer the
    components keep their topological order.  Components without rules
    (EDB-only predicates) are dropped — there is nothing to run.
    """
    schedule: list[list[SCCComponent]] = [[] for _ in range(len(layering))]
    for component in condense_program(program):
        if not component.rules:
            continue
        layer = layering.index(next(iter(component.preds)))
        schedule[layer].append(component)
    return schedule
