"""Predicate dependency graph with the paper's ``>=`` / ``>`` relations.

Section 3.1 defines, for a program P:

1. ``p >= q`` — some rule has head symbol ``p`` with no ``<X>`` in the
   head and ``q`` occurs non-negated in the body;
2. ``p > q`` — some rule has head ``p`` *with* ``<X>`` in the head and
   ``q`` occurs (in any polarity) in the body;
3. ``p > q`` — ``q`` occurs negated in the body of a rule with head
   ``p``.

``P`` is *admissible* iff there is no cycle through a strict (``>``)
edge.  Built-in predicates have fixed interpretations and take no part
in the relation.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

import networkx as nx

from repro.names import is_builtin_predicate
from repro.program.rule import Program, Rule


class DependencyEdge(NamedTuple):
    """An edge ``head -> body-predicate`` with its strictness."""

    head: str
    body: str
    strict: bool
    rule: Rule


def rule_edges(rule: Rule) -> Iterator[DependencyEdge]:
    """Yield the dependency edges contributed by one rule."""
    grouping = rule.is_grouping()
    for lit in rule.body:
        if is_builtin_predicate(lit.atom.pred):
            continue
        strict = grouping or lit.negative
        yield DependencyEdge(rule.head.pred, lit.atom.pred, strict, rule)


def dependency_graph(program: Program) -> nx.DiGraph:
    """Directed graph: node per predicate, edge head -> body predicate.

    Edge attribute ``strict`` is True when *any* rule forces ``>``
    between the pair.  All predicates of the program appear as nodes,
    including EDB predicates (no outgoing edges) — built-ins excluded.
    """
    graph = nx.DiGraph()
    for pred in program.predicates():
        if not is_builtin_predicate(pred):
            graph.add_node(pred)
    for rule in program.rules:
        for edge in rule_edges(rule):
            if graph.has_edge(edge.head, edge.body):
                graph[edge.head][edge.body]["strict"] |= edge.strict
            else:
                graph.add_edge(edge.head, edge.body, strict=edge.strict)
    return graph


def strict_cycle(graph: nx.DiGraph) -> tuple[str, ...] | None:
    """Return a predicate cycle through a strict edge, or None.

    A strict edge inside a strongly connected component witnesses
    inadmissibility; the returned tuple is the offending SCC ordered
    deterministically, for error messages.
    """
    for component in nx.strongly_connected_components(graph):
        for u in component:
            for v in graph.successors(u):
                if v in component and graph[u][v]["strict"]:
                    return tuple(sorted(component))
    return None


def is_admissible(program: Program) -> bool:
    """True iff the program can be layered (Lemma 3.1)."""
    return strict_cycle(dependency_graph(program)) is None


def depends_on(program: Program, pred: str) -> frozenset[str]:
    """All predicates ``pred`` transitively depends on (excl. built-ins)."""
    graph = dependency_graph(program)
    if pred not in graph:
        return frozenset()
    return frozenset(nx.descendants(graph, pred))
