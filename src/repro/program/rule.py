"""Atoms, literals, rules, queries, and programs (paper Section 2.1).

A *rule* is ``head <- body`` where the head is a positive predicate and
the body a sequence of literals; a rule with an empty body is a *fact*.
A rule whose head contains ``<X>`` is a *grouping rule*.  A *program* is
a finite set of well-formed rules.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

from repro.names import is_builtin_predicate
from repro.terms.pretty import format_atom, format_literal, format_rule
from repro.terms.term import (
    GroupTerm,
    Term,
    contains_group_term,
    evaluate_ground,
)


class Atom:
    """A predicate applied to terms: ``p(t1, ..., tn)``.

    ``pred`` is the predicate symbol; zero-ary atoms are allowed
    (propositional facts).  Immutable and hashable, so ground atoms
    serve directly as U-facts.
    """

    __slots__ = ("pred", "args", "_hash", "_ground", "_row")

    def __init__(self, pred: str, args: Iterable[Term] = ()) -> None:
        self.pred = pred
        self.args = tuple(args)
        self._hash = None
        self._ground = None
        # ``_row`` is deliberately left unset: the specialized executor
        # attaches the argument tuple's dense-ID row so storage can
        # skip re-encoding (see Database.add); everyone else never
        # pays for the extra store.

    @property
    def arity(self) -> int:
        return len(self.args)

    def is_ground(self) -> bool:
        g = self._ground
        if g is None:
            g = all(a.is_ground() for a in self.args)
            self._ground = g
        return g

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.variables()
        return out

    def substitute(self, binding: Mapping[str, Term]) -> "Atom":
        return Atom(self.pred, [a.substitute(binding) for a in self.args])

    def has_group_term(self) -> bool:
        """True when ``<...>`` occurs anywhere among the arguments."""
        return any(contains_group_term(a) for a in self.args)

    def group_positions(self) -> tuple[int, ...]:
        """Argument positions that are *directly* grouping terms."""
        return tuple(
            i for i, a in enumerate(self.args) if isinstance(a, GroupTerm)
        )

    def is_builtin(self) -> bool:
        return is_builtin_predicate(self.pred)

    def sort_key(self):
        return (self.pred, len(self.args), tuple(a.sort_key() for a in self.args))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Atom)
            and self.pred == other.pred
            and self.args == other.args
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((Atom, self.pred, self.args))
            self._hash = h
        return h

    def __reduce__(self):
        return (Atom, (self.pred, self.args))

    def __repr__(self) -> str:
        return f"Atom({format_atom(self)})"


class Literal:
    """A positive or negative occurrence of an atom in a rule body."""

    __slots__ = ("atom", "positive")

    def __init__(self, atom: Atom, positive: bool = True) -> None:
        self.atom = atom
        self.positive = positive

    @property
    def negative(self) -> bool:
        return not self.positive

    def variables(self) -> frozenset[str]:
        return self.atom.variables()

    def substitute(self, binding: Mapping[str, Term]) -> "Literal":
        return Literal(self.atom.substitute(binding), self.positive)

    def negated(self) -> "Literal":
        return Literal(self.atom, not self.positive)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Literal)
            and self.positive == other.positive
            and self.atom == other.atom
        )

    def __hash__(self) -> int:
        return hash((Literal, self.atom, self.positive))

    def __repr__(self) -> str:
        return f"Literal({format_literal(self)})"


class Rule:
    """``head <- body``; a fact when the body is empty."""

    __slots__ = ("head", "body")

    def __init__(self, head: Atom, body: Iterable[Literal] = ()) -> None:
        self.head = head
        self.body = tuple(body)

    def is_fact(self) -> bool:
        return not self.body

    def is_grouping(self) -> bool:
        """True for grouping rules (``<X>`` in the head, Section 2.1)."""
        return self.head.has_group_term()

    def is_simple(self) -> bool:
        """No grouping in the head and no negative body literal (3.2)."""
        return not self.is_grouping() and all(lit.positive for lit in self.body)

    def variables(self) -> frozenset[str]:
        out = self.head.variables()
        for lit in self.body:
            out |= lit.variables()
        return out

    def positive_body(self) -> tuple[Literal, ...]:
        return tuple(lit for lit in self.body if lit.positive)

    def negative_body(self) -> tuple[Literal, ...]:
        return tuple(lit for lit in self.body if lit.negative)

    def substitute(self, binding: Mapping[str, Term]) -> "Rule":
        return Rule(
            self.head.substitute(binding),
            (lit.substitute(binding) for lit in self.body),
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self) -> int:
        return hash((Rule, self.head, self.body))

    def __repr__(self) -> str:
        return f"Rule({format_rule(self)})"


class Query:
    """A query ``? p(t1, ..., tn)`` — constants mark bound arguments."""

    __slots__ = ("atom",)

    def __init__(self, atom: Atom) -> None:
        self.atom = atom

    def adornment(self) -> str:
        """The b/f adornment string induced by the query's arguments."""
        return "".join("b" if a.is_ground() else "f" for a in self.atom.args)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Query) and self.atom == other.atom

    def __hash__(self) -> int:
        return hash((Query, self.atom))

    def __repr__(self) -> str:
        return f"Query(? {format_atom(self.atom)})"


class Program:
    """An ordered collection of rules with convenience accessors.

    Rule order never affects semantics (LDL is assertional, Section 1)
    but is preserved for printing and deterministic iteration.
    """

    __slots__ = ("rules",)

    def __init__(self, rules: Iterable[Rule] = ()) -> None:
        self.rules = tuple(rules)

    def __iter__(self) -> Iterator[Rule]:
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def __add__(self, other: "Program") -> "Program":
        return Program(self.rules + tuple(other.rules))

    def facts(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.is_fact())

    def proper_rules(self) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if not r.is_fact())

    def predicates(self) -> frozenset[str]:
        """All predicate symbols occurring anywhere in the program."""
        out: set[str] = set()
        for rule in self.rules:
            out.add(rule.head.pred)
            for lit in rule.body:
                out.add(lit.atom.pred)
        return frozenset(out)

    def idb_predicates(self) -> frozenset[str]:
        """Predicates defined by at least one non-fact rule head."""
        return frozenset(
            r.head.pred for r in self.rules if not r.is_fact()
        )

    def edb_predicates(self) -> frozenset[str]:
        """Predicates that occur only in facts or only in bodies."""
        return frozenset(
            p
            for p in self.predicates()
            if p not in self.idb_predicates() and not is_builtin_predicate(p)
        )

    def rules_for(self, pred: str) -> tuple[Rule, ...]:
        return tuple(r for r in self.rules if r.head.pred == pred)

    def is_positive(self) -> bool:
        """No negative body literal anywhere (Section 2.1)."""
        return all(
            lit.positive for rule in self.rules for lit in rule.body
        )

    def without_rules(self, drop: Sequence[Rule]) -> "Program":
        dropped = set(drop)
        return Program(r for r in self.rules if r not in dropped)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Program) and set(self.rules) == set(other.rules)

    def __hash__(self) -> int:
        return hash((Program, frozenset(self.rules)))

    def __repr__(self) -> str:
        return f"Program({len(self.rules)} rules)"


def fact(pred: str, *args: Term) -> Rule:
    """Build a ground fact rule ``pred(args).``"""
    return Rule(Atom(pred, args))


def canonical_atom(atom: Atom) -> Atom:
    """The atom with every argument evaluated to its U-element.

    Every path that stores base facts — in-memory evaluation, the
    incremental model, the durable store — must normalize through this
    one function, or the same session can compute different models
    depending on where its facts happen to live.  Raises
    :class:`~repro.errors.EvaluationError` on non-ground arguments.
    """
    return Atom(atom.pred, tuple(evaluate_ground(a) for a in atom.args))
