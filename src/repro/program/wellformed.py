"""Well-formedness and safety checks (paper Sections 2.1 and 7).

A rule containing ``<X>`` in the head is a *grouping rule*; it is
well-formed only when (W1) the body has no ``<X>`` occurrence, (W2) the
head has at most one ``<X>`` occurrence and it is a *direct* argument of
the head predicate, and (W3) every body literal is positive.

Section 7 additionally proposes the *safety* (range-restriction)
condition: every head variable, and every variable of a negative
literal, must be derivable from positive body literals — which also
guarantees grouped sets stay inside the (finite portion of the)
universe.  We implement the mode-aware version: built-ins may bind
variables once their required arguments are bound.
"""

from __future__ import annotations

from repro.errors import SafetyError, WellFormednessError
from repro.names import is_builtin_predicate
from repro.program.modes import modes_for
from repro.program.rule import Program, Rule
from repro.terms.pretty import format_rule
from repro.terms.term import GroupTerm, contains_group_term


def check_rule_wellformed(
    rule: Rule, allow_ldl15: bool = False, strict_w3: bool = False
) -> None:
    """Raise :class:`WellFormednessError` if ``rule`` breaks W1–W3.

    With ``allow_ldl15=True`` the LDL1.5 relaxations of Section 4 are
    accepted (``<t>`` in bodies, nested or multiple head groupings);
    those constructs must then be compiled away by
    :mod:`repro.transform` before evaluation.

    ``strict_w3`` enforces the Section 2.1 wording that grouping-rule
    bodies are all-positive.  The paper's own Section 6 running example
    (rule 5: ``young(X, <Y>) <- ~a(X, Z), sg(X, Y)``) breaks that
    restriction, and layering makes negation in grouping bodies
    unproblematic (every body predicate is strictly lower), so the
    default accepts it.
    """
    if allow_ldl15:
        return
    head_groups = [t for a in rule.head.args for t in a.walk() if isinstance(t, GroupTerm)]
    if head_groups:
        direct = rule.head.group_positions()
        if len(head_groups) > 1:
            raise WellFormednessError(
                f"more than one grouping term in head: {format_rule(rule)}"
            )
        if len(direct) != 1:
            raise WellFormednessError(
                "grouping term must be a direct head argument: "
                + format_rule(rule)
            )
        from repro.terms.term import Var

        if not isinstance(rule.head.args[direct[0]].inner, Var):
            raise WellFormednessError(
                "base LDL1 grouping must be over a single variable "
                f"(LDL1.5 form needs compilation): {format_rule(rule)}"
            )
        if strict_w3:
            for lit in rule.body:
                if lit.negative:
                    raise WellFormednessError(
                        "grouping rule with negative body literal (W3): "
                        + format_rule(rule)
                    )
    for lit in rule.body:
        if any(contains_group_term(a) for a in lit.atom.args):
            raise WellFormednessError(
                f"grouping term in rule body (LDL1.5 only): {format_rule(rule)}"
            )


def derivable_variables(rule: Rule) -> frozenset[str]:
    """Variables bindable by evaluating the body left-to-right in *some*
    order, honoring built-in modes.

    Runs the standard fixpoint: a positive non-built-in literal binds
    all of its variables; a built-in literal binds the variables of its
    ``produces`` positions once all variables of some mode's
    ``requires`` positions are bound.
    """
    bound: set[str] = set()
    changed = True
    while changed:
        changed = False
        for lit in rule.body:
            if lit.negative:
                continue
            if not is_builtin_predicate(lit.atom.pred):
                new = lit.atom.variables() - bound
                if new:
                    bound |= new
                    changed = True
                continue
            for mode in modes_for(lit.atom.pred):
                required_vars: set[str] = set()
                for pos in mode.requires:
                    if pos < len(lit.atom.args):
                        required_vars |= lit.atom.args[pos].variables()
                if required_vars <= bound:
                    produced: set[str] = set()
                    for pos in mode.produces:
                        if pos < len(lit.atom.args):
                            produced |= lit.atom.args[pos].variables()
                    new = produced - bound
                    if new:
                        bound |= new
                        changed = True
    return frozenset(bound)


def check_rule_safe(rule: Rule, strict: bool = False) -> None:
    """Raise :class:`SafetyError` when the rule is not range-restricted.

    ``strict=True`` applies the paper's literal Section 7 wording
    (every head variable / negative-literal variable occurs in a
    positive body literal); the default also credits variables bound
    through built-in modes.
    """
    if strict:
        bound: frozenset[str] = frozenset().union(
            *(
                lit.atom.variables()
                for lit in rule.body
                if lit.positive and not is_builtin_predicate(lit.atom.pred)
            )
        ) if rule.body else frozenset()
    else:
        bound = derivable_variables(rule)

    head_vars = rule.head.variables()
    unsafe_head = head_vars - bound
    if unsafe_head:
        raise SafetyError(
            f"head variables {sorted(unsafe_head)} not bound by the body: "
            + format_rule(rule)
        )
    for lit in rule.negative_body():
        loose = lit.atom.variables() - bound
        if loose:
            raise SafetyError(
                f"variables {sorted(loose)} of negated literal not bound: "
                + format_rule(rule)
            )


def check_program(
    program: Program,
    allow_ldl15: bool = False,
    strict_safety: bool = False,
    strict_w3: bool = False,
) -> None:
    """Check every rule of ``program`` for well-formedness and safety."""
    for rule in program.rules:
        check_rule_wellformed(rule, allow_ldl15=allow_ldl15, strict_w3=strict_w3)
        check_rule_safe(rule, strict=strict_safety)
    _check_builtin_heads(program)


def _check_builtin_heads(program: Program) -> None:
    """Built-in predicates have fixed interpretations and cannot be
    redefined by user rules (Section 2.2)."""
    for rule in program.rules:
        if is_builtin_predicate(rule.head.pred):
            raise WellFormednessError(
                f"cannot define built-in predicate {rule.head.pred!r}: "
                + format_rule(rule)
            )


def head_group_variable(rule: Rule) -> str | None:
    """The grouped variable name of a base-LDL1 grouping rule, or None."""
    positions = rule.head.group_positions()
    if not positions:
        return None
    inner = rule.head.args[positions[0]].inner
    from repro.terms.term import Var

    if isinstance(inner, Var):
        return inner.name
    return None
