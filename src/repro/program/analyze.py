"""Static program analysis report.

Summarizes what a program *is* before running it: predicate roles
(EDB/IDB/built-in usage), rule shapes (facts, recursive, grouping,
negated), the layering, and the strongly connected recursion
components.  Backs the CLI's ``--check`` output and is handy in tests
and notebooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.names import is_builtin_predicate
from repro.program.dependency import dependency_graph
from repro.program.rule import Program
from repro.program.stratify import Layering, stratify


@dataclass
class PredicateInfo:
    """Role and usage of one predicate."""

    name: str
    arity: int
    kind: str  # "edb" | "idb"
    layer: int
    rule_count: int = 0
    fact_count: int = 0
    negated_uses: int = 0
    grouped_over: bool = False


@dataclass
class ProgramReport:
    """The full analysis result."""

    rule_count: int
    fact_count: int
    layering: Layering
    predicates: dict[str, PredicateInfo] = field(default_factory=dict)
    recursive_components: list[frozenset[str]] = field(default_factory=list)
    grouping_rules: int = 0
    negated_literals: int = 0
    builtin_literals: int = 0

    def format(self) -> str:
        lines = [
            f"{self.rule_count} rules ({self.fact_count} facts), "
            f"{len(self.layering)} layers, "
            f"{self.grouping_rules} grouping rules, "
            f"{self.negated_literals} negated literals, "
            f"{self.builtin_literals} built-in literals",
        ]
        for i, layer in enumerate(self.layering):
            members = ", ".join(
                f"{p}/{self.predicates[p].arity}" for p in sorted(layer)
            )
            lines.append(f"layer {i}: {members or '(empty)'}")
        if self.recursive_components:
            joined = "; ".join(
                "{" + ", ".join(sorted(c)) + "}"
                for c in self.recursive_components
            )
            lines.append(f"recursive components: {joined}")
        return "\n".join(lines)


def analyze(program: Program) -> ProgramReport:
    """Compute a :class:`ProgramReport` for an admissible program."""
    layering = stratify(program)
    graph = dependency_graph(program)
    idb = program.idb_predicates()

    report = ProgramReport(
        rule_count=len(program),
        fact_count=len(program.facts()),
        layering=layering,
    )

    arities: dict[str, int] = {}
    for rule in program.rules:
        arities.setdefault(rule.head.pred, rule.head.arity)
        for lit in rule.body:
            if not is_builtin_predicate(lit.atom.pred):
                arities.setdefault(lit.atom.pred, lit.atom.arity)

    for pred, arity in arities.items():
        report.predicates[pred] = PredicateInfo(
            name=pred,
            arity=arity,
            kind="idb" if pred in idb else "edb",
            layer=layering.index(pred),
        )

    for rule in program.rules:
        info = report.predicates[rule.head.pred]
        if rule.is_fact():
            info.fact_count += 1
        else:
            info.rule_count += 1
        if rule.is_grouping():
            report.grouping_rules += 1
            for lit in rule.body:
                if not is_builtin_predicate(lit.atom.pred):
                    report.predicates[lit.atom.pred].grouped_over = True
        for lit in rule.body:
            if is_builtin_predicate(lit.atom.pred):
                report.builtin_literals += 1
                continue
            if lit.negative:
                report.negated_literals += 1
                report.predicates[lit.atom.pred].negated_uses += 1

    for component in nx.strongly_connected_components(graph):
        if len(component) > 1:
            report.recursive_components.append(frozenset(component))
        else:
            (member,) = component
            if graph.has_edge(member, member):
                report.recursive_components.append(frozenset(component))
    report.recursive_components.sort(key=lambda c: sorted(c))
    return report
