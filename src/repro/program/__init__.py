"""Rules, programs, well-formedness, dependency analysis, layering."""

from repro.program.analyze import PredicateInfo, ProgramReport, analyze
from repro.program.dependency import (
    DependencyEdge,
    dependency_graph,
    depends_on,
    is_admissible,
    rule_edges,
    strict_cycle,
)
from repro.program.modes import BUILTIN_MODES, Mode, modes_for
from repro.program.rule import Atom, Literal, Program, Query, Rule, fact
from repro.program.stratify import (
    Layering,
    linear_layerings,
    stratify,
    validate_layering,
)
from repro.program.wellformed import (
    check_program,
    check_rule_safe,
    check_rule_wellformed,
    derivable_variables,
    head_group_variable,
)

__all__ = [
    "Atom",
    "PredicateInfo",
    "ProgramReport",
    "analyze",
    "BUILTIN_MODES",
    "DependencyEdge",
    "Layering",
    "Literal",
    "Mode",
    "Program",
    "Query",
    "Rule",
    "check_program",
    "check_rule_safe",
    "check_rule_wellformed",
    "dependency_graph",
    "depends_on",
    "derivable_variables",
    "fact",
    "head_group_variable",
    "is_admissible",
    "linear_layerings",
    "modes_for",
    "rule_edges",
    "stratify",
    "strict_cycle",
    "validate_layering",
]
