"""Admissibility and layering (stratification) — paper Section 3.1.

A *layering* of program P is a partition ``L0, ..., Lm`` of its
predicate symbols such that ``p >= q`` implies ``layer(p) >= layer(q)``
and ``p > q`` implies ``layer(p) > layer(q)``.  Lemma 3.1: P is
admissible iff a layering exists.  The canonical layering computed here
assigns each predicate the least layer index consistent with the
constraints; Theorem 2 guarantees any layering yields the same model,
and :func:`linear_layerings` produces alternatives for testing exactly
that.
"""

from __future__ import annotations

from itertools import islice
from typing import Iterable, Iterator, Mapping

import networkx as nx

from repro.errors import NotAdmissibleError
from repro.names import is_builtin_predicate
from repro.program.dependency import dependency_graph, rule_edges, strict_cycle
from repro.program.rule import Program, Rule


class Layering:
    """A validated layering: tuple of predicate layers, lowest first."""

    __slots__ = ("layers", "_index")

    def __init__(self, layers: Iterable[frozenset[str]]) -> None:
        self.layers = tuple(frozenset(layer) for layer in layers)
        self._index: dict[str, int] = {}
        for i, layer in enumerate(self.layers):
            for pred in layer:
                if pred in self._index:
                    raise ValueError(f"predicate {pred!r} in two layers")
                self._index[pred] = i

    def __len__(self) -> int:
        return len(self.layers)

    def __iter__(self) -> Iterator[frozenset[str]]:
        return iter(self.layers)

    def index(self, pred: str) -> int:
        """Layer index of ``pred``; unknown predicates sit in layer 0."""
        return self._index.get(pred, 0)

    def rules_in_layer(self, program: Program, i: int) -> tuple[Rule, ...]:
        """Rules whose head predicate lies in layer ``i``."""
        return tuple(
            r for r in program.rules if self.index(r.head.pred) == i
        )

    def as_mapping(self) -> Mapping[str, int]:
        return dict(self._index)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Layering) and self.layers == other.layers

    def __repr__(self) -> str:
        parts = "; ".join(
            "{" + ", ".join(sorted(layer)) + "}" for layer in self.layers
        )
        return f"Layering([{parts}])"


def stratify(program: Program) -> Layering:
    """Compute the canonical (least-index) layering of ``program``.

    Raises :class:`NotAdmissibleError` when no layering exists, naming
    the offending predicate cycle.
    """
    graph = dependency_graph(program)
    cycle = strict_cycle(graph)
    if cycle is not None:
        raise NotAdmissibleError(
            "program is not admissible: strict dependency cycle through "
            + ", ".join(cycle),
            cycle=cycle,
        )
    condensation = nx.condensation(graph)
    level: dict[int, int] = {}
    for node in reversed(list(nx.topological_sort(condensation))):
        best = 0
        members = condensation.nodes[node]["members"]
        for succ in condensation.successors(node):
            bump = _any_strict_between(
                graph, members, condensation.nodes[succ]["members"]
            )
            best = max(best, level[succ] + (1 if bump else 0))
        level[node] = best
    pred_level: dict[str, int] = {}
    for node, lvl in level.items():
        for pred in condensation.nodes[node]["members"]:
            pred_level[pred] = lvl
    if not pred_level:
        return Layering([frozenset()])
    height = max(pred_level.values())
    layers = [
        frozenset(p for p, l in pred_level.items() if l == i)
        for i in range(height + 1)
    ]
    return Layering(layers)


def _any_strict_between(
    graph: nx.DiGraph, sources: Iterable[str], targets: Iterable[str]
) -> bool:
    target_set = set(targets)
    for u in sources:
        for v in graph.successors(u):
            if v in target_set and graph[u][v]["strict"]:
                return True
    return False


def validate_layering(program: Program, layering: Layering) -> bool:
    """Check a user-supplied layering against the Section 3.1 conditions."""
    for rule in program.rules:
        for edge in rule_edges(rule):
            head_layer = layering.index(edge.head)
            body_layer = layering.index(edge.body)
            if edge.strict:
                if not head_layer > body_layer:
                    return False
            elif not head_layer >= body_layer:
                return False
    covered = set().union(*layering.layers) if layering.layers else set()
    wanted = {
        p for p in program.predicates() if not is_builtin_predicate(p)
    }
    return wanted <= covered


def linear_layerings(program: Program, limit: int = 10) -> list[Layering]:
    """Alternative valid layerings: one SCC per layer, per topological
    order of the condensation (used to exercise Theorem 2).

    Returns at most ``limit`` layerings, always including at least one.
    """
    graph = dependency_graph(program)
    if strict_cycle(graph) is not None:
        raise NotAdmissibleError("program is not admissible")
    condensation = nx.condensation(graph)
    reversed_condensation = condensation.reverse(copy=True)
    layerings: list[Layering] = []
    for order in islice(nx.all_topological_sorts(reversed_condensation), limit):
        layers = [
            frozenset(condensation.nodes[node]["members"]) for node in order
        ]
        candidate = Layering(layers)
        if validate_layering(program, candidate):
            layerings.append(candidate)
    return layerings
