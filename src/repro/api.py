"""High-level session API for the LDL1 system.

:class:`LDL` is the facade a downstream user works with: load rules in
concrete syntax (LDL1 or LDL1.5), add facts from plain Python values,
and run queries under any evaluation strategy::

    from repro import LDL

    db = LDL('''
        ancestor(X, Y) <- parent(X, Y).
        ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
    ''')
    db.facts("parent", [("ann", "bob"), ("bob", "carl")])
    db.query("? ancestor(ann, X).")
    # [{'X': 'bob'}, {'X': 'carl'}]
    db.query("? ancestor(ann, X).", strategy="magic")  # same answers

Python values convert to terms (ints/floats/strs to constants,
(frozen)sets to set values, tuples to tuple terms) and back.

Durability: ``LDL(path="mydb")`` binds the session to a
:class:`repro.storage.DurableStore` directory.  Facts added through the
session are write-ahead-logged before the model is repaired, a restart
with the same rules restores the computed model from the last snapshot
without re-running the fixpoint, and ``ldl.checkpoint()`` compacts the
log into a fresh snapshot.

Observability: ``LDL(trace=True)`` attaches a
:class:`repro.observe.TraceRecorder` (available as :attr:`LDL.trace`)
that records every engine event — plans built, layers, iterations, rule
firings, facts derived; ``LDL(hooks=...)`` plugs in any custom
:class:`repro.observe.EngineHooks` implementation.  Both apply to every
evaluation the session runs (bottom-up and magic).

Thread-safety: every state transition (loading rules, adding/removing
facts, computing or invalidating the cached model, checkpointing)
holds one reentrant session lock, so interleaved calls from several
threads never corrupt the session.  Pure reads of an already-computed
model run lock-free; callers that need reads to overlap *updates*
coherently should layer a reader-writer discipline on top, as
:class:`repro.server.LDLServer` does.
"""

from __future__ import annotations

import threading
from typing import Iterable, Literal as TypingLiteral, Sequence

from repro.engine.database import Database
from repro.engine.evaluator import EvaluationResult, evaluate
from repro.engine.maintain import Invalidation
from repro.errors import EvaluationError
from repro.magic.evaluate import MagicResult, evaluate_magic
from repro.observe import EngineHooks, MetricsCollector, TraceRecorder, compose_hooks
from repro.parser.parser import parse_program, parse_query
from repro.program.rule import Atom, Program, Query, canonical_atom
from repro.terms.term import Const, Func, SetVal, Term

Strategy = TypingLiteral["naive", "seminaive", "magic"]


def to_term(value) -> Term:
    """Convert a Python value to a ground LDL1 term.

    int/float/str become constants, (frozen)sets become set values,
    tuples become ``tuple(...)`` terms; terms pass through.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, (set, frozenset)):
        return SetVal(to_term(v) for v in value)
    if isinstance(value, tuple):
        # 1-tuples stay tuple terms so they round-trip through
        # from_term instead of unifying with their bare element.
        if not value:
            raise TypeError("empty tuples have no LDL1 term representation")
        return Func("tuple", tuple(to_term(v) for v in value))
    if isinstance(value, bool):
        raise TypeError("booleans are not LDL1 constants")
    if isinstance(value, (int, float, str)):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to an LDL1 term")


def from_term(term: Term):
    """Convert a ground term back to a Python value.

    Constants unwrap to their payload, set values to frozensets, tuple
    terms to tuples; other compound terms stay as terms.
    """
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SetVal):
        return frozenset(from_term(e) for e in term)
    if isinstance(term, Func) and term.functor == "tuple":
        return tuple(from_term(a) for a in term.args)
    return term


class LDL:
    """An LDL1 database session: rules + facts + query evaluation."""

    def __init__(
        self,
        source: str = "",
        ldl15: bool = False,
        alternative_semantics: bool = False,
        hooks: EngineHooks | None = None,
        trace: bool = False,
        path: str | None = None,
        fsync: str = "always",
        compact_every: int = 1024,
        metrics: MetricsCollector | None = None,
        maintain: str | None = None,
        workers: int | None = None,
    ) -> None:
        self._lock = threading.RLock()
        self._program = Program()
        self._edb: list[Atom] = []
        self._pending_queries: list[Query] = []
        self._ldl15 = ldl15
        self._alternative = alternative_semantics
        self._cached_result: EvaluationResult | None = None
        self._trace: TraceRecorder | None = TraceRecorder() if trace else None
        self._hooks = compose_hooks(hooks, self._trace)
        self._path = path
        self._fsync = fsync
        self._compact_every = compact_every
        self._metrics = metrics
        # how the durable session's model absorbs updates: "delta"
        # (differential maintenance) or "recompute" (cone recompute);
        # None defers to the process default (REPRO_MAINTAIN).
        self._maintain = maintain
        # partitioned-evaluation worker count; None defers to the
        # process default (REPRO_WORKERS, normally 1 — serial).  Only
        # in-memory model computation parallelizes; a tracing session
        # stays serial (per-fact hook order is serial-only).
        self._workers = workers
        # invalidation listeners: registered on the durable model (and
        # re-registered whenever rules force it to reopen), notified
        # directly for in-memory updates and rule loads.
        self._delta_listeners: list = []
        self._store = None  # DurableStore, opened lazily
        if source:
            self.load(source)
        if path is not None:
            self._open_store()

    @property
    def trace(self) -> TraceRecorder | None:
        """The session's trace recorder (``LDL(trace=True)``), or None."""
        return self._trace

    @property
    def lock(self) -> threading.RLock:
        """The session's reentrant lock (exposed for coordinators)."""
        return self._lock

    # -- durability --------------------------------------------------------

    @property
    def store(self):
        """The session's :class:`~repro.storage.DurableStore`, or None."""
        return self._store

    def _open_store(self) -> None:
        from repro.storage.store import DurableStore

        buffered, self._edb = self._edb, []
        self._store = DurableStore(
            self.program,
            self._path,
            fsync=self._fsync,
            compact_every=self._compact_every,
            hooks=self._hooks,
            metrics=self._metrics,
            maintain=self._maintain,
        ).open()
        for listener in self._delta_listeners:
            self._store.model.add_delta_listener(listener)
        if buffered:
            self._store.add_facts(buffered)

    def _reopen_store(self) -> None:
        """Rules changed: reopen so the store recomputes under them."""
        self._store.close()
        self._store = None
        self._open_store()

    def checkpoint(self) -> int:
        """Snapshot the durable session's model and compact its WAL.

        Returns bytes written; raises when the session has no ``path``.
        """
        with self._lock:
            if self._store is None:
                raise EvaluationError(
                    "checkpoint() needs a durable session (path=...)"
                )
            return self._store.checkpoint()

    def close(self) -> None:
        """Release the durable store (no-op for in-memory sessions)."""
        with self._lock:
            if self._store is not None:
                self._store.close()
                self._store = None

    def __enter__(self) -> "LDL":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- building the database -------------------------------------------

    def load(self, source: str) -> "LDL":
        """Parse and append rules; queries in the source are stored and
        available via :meth:`run_pending_queries`."""
        parsed = parse_program(source)
        with self._lock:
            self._program = self._program + parsed.program
            self._pending_queries.extend(parsed.queries)
            self._invalidate()
            if self._store is not None and len(parsed.program):
                self._reopen_store()
            if len(parsed.program):
                # rules changed: every cached answer is suspect
                self._notify_delta(Invalidation(preds=None, precise=False))
        return self

    def fact(self, pred: str, *values) -> "LDL":
        """Add one fact from Python values: ``db.fact("parent", "a", "b")``."""
        return self.add_atoms([Atom(pred, tuple(to_term(v) for v in values))])

    def facts(self, pred: str, rows: Iterable[Sequence]) -> "LDL":
        """Add many facts: ``db.facts("edge", [(1, 2), (2, 3)])``."""
        return self.add_atoms(
            [Atom(pred, tuple(to_term(v) for v in row)) for row in rows]
        )

    def add_atoms(self, atoms: Iterable[Atom]) -> "LDL":
        """Add pre-built ground atoms (e.g. from a workload generator).

        In a durable session the batch is WAL-logged before the model
        is repaired, so it survives a crash as one atomic unit.
        """
        atoms = list(atoms)
        with self._lock:
            if self._store is not None:
                self._store.add_facts(atoms)
            else:
                self._edb.extend(atoms)
                self._notify_delta(
                    Invalidation(
                        preds=frozenset(a.pred for a in atoms), precise=False
                    )
                )
            self._invalidate()
        return self

    def remove(self, pred: str, *values) -> "LDL":
        """Delete one base fact: ``db.remove("parent", "a", "b")``."""
        return self.remove_atoms([Atom(pred, tuple(to_term(v) for v in values))])

    def remove_atoms(self, atoms: Iterable[Atom]) -> "LDL":
        """Delete base facts; unknown facts are ignored."""
        atoms = list(atoms)
        with self._lock:
            if self._store is not None:
                self._store.remove_facts(atoms)
            else:
                victims = {canonical_atom(a) for a in atoms}
                self._edb = [
                    a for a in self._edb if canonical_atom(a) not in victims
                ]
                self._notify_delta(
                    Invalidation(
                        preds=frozenset(a.pred for a in atoms), precise=False
                    )
                )
            self._invalidate()
        return self

    def _invalidate(self) -> None:
        self._cached_result = None

    def _edb_atoms(self) -> list[Atom]:
        """The session's base facts, wherever they live."""
        with self._lock:
            if self._store is not None:
                return list(self._store.edb_facts)
            return list(self._edb)

    @property
    def edb_size(self) -> int:
        """How many base facts the session currently holds."""
        return len(self._edb_atoms())

    @property
    def pending_queries(self) -> tuple[Query, ...]:
        """Queries that arrived inside loaded sources, in order."""
        return tuple(self._pending_queries)

    @property
    def program(self) -> Program:
        """The loaded rules, compiled to base LDL1 if needed."""
        if self._ldl15:
            from repro.transform import compile_ldl15

            return compile_ldl15(self._program, alternative=self._alternative)
        return self._program

    # -- evaluation --------------------------------------------------------

    def model(self, strategy: Strategy = "seminaive") -> EvaluationResult:
        """Compute (and cache) the standard minimal model.

        A durable session serves the store's incrementally maintained
        model (always current — the ``strategy`` only matters for
        in-memory evaluation).
        """
        if strategy == "magic":
            raise EvaluationError("magic evaluation is per-query; use query()")
        with self._lock:
            if self._store is not None:
                return EvaluationResult(
                    self._store.database,
                    self._store.model.layering,
                    [],
                    strategy,
                )
            if (
                self._cached_result is None
                or self._cached_result.strategy != strategy
            ):
                self._cached_result = evaluate(
                    self.program,
                    edb=self._edb,
                    strategy=strategy,
                    hooks=self._hooks,
                    workers=self._workers,
                )
            return self._cached_result

    def database(self, strategy: Strategy = "seminaive") -> Database:
        return self.model(strategy).database

    def query(
        self, text: str | Query, strategy: Strategy = "seminaive"
    ) -> list[dict]:
        """Answer a query; returns one dict of Python values per answer."""
        query = text if isinstance(text, Query) else parse_query(text)
        if strategy == "magic":
            bindings = self.query_magic(query).answers()
        else:
            bindings = self.model(strategy).answers(query)
        return [
            {name: from_term(value) for name, value in binding.items()}
            for binding in bindings
        ]

    def query_magic(self, text: str | Query) -> MagicResult:
        """Answer a query by magic-sets rewriting; returns the full
        :class:`MagicResult` (database, stats, rewritten program)."""
        query = text if isinstance(text, Query) else parse_query(text)
        return evaluate_magic(
            self.program, query, edb=self._edb_atoms(), hooks=self._hooks
        )

    def on_demand_rows(self, text: str | Query) -> tuple[tuple, ...]:
        """Answer rows for a query, computed on demand via magic sets.

        The population path of the server's
        :class:`~repro.server.cache.AnswerCache`: returns the sorted
        ground argument rows of the matching answer atoms instead of
        variable bindings (see
        :func:`repro.magic.evaluate.on_demand_rows`).
        """
        from repro.magic.evaluate import on_demand_rows

        query = text if isinstance(text, Query) else parse_query(text)
        return on_demand_rows(
            self.program, query, edb=self._edb_atoms(), hooks=self._hooks
        )

    def add_delta_listener(self, listener) -> None:
        """Register ``listener(invalidation)`` for every state change.

        The listener receives an
        :class:`~repro.engine.maintain.Invalidation` after every
        completed update: precise LSN-stamped predicate sets from the
        durable model's delta maintenance, conservative predicate sets
        for in-memory updates, and a wholesale event (``preds=None``)
        when :meth:`load` changes the rules.  Registration survives the
        store reopening on rule changes.
        """
        with self._lock:
            self._delta_listeners.append(listener)
            if self._store is not None:
                self._store.model.add_delta_listener(listener)

    def _notify_delta(self, invalidation: Invalidation) -> None:
        for listener in self._delta_listeners:
            listener(invalidation)

    def run_pending_queries(self, strategy: Strategy = "seminaive"):
        """Answer every query that arrived via :meth:`load`, in order."""
        return [
            (query, self.query(query, strategy=strategy))
            for query in self._pending_queries
        ]

    def explain(self, fact_text: str, strategy: Strategy = "seminaive"):
        """A derivation tree for a fact of the model, or None.

        ``fact_text`` is a ground atom in concrete syntax, e.g.
        ``"ancestor(ann, carl)"``; see
        :class:`repro.engine.explain.Derivation`.
        """
        from repro.engine.explain import explain
        from repro.parser.parser import parse_atom

        atom = parse_atom(fact_text.rstrip(". \n"))
        fact = canonical_atom(atom)
        result = self.model(strategy)
        # share the evaluation's plan cache so explanation re-solves
        # bodies with exactly the plans evaluation used (None for the
        # durable-store path, where explain builds a private context).
        return explain(
            self.program, result.database, fact, context=result.context
        )

    def extension(self, pred: str, strategy: Strategy = "seminaive") -> list[tuple]:
        """The computed extension of one predicate as Python tuples."""
        db = self.database(strategy)
        return sorted(
            (tuple(from_term(a) for a in atom.args) for atom in db.atoms(pred)),
            key=repr,
        )

    def __repr__(self) -> str:
        facts = len(self._edb_atoms()) if self._store is not None else len(self._edb)
        durable = f", durable at {self._path!r}" if self._path else ""
        return f"LDL({len(self._program)} rules, {facts} facts{durable})"
