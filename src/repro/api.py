"""High-level session API for the LDL1 system.

:class:`LDL` is the facade a downstream user works with: load rules in
concrete syntax (LDL1 or LDL1.5), add facts from plain Python values,
and run queries under any evaluation strategy::

    from repro import LDL

    db = LDL('''
        ancestor(X, Y) <- parent(X, Y).
        ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
    ''')
    db.facts("parent", [("ann", "bob"), ("bob", "carl")])
    db.query("? ancestor(ann, X).")
    # [{'X': 'bob'}, {'X': 'carl'}]
    db.query("? ancestor(ann, X).", strategy="magic")  # same answers

Python values convert to terms (ints/floats/strs to constants,
(frozen)sets to set values, tuples to tuple terms) and back.

Observability: ``LDL(trace=True)`` attaches a
:class:`repro.observe.TraceRecorder` (available as :attr:`LDL.trace`)
that records every engine event — plans built, layers, iterations, rule
firings, facts derived; ``LDL(hooks=...)`` plugs in any custom
:class:`repro.observe.EngineHooks` implementation.  Both apply to every
evaluation the session runs (bottom-up and magic).
"""

from __future__ import annotations

from typing import Iterable, Literal as TypingLiteral, Sequence

from repro.engine.database import Database
from repro.engine.evaluator import EvaluationResult, evaluate
from repro.errors import EvaluationError
from repro.magic.evaluate import MagicResult, evaluate_magic
from repro.observe import EngineHooks, TraceRecorder, compose_hooks
from repro.parser.parser import parse_program, parse_query
from repro.program.rule import Atom, Program, Query
from repro.terms.term import Const, Func, SetVal, Term

Strategy = TypingLiteral["naive", "seminaive", "magic"]


def to_term(value) -> Term:
    """Convert a Python value to a ground LDL1 term.

    int/float/str become constants, (frozen)sets become set values,
    tuples become ``tuple(...)`` terms; terms pass through.
    """
    if isinstance(value, Term):
        return value
    if isinstance(value, (set, frozenset)):
        return SetVal(to_term(v) for v in value)
    if isinstance(value, tuple):
        if len(value) == 1:
            return to_term(value[0])
        return Func("tuple", tuple(to_term(v) for v in value))
    if isinstance(value, bool):
        raise TypeError("booleans are not LDL1 constants")
    if isinstance(value, (int, float, str)):
        return Const(value)
    raise TypeError(f"cannot convert {value!r} to an LDL1 term")


def from_term(term: Term):
    """Convert a ground term back to a Python value.

    Constants unwrap to their payload, set values to frozensets, tuple
    terms to tuples; other compound terms stay as terms.
    """
    if isinstance(term, Const):
        return term.value
    if isinstance(term, SetVal):
        return frozenset(from_term(e) for e in term)
    if isinstance(term, Func) and term.functor == "tuple":
        return tuple(from_term(a) for a in term.args)
    return term


class LDL:
    """An LDL1 database session: rules + facts + query evaluation."""

    def __init__(
        self,
        source: str = "",
        ldl15: bool = False,
        alternative_semantics: bool = False,
        hooks: EngineHooks | None = None,
        trace: bool = False,
    ) -> None:
        self._program = Program()
        self._edb: list[Atom] = []
        self._pending_queries: list[Query] = []
        self._ldl15 = ldl15
        self._alternative = alternative_semantics
        self._cached_result: EvaluationResult | None = None
        self._trace: TraceRecorder | None = TraceRecorder() if trace else None
        self._hooks = compose_hooks(hooks, self._trace)
        if source:
            self.load(source)

    @property
    def trace(self) -> TraceRecorder | None:
        """The session's trace recorder (``LDL(trace=True)``), or None."""
        return self._trace

    # -- building the database -------------------------------------------

    def load(self, source: str) -> "LDL":
        """Parse and append rules; queries in the source are stored and
        available via :meth:`run_pending_queries`."""
        parsed = parse_program(source)
        self._program = self._program + parsed.program
        self._pending_queries.extend(parsed.queries)
        self._invalidate()
        return self

    def fact(self, pred: str, *values) -> "LDL":
        """Add one fact from Python values: ``db.fact("parent", "a", "b")``."""
        self._edb.append(Atom(pred, tuple(to_term(v) for v in values)))
        self._invalidate()
        return self

    def facts(self, pred: str, rows: Iterable[Sequence]) -> "LDL":
        """Add many facts: ``db.facts("edge", [(1, 2), (2, 3)])``."""
        for row in rows:
            self._edb.append(Atom(pred, tuple(to_term(v) for v in row)))
        self._invalidate()
        return self

    def add_atoms(self, atoms: Iterable[Atom]) -> "LDL":
        """Add pre-built ground atoms (e.g. from a workload generator)."""
        self._edb.extend(atoms)
        self._invalidate()
        return self

    def _invalidate(self) -> None:
        self._cached_result = None

    @property
    def pending_queries(self) -> tuple[Query, ...]:
        """Queries that arrived inside loaded sources, in order."""
        return tuple(self._pending_queries)

    @property
    def program(self) -> Program:
        """The loaded rules, compiled to base LDL1 if needed."""
        if self._ldl15:
            from repro.transform import compile_ldl15

            return compile_ldl15(self._program, alternative=self._alternative)
        return self._program

    # -- evaluation --------------------------------------------------------

    def model(self, strategy: Strategy = "seminaive") -> EvaluationResult:
        """Compute (and cache) the standard minimal model."""
        if strategy == "magic":
            raise EvaluationError("magic evaluation is per-query; use query()")
        if self._cached_result is None or self._cached_result.strategy != strategy:
            self._cached_result = evaluate(
                self.program, edb=self._edb, strategy=strategy, hooks=self._hooks
            )
        return self._cached_result

    def database(self, strategy: Strategy = "seminaive") -> Database:
        return self.model(strategy).database

    def query(
        self, text: str | Query, strategy: Strategy = "seminaive"
    ) -> list[dict]:
        """Answer a query; returns one dict of Python values per answer."""
        query = text if isinstance(text, Query) else parse_query(text)
        if strategy == "magic":
            bindings = self.query_magic(query).answers()
        else:
            bindings = self.model(strategy).answers(query)
        return [
            {name: from_term(value) for name, value in binding.items()}
            for binding in bindings
        ]

    def query_magic(self, text: str | Query) -> MagicResult:
        """Answer a query by magic-sets rewriting; returns the full
        :class:`MagicResult` (database, stats, rewritten program)."""
        query = text if isinstance(text, Query) else parse_query(text)
        return evaluate_magic(
            self.program, query, edb=self._edb, hooks=self._hooks
        )

    def run_pending_queries(self, strategy: Strategy = "seminaive"):
        """Answer every query that arrived via :meth:`load`, in order."""
        return [
            (query, self.query(query, strategy=strategy))
            for query in self._pending_queries
        ]

    def explain(self, fact_text: str, strategy: Strategy = "seminaive"):
        """A derivation tree for a fact of the model, or None.

        ``fact_text`` is a ground atom in concrete syntax, e.g.
        ``"ancestor(ann, carl)"``; see
        :class:`repro.engine.explain.Derivation`.
        """
        from repro.engine.explain import explain
        from repro.parser.parser import parse_atom
        from repro.terms.term import evaluate_ground

        atom = parse_atom(fact_text.rstrip(". \n"))
        fact = Atom(atom.pred, tuple(evaluate_ground(a) for a in atom.args))
        return explain(self.program, self.database(strategy), fact)

    def extension(self, pred: str, strategy: Strategy = "seminaive") -> list[tuple]:
        """The computed extension of one predicate as Python tuples."""
        db = self.database(strategy)
        return sorted(
            (tuple(from_term(a) for a in atom.args) for atom in db.atoms(pred)),
            key=repr,
        )

    def __repr__(self) -> str:
        return f"LDL({len(self._program)} rules, {len(self._edb)} facts)"
