"""LDL1.5 complex body terms: ``<t>`` in rule bodies (paper Section 4.1).

A body occurrence ``p(... <t> ...)`` matches only tuples whose
corresponding entry is a set of *uniform structure* ``t``, with the
variables of ``t`` ranging over the set's elements.  E.g. ``p(<<X>>)``
matches ``p({{1,2}, {3}})`` (every element a set, ``X`` ranging over
inner elements) but not ``p({{1,2}, 3})``.

The paper compiles such occurrences into plain LDL1 by (1) replacing
``<t>`` with a fresh variable ``S``, (2) appending a ``member`` literal
so ``t`` ranges over S's elements, and (3) adding rules that enforce
the uniform structure.  The paper's printed rule set for step (3) is
schematic (its ``collect`` rule is not range-restricted); this module
realizes the same three guarantees with executable LDL1:

* a *domain* rule collects the sets that can flow to the rewritten
  position,
* a grouping rule collects, per such set, the elements matching the
  shape of ``t`` (nested group positions must be sets — tested with
  ``card``),
* the structure is uniform iff the matching elements exhaust the set
  (equal cardinalities),

recursing into nested ``<u>`` occurrences with inner-set domains
derived from the outer ones.
"""

from __future__ import annotations

from repro.errors import WellFormednessError
from repro.names import FreshNames, is_builtin_predicate
from repro.program.rule import Atom, Literal, Program, Rule
from repro.terms.pretty import format_rule
from repro.terms.term import (
    Func,
    GroupTerm,
    SetPattern,
    Term,
    Var,
    contains_group_term,
)


class _Compiler:
    def __init__(self, program: Program) -> None:
        self._fresh_preds = FreshNames(program.predicates(), prefix="bs")
        self._var_counter = 0
        self.extra_rules: list[Rule] = []

    def fresh_var(self, stem: str = "S") -> Var:
        self._var_counter += 1
        return Var(f"_{stem}{self._var_counter}")

    # -- term surgery ---------------------------------------------------

    def strip_groups(self, term: Term) -> tuple[Term, list[tuple[Var, Term]]]:
        """Replace each top-level ``<u>`` inside ``term`` with a fresh
        variable; returns the stripped term and (var, u) pairs."""
        replaced: list[tuple[Var, Term]] = []

        def walk(t: Term) -> Term:
            if isinstance(t, GroupTerm):
                var = self.fresh_var("G")
                replaced.append((var, t.inner))
                return var
            if isinstance(t, Func):
                return Func(t.functor, tuple(walk(a) for a in t.args))
            if isinstance(t, SetPattern):
                rest = None if t.rest is None else walk(t.rest)
                return SetPattern(tuple(walk(i) for i in t.items), rest)
            return t

        return walk(term), replaced

    def rename_vars(self, term: Term) -> Term:
        """A copy of ``term`` with every variable consistently renamed
        fresh (used for shape patterns that must not capture rule
        variables)."""
        mapping: dict[str, Var] = {}

        def walk(t: Term) -> Term:
            if isinstance(t, Var):
                if t.name not in mapping:
                    mapping[t.name] = self.fresh_var("R")
                return mapping[t.name]
            if isinstance(t, Func):
                return Func(t.functor, tuple(walk(a) for a in t.args))
            if isinstance(t, SetPattern):
                rest = None if t.rest is None else walk(t.rest)
                return SetPattern(tuple(walk(i) for i in t.items), rest)
            if isinstance(t, GroupTerm):
                return GroupTerm(walk(t.inner))
            return t

        return walk(term)

    # -- the three guarantees --------------------------------------------

    def range_literals(self, pattern: Term, set_var: Var) -> list[Literal]:
        """Literals making ``pattern``'s variables range over the
        elements of ``set_var`` (guarantee 2), recursively."""
        stripped, nested = self.strip_groups(pattern)
        out = [Literal(Atom("member", (stripped, set_var)))]
        for inner_var, inner_pattern in nested:
            out.extend(self.range_literals(inner_pattern, inner_var))
        return out

    def uniformity_rules(self, pattern: Term, dom_pred: str) -> str:
        """Rules checking every element of a ``dom_pred`` set matches
        the shape of ``pattern`` (guarantee 3).  Returns the name of the
        check predicate ``ok(S)``.

        An element matches when it equals the shape of ``pattern`` (with
        nested group slots holding *sets* that recursively pass their
        own uniformity check); the set is uniform when the matching
        elements exhaust it (equal cardinalities).
        """
        shape, nested = self.strip_groups(self.rename_vars(pattern))
        # recurse first: inner domains project the nested slots out of
        # the outer domain's sets, and inner checks constrain the grp
        # rule below.  strip_groups enumerates slots in deterministic
        # pre-order, so slot i of a second stripping aligns with slot i.
        inner_checks: list[tuple[Var, str]] = []
        for slot, (inner_var, inner_pattern) in enumerate(nested):
            inner_dom = self._fresh_preds.fresh("bs_dom")
            projection_shape, projection_slots = self.strip_groups(
                self.rename_vars(pattern)
            )
            projection_var = projection_slots[slot][0]
            outer_set = self.fresh_var("V")
            self.extra_rules.append(
                Rule(
                    Atom(inner_dom, (projection_var,)),
                    [
                        Literal(Atom(dom_pred, (outer_set,))),
                        Literal(Atom("member", (projection_shape, outer_set))),
                        Literal(
                            Atom("card", (projection_var, self.fresh_var("N")))
                        ),
                    ],
                )
            )
            inner_ok = self.uniformity_rules(inner_pattern, inner_dom)
            inner_checks.append((inner_var, inner_ok))

        grp = self._fresh_preds.fresh("bs_grp")
        ok = self._fresh_preds.fresh("bs_ok")
        set_var = self.fresh_var("D")
        element = self.fresh_var("E")
        body: list[Literal] = [
            Literal(Atom(dom_pred, (set_var,))),
            Literal(Atom("member", (element, set_var))),
            Literal(Atom("=", (element, shape))),
        ]
        for inner_var, inner_ok in inner_checks:
            # the nested slot must be a set and recursively uniform
            body.append(Literal(Atom("card", (inner_var, self.fresh_var("N")))))
            body.append(Literal(Atom(inner_ok, (inner_var,))))
        self.extra_rules.append(
            Rule(Atom(grp, (set_var, GroupTerm(element))), body)
        )
        matched = self.fresh_var("M")
        count = self.fresh_var("N")
        self.extra_rules.append(
            Rule(
                Atom(ok, (set_var,)),
                [
                    Literal(Atom(grp, (set_var, matched))),
                    Literal(Atom("card", (matched, count))),
                    Literal(Atom("card", (set_var, count))),
                ],
            )
        )
        return ok


def _anonymize_except(
    compiler: _Compiler, atom: Atom, keep: Var
) -> Atom:
    """Copy of ``atom`` with every variable other than ``keep`` renamed
    fresh — used to build position-domain rules."""

    mapping: dict[str, Var] = {}

    def walk(t: Term) -> Term:
        if isinstance(t, Var):
            if t == keep:
                return t
            if t.name not in mapping:
                mapping[t.name] = compiler.fresh_var("A")
            return mapping[t.name]
        if isinstance(t, Func):
            return Func(t.functor, tuple(walk(a) for a in t.args))
        if isinstance(t, SetPattern):
            rest = None if t.rest is None else walk(t.rest)
            return SetPattern(tuple(walk(i) for i in t.items), rest)
        return t

    return Atom(atom.pred, tuple(walk(a) for a in atom.args))


def compile_body_sets(program: Program) -> Program:
    """Compile every body ``<t>`` occurrence into plain LDL1.

    Only positive, non-built-in body literals may carry grouping terms
    (a negated or built-in occurrence has no defining extension to take
    the domain from); anything else raises
    :class:`WellFormednessError`.
    """
    compiler = _Compiler(program)
    rewritten: list[Rule] = []
    for rule in program.rules:
        if not any(
            contains_group_term(arg)
            for lit in rule.body
            for arg in lit.atom.args
        ):
            rewritten.append(rule)
            continue
        new_body: list[Literal] = []
        for lit in rule.body:
            if not any(contains_group_term(a) for a in lit.atom.args):
                new_body.append(lit)
                continue
            if lit.negative or is_builtin_predicate(lit.atom.pred):
                raise WellFormednessError(
                    "grouping term in a negated or built-in body literal: "
                    + format_rule(rule)
                )
            stripped_args: list[Term] = []
            slots: list[tuple[Var, Term]] = []
            for arg in lit.atom.args:
                stripped, nested = compiler.strip_groups(arg)
                stripped_args.append(stripped)
                slots.extend(nested)
            new_literal = Literal(Atom(lit.atom.pred, stripped_args))
            new_body.append(new_literal)
            for set_var, pattern in slots:
                # guarantee 1+domain: collect sets at this position
                dom = compiler._fresh_preds.fresh("bs_dom")
                compiler.extra_rules.append(
                    Rule(
                        Atom(dom, (set_var,)),
                        [
                            Literal(
                                _anonymize_except(
                                    compiler, new_literal.atom, set_var
                                )
                            ),
                            Literal(
                                Atom("card", (set_var, compiler.fresh_var("N")))
                            ),
                        ],
                    )
                )
                # guarantee 2: t ranges over the set's elements
                new_body.extend(compiler.range_literals(pattern, set_var))
                # guarantee 3: uniform structure
                ok = compiler.uniformity_rules(pattern, dom)
                new_body.append(Literal(Atom(ok, (set_var,))))
        rewritten.append(Rule(rule.head, new_body))
    return Program(tuple(rewritten) + tuple(compiler.extra_rules))
