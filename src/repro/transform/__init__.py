"""Source-to-source transformations (paper Sections 3.3 and 4)."""

from repro.transform.body_sets import compile_body_sets
from repro.transform.head_terms import compile_head_terms
from repro.transform.neg_to_grouping import eliminate_negation


def compile_ldl15(program, alternative: bool = False):
    """Compile an LDL1.5 program down to base LDL1.

    Head-term expansion runs first (it may introduce plain body
    literals), then body ``<t>`` compilation.  The result passes the
    base-LDL1 well-formedness checks and evaluates directly.
    """
    return compile_body_sets(compile_head_terms(program, alternative=alternative))


__all__ = [
    "compile_body_sets",
    "compile_head_terms",
    "compile_ldl15",
    "eliminate_negation",
]
