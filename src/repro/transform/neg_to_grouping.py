"""Negation elimination via grouping (paper Section 3.3).

"Using grouping, a negative predicate may be converted into a positive
one": an occurrence ``~p(T)`` becomes ``g(T, {⊥})`` where ``⊥`` is a
reserved constant, supported by

* ``ok(T, ⊥)``               — ⊥ is always a candidate,
* ``ok(T, {T}) <- p(T)``     — and the tuple itself when p holds,
* ``g(T, <S>) <- ok(T, S)``  — so the grouped set is {⊥} exactly when
  ``p(T)`` fails.

The paper's schematic ``ok(T, ⊥)`` fact has free variables; the
executable version relativizes it to a *context* predicate — positive
body literals that bind ``T``.  To preserve the paper's claim that "an
admissible program remains so after this transformation", the context
only uses literals whose predicates lie in strictly lower layers than
the rewritten rule's head (plus built-ins evaluable from them); the
grouping chain then never re-enters the head's stratum::

    ctx(T)        <- lower-layer positive literals.
    ok(X, ⊥)      <- ctx(X).
    ok(X, {(X)})  <- ctx(X), p(X).
    g(X, <S>)     <- ok(X, S).
    rewritten r:  head <- positive-body, g(T, {⊥}).

Both stated properties are tested: the transformed program is still
admissible, and its standard model restricted to the original
predicates equals the original standard model.
"""

from __future__ import annotations

from repro.errors import NotAdmissibleError
from repro.names import FreshNames, is_builtin_predicate
from repro.program.rule import Atom, Literal, Program, Rule
from repro.program.stratify import Layering, stratify
from repro.terms.pretty import format_literal, format_rule
from repro.terms.term import BOTTOM, Func, GroupTerm, SetPattern, SetVal, Term, Var


def _tuple_term(args: tuple[Term, ...]) -> Term:
    """Pack literal arguments into one term for the ok-set element."""
    if len(args) == 1:
        return args[0]
    return Func("tuple", args)


def _context_literals(
    rule: Rule, neg: Literal, layering: Layering
) -> list[Literal]:
    """Positive literals from strictly lower layers that bind the
    negated occurrence's variables.

    Built-in literals are pulled in greedily once their variables are
    covered.  Raises :class:`NotAdmissibleError` when the negation's
    variables cannot be bound without same-layer (recursive) literals —
    the transformation would then destroy admissibility.
    """
    head_layer = layering.index(rule.head.pred)
    chosen: list[Literal] = []
    covered: set[str] = set()
    for lit in rule.positive_body():
        pred = lit.atom.pred
        if is_builtin_predicate(pred):
            continue
        if layering.index(pred) < head_layer:
            chosen.append(lit)
            covered |= lit.atom.variables()
    changed = True
    while changed:
        changed = False
        for lit in rule.positive_body():
            if lit in chosen or not is_builtin_predicate(lit.atom.pred):
                continue
            if lit.atom.variables() <= covered:
                chosen.append(lit)
                changed = True
    needed = neg.atom.variables()
    if not needed <= covered:
        raise NotAdmissibleError(
            "cannot eliminate "
            + format_literal(neg)
            + " without same-layer context in: "
            + format_rule(rule)
        )
    return chosen


def eliminate_negation(program: Program) -> Program:
    """Rewrite every negative literal into a positive grouping test.

    Returns an equivalent positive program: its standard model,
    restricted to the predicates of ``program``, is the standard model
    of ``program`` (Section 3.3).  Auxiliary predicates are fresh.
    """
    layering = stratify(program)
    fresh = FreshNames(program.predicates())
    out: list[Rule] = []
    for rule in program.rules:
        negatives = rule.negative_body()
        if not negatives:
            out.append(rule)
            continue
        new_body: list[Literal] = list(rule.positive_body())
        for neg in negatives:
            pred = neg.atom.pred
            arity = neg.atom.arity
            context = _context_literals(rule, neg, layering)
            ctx = fresh.fresh(f"ctx_{pred}")
            ok = fresh.fresh(f"ok_{pred}")
            g = fresh.fresh(f"g_{pred}")
            xs = tuple(Var(f"X{i + 1}") for i in range(arity))

            # ctx(T) <- lower-layer context.
            out.append(Rule(Atom(ctx, neg.atom.args), context))
            # ok(X, ⊥) <- ctx(X).
            out.append(
                Rule(Atom(ok, xs + (BOTTOM,)), [Literal(Atom(ctx, xs))])
            )
            # ok(X, {tuple(X)}) <- ctx(X), p(X).
            out.append(
                Rule(
                    Atom(ok, xs + (SetPattern([_tuple_term(xs)]),)),
                    [Literal(Atom(ctx, xs)), Literal(Atom(pred, xs))],
                )
            )
            # g(X, <S>) <- ok(X, S).
            out.append(
                Rule(
                    Atom(g, xs + (GroupTerm(Var("S")),)),
                    [Literal(Atom(ok, xs + (Var("S"),)))],
                )
            )
            # occurrence: g(T, {⊥}) replaces ~p(T).
            new_body.append(
                Literal(Atom(g, neg.atom.args + (SetVal([BOTTOM]),)))
            )
        out.append(Rule(rule.head, new_body))
    return Program(out)
