"""LDL1.5 complex head terms (paper Section 4.2).

Compiles rules whose heads contain nested/multiple grouping structure —
e.g. ``(T, <S>, <D>)``, ``(T, <h(S, <D>)>)``, ``((T, S), <(C, <D>)>)``
— into base LDL1 by the paper's three transformation schemes:

* **(i) Distribution** — several complex arguments split into one
  auxiliary predicate per argument, joined back on ``Z`` (the head
  variables that occur outside any ``< >``);
* **(ii) Grouping** — ``p(X, <g(Y, term_1..term_n)>)`` routes through
  ``q``/``q1`` so inner structure is computed first, *keyed on Y
  alone* (the paper's reading: the inner sets are independent of X);
* **(iii) Nesting** — ``p(X, g(Y, term_1..term_n))`` likewise for
  un-grouped complex arguments, keyed on ``Z``;

plus the degenerate cases (missing X / g / terms / Y) and the paper's
**alternative (ii)′ semantics** where ``X`` participates in the inner
grouping key (select with ``alternative=True``).

The transformations repeat until every rule is base LDL1; each step
strictly reduces head-term nesting, so the loop terminates.
"""

from __future__ import annotations

from repro.errors import WellFormednessError
from repro.names import FreshNames
from repro.program.rule import Atom, Literal, Program, Rule
from repro.terms.pretty import format_rule
from repro.terms.term import (
    Const,
    Func,
    GroupTerm,
    SetPattern,
    SetVal,
    Term,
    Var,
    contains_group_term,
)

_MAX_STEPS = 10_000


def _vars_outside_groups(head: Atom) -> tuple[str, ...]:
    """The paper's Z: head variables with an occurrence outside ``< >``,
    in first-appearance order."""
    seen: list[str] = []

    def walk(t: Term) -> None:
        if isinstance(t, GroupTerm):
            return
        if isinstance(t, Var):
            if t.name not in seen:
                seen.append(t.name)
            return
        if isinstance(t, Func):
            for a in t.args:
                walk(a)
        elif isinstance(t, SetPattern):
            for a in t.items:
                walk(a)
            if t.rest is not None:
                walk(t.rest)

    for arg in head.args:
        walk(arg)
    return tuple(seen)


def _is_base_rule(rule: Rule) -> bool:
    """Base LDL1: at most one head group, a direct argument, over a
    single variable; no groups in the body (the body is assumed
    pre-compiled by :mod:`repro.transform.body_sets`)."""
    groupy = [a for a in rule.head.args if contains_group_term(a)]
    if not groupy:
        return True
    if len(groupy) != 1:
        return False
    arg = groupy[0]
    return isinstance(arg, GroupTerm) and isinstance(arg.inner, Var)


def _split_functor_args(
    args: tuple[Term, ...]
) -> tuple[list[int], list[int]]:
    """Positions of simple-variable arguments (Y) vs complex terms."""
    var_positions = [i for i, a in enumerate(args) if isinstance(a, Var)]
    term_positions = [i for i, a in enumerate(args) if not isinstance(a, Var)]
    return var_positions, term_positions


class _HeadCompiler:
    def __init__(self, program: Program, alternative: bool) -> None:
        self.fresh = FreshNames(program.predicates(), prefix="ht")
        self.alternative = alternative
        self._var_counter = 0

    def fresh_var(self) -> Var:
        self._var_counter += 1
        return Var(f"_Y{self._var_counter}")

    # -- (i) distribution -------------------------------------------------

    def distribute(self, rule: Rule) -> list[Rule]:
        head = rule.head
        z_vars = tuple(Var(v) for v in _vars_outside_groups(head))
        new_args: list[Term] = []
        join_literals: list[Literal] = []
        out: list[Rule] = []
        for arg in head.args:
            if not contains_group_term(arg):
                new_args.append(arg)
                continue
            aux = self.fresh.fresh(f"{head.pred}_d")
            out.append(Rule(Atom(aux, z_vars + (arg,)), rule.body))
            joined = self.fresh_var()
            join_literals.append(Literal(Atom(aux, z_vars + (joined,))))
            new_args.append(joined)
        out.append(
            Rule(Atom(head.pred, new_args), tuple(join_literals) + rule.body)
        )
        return out

    # -- (ii) grouping -----------------------------------------------------

    def group(self, rule: Rule, position: int) -> list[Rule]:
        head = rule.head
        inner = head.args[position].inner  # type: ignore[union-attr]
        if isinstance(inner, (Const, SetVal)) or (
            not contains_group_term(inner) and not isinstance(inner, Var)
        ):
            # degenerate: <t> over a constant or a group-free complex
            # term — bind a fresh variable to it instead.
            fresh = self.fresh_var()
            new_args = list(head.args)
            new_args[position] = GroupTerm(fresh)
            body = rule.body + (Literal(Atom("=", (fresh, inner))),)
            return [Rule(Atom(head.pred, new_args), body)]
        if not isinstance(inner, Func):
            raise WellFormednessError(
                f"unsupported grouped head term: {format_rule(rule)}"
            )
        var_positions, term_positions = _split_functor_args(inner.args)
        y_vars = tuple(inner.args[i] for i in var_positions)
        key_vars = y_vars
        if self.alternative:
            # (ii)': X participates in the grouping key.
            x_names = _vars_outside_groups(head)
            extra = tuple(
                Var(name)
                for name in x_names
                if all(not (isinstance(y, Var) and y.name == name) for y in y_vars)
            )
            key_vars = extra + y_vars
        terms = tuple(inner.args[i] for i in term_positions)

        q = self.fresh.fresh(f"{head.pred}_q")
        q1 = self.fresh.fresh(f"{head.pred}_q1")
        out: list[Rule] = []
        # q(Y, term_1..term_n) <- body.
        out.append(Rule(Atom(q, key_vars + terms), rule.body))
        # q1(Y, g(..Y..,..Yi..)) <- q(Y, Y1..Yn).
        placeholders = {i: self.fresh_var() for i in term_positions}
        rebuilt_args = tuple(
            placeholders[i] if i in placeholders else inner.args[i]
            for i in range(len(inner.args))
        )
        rebuilt = Func(inner.functor, rebuilt_args)
        q_body_args = key_vars + tuple(placeholders[i] for i in term_positions)
        out.append(
            Rule(Atom(q1, key_vars + (rebuilt,)), [Literal(Atom(q, q_body_args))])
        )
        # p(X, <S>) <- q1(Y, S), body.
        set_var = self.fresh_var()
        new_args = list(head.args)
        new_args[position] = GroupTerm(set_var)
        out.append(
            Rule(
                Atom(head.pred, new_args),
                (Literal(Atom(q1, key_vars + (set_var,))),) + rule.body,
            )
        )
        return out

    # -- (iii) nesting -------------------------------------------------------

    def nest(self, rule: Rule, position: int) -> list[Rule]:
        head = rule.head
        arg = head.args[position]
        if not isinstance(arg, Func):
            raise WellFormednessError(
                f"unsupported nested head term: {format_rule(rule)}"
            )
        z_vars = tuple(Var(v) for v in _vars_outside_groups(head))
        var_positions, term_positions = _split_functor_args(arg.args)
        terms = tuple(arg.args[i] for i in term_positions)

        q1 = self.fresh.fresh(f"{head.pred}_n")
        q2 = self.fresh.fresh(f"{head.pred}_n")
        out: list[Rule] = []
        # q1(Z, term_1..term_n) <- body.
        out.append(Rule(Atom(q1, z_vars + terms), rule.body))
        # q2(Z, g(Y.., Yi..)) <- q1(Z, Y1..Yn).
        placeholders = {i: self.fresh_var() for i in term_positions}
        rebuilt_args = tuple(
            placeholders[i] if i in placeholders else arg.args[i]
            for i in range(len(arg.args))
        )
        rebuilt = Func(arg.functor, rebuilt_args)
        q1_body_args = z_vars + tuple(placeholders[i] for i in term_positions)
        out.append(
            Rule(Atom(q2, z_vars + (rebuilt,)), [Literal(Atom(q1, q1_body_args))])
        )
        # p(X, S) <- q2(Z, S), body.
        set_var = self.fresh_var()
        new_args = list(head.args)
        new_args[position] = set_var
        out.append(
            Rule(
                Atom(head.pred, new_args),
                (Literal(Atom(q2, z_vars + (set_var,))),) + rule.body,
            )
        )
        return out

    # -- driver ---------------------------------------------------------------

    def step(self, rule: Rule) -> list[Rule] | None:
        """One transformation application, or None when base LDL1."""
        if _is_base_rule(rule):
            return None
        group_positions = [
            i for i, a in enumerate(rule.head.args) if contains_group_term(a)
        ]
        if len(group_positions) > 1:
            return self.distribute(rule)
        position = group_positions[0]
        arg = rule.head.args[position]
        if isinstance(arg, GroupTerm):
            return self.group(rule, position)
        return self.nest(rule, position)


def compile_head_terms(program: Program, alternative: bool = False) -> Program:
    """Expand all complex head terms into base LDL1 rules.

    ``alternative=True`` selects the paper's (ii)′ semantics where the
    outer ``X`` variables join the inner grouping key.
    """
    compiler = _HeadCompiler(program, alternative)
    done: list[Rule] = []
    worklist = list(program.rules)
    steps = 0
    while worklist:
        steps += 1
        if steps > _MAX_STEPS:
            raise WellFormednessError(
                "head-term compilation did not terminate"
            )
        rule = worklist.pop(0)
        produced = compiler.step(rule)
        if produced is None:
            done.append(rule)
        else:
            worklist.extend(produced)
    return Program(done)
