"""Atomic snapshots of the full database state.

A snapshot captures everything a restart needs to serve queries
without re-running the layered fixpoint: the EDB facts, the *whole*
materialized model (IDB extensions included), and a fingerprint of the
program + layering that produced it.  On load, a store compares the
fingerprint of its current program against the stored one — a match
means the materialized model is still the minimal model and can be
adopted wholesale; a mismatch downgrades the snapshot to an EDB-only
backup and the fixpoint re-runs.

File format (JSONL, codec-encoded atoms)::

    {"format": "ldl1-snapshot", "version": 1, "codec": 1,
     "fingerprint": "...", "edb": <n>, "model": <m>}
    ["e", [pred, [args...]]]      # one line per EDB fact
    ["m", [pred, [args...]]]      # one line per model fact
    {"end": <n + m>}

Writes are crash-atomic: the body goes to a temp file in the same
directory, is fsynced, then renamed over the target (``os.replace``),
and the directory entry is fsynced.  Readers therefore only ever see
the previous complete snapshot or the new complete snapshot; the
``end`` trailer is a belt-and-braces integrity check on top.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import StorageError
from repro.observe import MetricsCollector, emit_storage_event
from repro.program.rule import Atom, Program
from repro.storage import codec
from repro.terms.pretty import format_rule

FORMAT = "ldl1-snapshot"
SNAPSHOT_VERSION = 1


def program_fingerprint(program: Program, layering=None) -> str:
    """A stable digest of the rules and their layering.

    The digest keys snapshot reuse: equal fingerprints guarantee the
    stored model was computed by the same rules under the same layer
    structure (Theorem 2 makes the result layering-independent, but the
    fingerprint still pins the layering so a digest match certifies the
    whole pipeline).  The codec version is mixed in so a codec bump
    invalidates old materializations.
    """
    if layering is None:
        from repro.program.stratify import stratify

        layering = stratify(program)
    digest = hashlib.sha256()
    digest.update(f"codec:{codec.CODEC_VERSION}\n".encode())
    for line in sorted(format_rule(rule) for rule in program):
        digest.update(line.encode("utf-8"))
        digest.update(b"\n")
    for layer in layering:
        digest.update(",".join(sorted(layer)).encode("utf-8"))
        digest.update(b";")
    return digest.hexdigest()


@dataclass
class Snapshot:
    """A loaded snapshot: the persisted facts plus their provenance."""

    fingerprint: str
    edb_facts: list[Atom] = field(default_factory=list)
    model_atoms: list[Atom] = field(default_factory=list)
    version: int = SNAPSHOT_VERSION


def write_snapshot(
    path,
    fingerprint: str,
    edb_facts: Iterable[Atom],
    model_atoms: Iterable[Atom],
    hooks=None,
    metrics: MetricsCollector | None = None,
) -> int:
    """Atomically publish a snapshot; returns bytes written."""
    path = os.fspath(path)
    edb = list(edb_facts)
    model = list(model_atoms)
    header = {
        "format": FORMAT,
        "version": SNAPSHOT_VERSION,
        "codec": codec.CODEC_VERSION,
        "fingerprint": fingerprint,
        "edb": len(edb),
        "model": len(model),
    }
    lines = [codec.dumps(header)]
    # fact lines assemble from the codec's per-term fragment memo:
    # ['["e",' .. ']'] is byte-identical to dumps(["e", encode_atom(a)])
    # because the tree is all lists (no key ordering to diverge on).
    lines.extend('["e",' + codec.dumps_atom(a) + "]" for a in edb)
    lines.extend('["m",' + codec.dumps_atom(a) + "]" for a in model)
    lines.append(codec.dumps({"end": len(edb) + len(model)}))
    body = ("\n".join(lines) + "\n").encode("utf-8")

    tmp_path = path + ".tmp"
    fd = os.open(tmp_path, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
    try:
        os.write(fd, body)
        os.fsync(fd)
    finally:
        os.close(fd)
    os.replace(tmp_path, path)
    _fsync_dir(os.path.dirname(path) or ".")
    if metrics is not None:
        metrics.record_storage(bytes_written=len(body), fsyncs=2)
        metrics.incr("snapshot_writes")
    emit_storage_event(
        hooks,
        "on_snapshot_write",
        path=path,
        facts=len(edb) + len(model),
        nbytes=len(body),
    )
    return len(body)


def load_snapshot(path) -> Snapshot | None:
    """Read a snapshot, or None when the file does not exist.

    Raises :class:`~repro.errors.StorageError` on a damaged body —
    thanks to atomic publication that indicates external corruption,
    not a torn write, so it is surfaced rather than repaired.
    """
    path = os.fspath(path)
    try:
        with open(path, "rb") as handle:
            raw_lines = handle.read().split(b"\n")
    except FileNotFoundError:
        return None
    lines = [line for line in raw_lines if line.strip()]
    if not lines:
        raise StorageError(f"{path}: empty snapshot")
    header = codec.loads(lines[0])
    if not isinstance(header, dict) or header.get("format") != FORMAT:
        raise StorageError(f"{path}: not an LDL1 snapshot")
    if header.get("version") != SNAPSHOT_VERSION:
        raise StorageError(
            f"{path}: unsupported snapshot version {header.get('version')!r}"
        )
    codec.check_version(header.get("codec"))
    fingerprint = header.get("fingerprint")
    if not isinstance(fingerprint, str):
        raise StorageError(f"{path}: snapshot missing fingerprint")
    snapshot = Snapshot(fingerprint=fingerprint)
    trailer = codec.loads(lines[-1])
    if not isinstance(trailer, dict) or "end" not in trailer:
        raise StorageError(f"{path}: snapshot missing end trailer")
    for line in lines[1:-1]:
        row = codec.loads(line)
        if not isinstance(row, list) or len(row) != 2 or row[0] not in ("e", "m"):
            raise StorageError(f"{path}: malformed snapshot row {row!r}")
        atom = codec.decode_atom(row[1])
        (snapshot.edb_facts if row[0] == "e" else snapshot.model_atoms).append(atom)
    if trailer["end"] != len(snapshot.edb_facts) + len(snapshot.model_atoms):
        raise StorageError(f"{path}: snapshot row count mismatch")
    if (
        len(snapshot.edb_facts) != header.get("edb")
        or len(snapshot.model_atoms) != header.get("model")
    ):
        raise StorageError(f"{path}: snapshot header count mismatch")
    return snapshot


def _fsync_dir(dirname: str) -> None:
    """Persist a rename by fsyncing the containing directory."""
    try:
        fd = os.open(dirname, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
