"""Versioned wire codec for ground U-terms and atoms.

Every persisted fact — WAL record or snapshot row — passes through this
module.  The encoding is a JSON-compatible tagged tree chosen for three
properties:

* **stability** — the tag alphabet is frozen per :data:`CODEC_VERSION`;
  decoding rejects tags it does not know instead of guessing,
* **faithful round-trips** — ``decode(encode(t)) == t`` for every
  element of the LDL1 universe, including the distinctions Python's
  JSON would otherwise blur (symbol vs quoted string, ``2`` vs ``2.0``),
* **canonical bytes** — set elements serialize in ``sort_key`` order
  and JSON maps use no whitespace, so equal terms produce equal bytes
  (which makes CRCs and snapshot diffs meaningful).

Tags: ``["s", name]`` symbol constant, ``["q", text]`` quoted string,
``["n", number]`` numeric constant, ``["f", functor, [args...]]``
compound term, ``["S", [elems...]]`` finite set.  An atom is
``[pred, [args...]]``.  Non-ground and non-U terms (variables,
grouping terms, open set patterns) are rejected at encode time: they
never belong in a fact base.
"""

from __future__ import annotations

import json

from repro.errors import StorageError
from repro.program.rule import Atom
from repro.terms.term import (
    _ID_TABLE,
    Const,
    Func,
    SetVal,
    Term,
    intern_term,
    row_id,
)

#: Bump when the tag alphabet or layout changes; decoders refuse newer.
CODEC_VERSION = 1


def encode_term(term: Term) -> list:
    """Encode one ground U-term as a JSON-compatible tagged tree."""
    if isinstance(term, Const):
        if isinstance(term.value, str):
            return ["q", term.value] if term.quoted else ["s", term.value]
        return ["n", term.value]
    if isinstance(term, SetVal):
        return ["S", [encode_term(e) for e in term]]
    if isinstance(term, Func):
        return ["f", term.functor, [encode_term(a) for a in term.args]]
    raise StorageError(f"cannot persist non-U term {term!r}")


def decode_term(obj) -> Term:
    """Decode one tagged tree back to a term; inverse of :func:`encode_term`.

    Decoded terms are re-interned bottom-up, so facts arriving from the
    WAL, a snapshot, or the server protocol share subterm objects with
    the rest of the process and hit the evaluator's identity fast paths.
    """
    if not isinstance(obj, list) or not obj:
        raise StorageError(f"malformed term encoding: {obj!r}")
    tag = obj[0]
    if tag == "s" and len(obj) == 2 and isinstance(obj[1], str):
        return intern_term(Const(obj[1]))
    if tag == "q" and len(obj) == 2 and isinstance(obj[1], str):
        return intern_term(Const(obj[1], quoted=True))
    if (
        tag == "n"
        and len(obj) == 2
        and isinstance(obj[1], (int, float))
        and not isinstance(obj[1], bool)
    ):
        return intern_term(Const(obj[1]))
    if tag == "S" and len(obj) == 2 and isinstance(obj[1], list):
        return intern_term(SetVal(decode_term(e) for e in obj[1]))
    if (
        tag == "f"
        and len(obj) == 3
        and isinstance(obj[1], str)
        and isinstance(obj[2], list)
    ):
        return intern_term(Func(obj[1], (decode_term(a) for a in obj[2])))
    raise StorageError(f"malformed term encoding: {obj!r}")


def encode_atom(atom: Atom) -> list:
    """Encode a ground atom as ``[pred, [args...]]``."""
    if not atom.is_ground():
        raise StorageError(f"cannot persist non-ground atom {atom!r}")
    return [atom.pred, [encode_term(a) for a in atom.args]]


def decode_atom(obj) -> Atom:
    """Decode ``[pred, [args...]]`` back to an atom."""
    if (
        not isinstance(obj, list)
        or len(obj) != 2
        or not isinstance(obj[0], str)
        or not isinstance(obj[1], list)
    ):
        raise StorageError(f"malformed atom encoding: {obj!r}")
    return Atom(obj[0], (decode_term(a) for a in obj[1]))


def dumps(obj) -> str:
    """Canonical JSON text: no whitespace, keys sorted, UTF-8-safe."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True)


def loads(text: str | bytes):
    """Parse JSON, converting parse failures to :class:`StorageError`."""
    try:
        return json.loads(text)
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"corrupt JSON payload: {exc}") from exc


# Canonical JSON fragment per interned term, keyed by the *faithful*
# intern ID (``_tid``), never the equality-class ID: the codec must
# keep the quoted-string / symbol distinction (``["q",...]`` vs
# ``["s",...]``) that equality-class IDs deliberately collapse.
# Entries carry the term alongside its text and are validated by
# identity on every hit, so a cleared-and-refilled intern table (which
# reuses IDs) can never serve a stale fragment.
_FRAGMENTS: dict[int, tuple[Term, str]] = {}


def term_fragment(term: Term) -> str:
    """The canonical JSON text of one ground term, memoized per intern
    ID.  Byte-identical to ``dumps(encode_term(term))`` — term trees
    contain no JSON objects, so key ordering cannot differ."""
    tid = term._tid
    if tid is None:
        return dumps(encode_term(term))
    entry = _FRAGMENTS.get(tid)
    if entry is not None and entry[0] is term:
        return entry[1]
    text = dumps(encode_term(term))
    _FRAGMENTS[tid] = (term, text)
    return text


def dumps_atom(atom: Atom) -> str:
    """One atom as a canonical JSON line (no trailing newline).

    Assembled from per-term memoized fragments: a fact whose terms have
    been serialized before — the overwhelmingly common case in WAL
    batches and snapshots — costs one dict hit per argument instead of
    re-walking every term tree.
    """
    if not atom.is_ground():
        raise StorageError(f"cannot persist non-ground atom {atom!r}")
    frags = ",".join(term_fragment(a) for a in atom.args)
    return "[" + dumps(atom.pred) + ",[" + frags + "]]"


def encode_id_row(pred: str, row: tuple[int, ...]) -> list:
    """Encode a stored ID row (see :mod:`repro.engine.relation`) as the
    same tagged tree :func:`encode_atom` produces, without materializing
    an :class:`Atom`."""
    table = _ID_TABLE
    return [pred, [encode_term(table[rid]) for rid in row]]


def dumps_id_row(pred: str, row: tuple[int, ...]) -> str:
    """A predicate's ID row as a canonical atom line — the ID-direct
    twin of :func:`dumps_atom` (columnar storage hands the codec rows,
    not atoms)."""
    table = _ID_TABLE
    frags = ",".join(term_fragment(table[rid]) for rid in row)
    return "[" + dumps(pred) + ",[" + frags + "]]"


def decode_atom_row(obj) -> tuple[str, tuple[int, ...]]:
    """Decode ``[pred, [args...]]`` straight to ``(pred, id_row)``.

    Terms are interned bottom-up exactly as :func:`decode_atom` does,
    then collapsed to their equality-class IDs — the row a
    :class:`~repro.engine.relation.Relation` stores — so loaders can
    feed columnar storage without building intermediate atoms.
    """
    if (
        not isinstance(obj, list)
        or len(obj) != 2
        or not isinstance(obj[0], str)
        or not isinstance(obj[1], list)
    ):
        raise StorageError(f"malformed atom encoding: {obj!r}")
    return obj[0], tuple(row_id(decode_term(a)) for a in obj[1])


def loads_atom(text: str | bytes) -> Atom:
    """Inverse of :func:`dumps_atom`."""
    return decode_atom(loads(text))


# -- batch wire framing (the partitioned evaluator's exchange format) --------
#
# A row batch crossing a process boundary is framed in two lanes: rows
# whose IDs all sit below the intern-table *watermark* agreed at the
# worker handshake travel as raw ints (dense IDs mean the same term on
# both sides — see ``repro.terms.term.sync_intern_terms``), and rows
# touching any fresher ID travel as self-describing codec lines
# (:func:`dumps_id_row`) that re-intern on arrival.  The raw lane is
# the overwhelmingly common case once the EDB is interned, so a shuffle
# costs one flat int list per batch instead of a JSON tree per row.


def encode_row_batch(
    pred: str, arity: int, rows, watermark: int
) -> tuple[str, int, list[int], list[str]]:
    """Frame ID rows for the wire: ``(pred, arity, raw, coded)``.

    ``raw`` is the flattened int lane of rows fully below ``watermark``;
    ``coded`` holds one canonical atom line per remaining row.
    """
    raw: list[int] = []
    coded: list[str] = []
    for row in rows:
        if row and max(row) < watermark:
            raw.extend(row)
        else:
            coded.append(dumps_id_row(pred, row))
    return (pred, arity, raw, coded)


def decode_row_batch(
    payload: tuple[str, int, list[int], list[str]]
) -> tuple[str, int, list[tuple[int, ...]]]:
    """Inverse of :func:`encode_row_batch` — ``(pred, arity, rows)``.

    Raw-lane rows are reassembled directly; coded-lane rows re-intern
    their terms bottom-up (fresh terms get local IDs), exactly as
    :func:`decode_atom_row` does for persisted facts.
    """
    pred, arity, raw, coded = payload
    if arity > 0:
        rows = [
            tuple(raw[i : i + arity]) for i in range(0, len(raw), arity)
        ]
    elif raw:
        raise StorageError("raw lane carries no arity-0 rows")
    else:
        rows = []
    for line in coded:
        cpred, row = decode_atom_row(loads(line))
        if cpred != pred or len(row) != arity:
            raise StorageError(
                f"row batch for {pred}/{arity} carries a {cpred}/{len(row)} line"
            )
        rows.append(row)
    return pred, arity, rows


def row_batch_bytes(payload: tuple[str, int, list[int], list[str]]) -> int:
    """Approximate wire size of one framed batch (shuffle accounting)."""
    _, _, raw, coded = payload
    return 8 * len(raw) + sum(len(line) for line in coded)


def intern_table_lines(start: int = 0) -> list[str]:
    """Codec fragments of the dense-ID table from ``start``, in
    assignment order — the handshake payload a fresh worker replays
    through :func:`sync_intern_lines`."""
    from repro.terms.term import intern_snapshot

    return [term_fragment(term) for term in intern_snapshot(start)]


def sync_intern_lines(lines: list[str], expect_start: int) -> None:
    """Replay a coordinator's intern-table fragments (see
    :func:`repro.terms.term.sync_intern_terms`)."""
    from repro.terms.term import sync_intern_terms

    try:
        sync_intern_terms(
            (decode_term(loads(line)) for line in lines), expect_start
        )
    except ValueError as exc:
        raise StorageError(f"intern-table handshake failed: {exc}") from exc


def check_version(version) -> None:
    """Reject payloads written by a codec newer than this module."""
    if not isinstance(version, int) or version < 1:
        raise StorageError(f"bad codec version marker: {version!r}")
    if version > CODEC_VERSION:
        raise StorageError(
            f"codec version {version} is newer than supported {CODEC_VERSION}"
        )
