"""Versioned wire codec for ground U-terms and atoms.

Every persisted fact — WAL record or snapshot row — passes through this
module.  The encoding is a JSON-compatible tagged tree chosen for three
properties:

* **stability** — the tag alphabet is frozen per :data:`CODEC_VERSION`;
  decoding rejects tags it does not know instead of guessing,
* **faithful round-trips** — ``decode(encode(t)) == t`` for every
  element of the LDL1 universe, including the distinctions Python's
  JSON would otherwise blur (symbol vs quoted string, ``2`` vs ``2.0``),
* **canonical bytes** — set elements serialize in ``sort_key`` order
  and JSON maps use no whitespace, so equal terms produce equal bytes
  (which makes CRCs and snapshot diffs meaningful).

Tags: ``["s", name]`` symbol constant, ``["q", text]`` quoted string,
``["n", number]`` numeric constant, ``["f", functor, [args...]]``
compound term, ``["S", [elems...]]`` finite set.  An atom is
``[pred, [args...]]``.  Non-ground and non-U terms (variables,
grouping terms, open set patterns) are rejected at encode time: they
never belong in a fact base.
"""

from __future__ import annotations

import json

from repro.errors import StorageError
from repro.program.rule import Atom
from repro.terms.term import (
    _ID_TABLE,
    Const,
    Func,
    SetVal,
    Term,
    intern_term,
    row_id,
)

#: Bump when the tag alphabet or layout changes; decoders refuse newer.
CODEC_VERSION = 1


def encode_term(term: Term) -> list:
    """Encode one ground U-term as a JSON-compatible tagged tree."""
    if isinstance(term, Const):
        if isinstance(term.value, str):
            return ["q", term.value] if term.quoted else ["s", term.value]
        return ["n", term.value]
    if isinstance(term, SetVal):
        return ["S", [encode_term(e) for e in term]]
    if isinstance(term, Func):
        return ["f", term.functor, [encode_term(a) for a in term.args]]
    raise StorageError(f"cannot persist non-U term {term!r}")


def decode_term(obj) -> Term:
    """Decode one tagged tree back to a term; inverse of :func:`encode_term`.

    Decoded terms are re-interned bottom-up, so facts arriving from the
    WAL, a snapshot, or the server protocol share subterm objects with
    the rest of the process and hit the evaluator's identity fast paths.
    """
    if not isinstance(obj, list) or not obj:
        raise StorageError(f"malformed term encoding: {obj!r}")
    tag = obj[0]
    if tag == "s" and len(obj) == 2 and isinstance(obj[1], str):
        return intern_term(Const(obj[1]))
    if tag == "q" and len(obj) == 2 and isinstance(obj[1], str):
        return intern_term(Const(obj[1], quoted=True))
    if (
        tag == "n"
        and len(obj) == 2
        and isinstance(obj[1], (int, float))
        and not isinstance(obj[1], bool)
    ):
        return intern_term(Const(obj[1]))
    if tag == "S" and len(obj) == 2 and isinstance(obj[1], list):
        return intern_term(SetVal(decode_term(e) for e in obj[1]))
    if (
        tag == "f"
        and len(obj) == 3
        and isinstance(obj[1], str)
        and isinstance(obj[2], list)
    ):
        return intern_term(Func(obj[1], (decode_term(a) for a in obj[2])))
    raise StorageError(f"malformed term encoding: {obj!r}")


def encode_atom(atom: Atom) -> list:
    """Encode a ground atom as ``[pred, [args...]]``."""
    if not atom.is_ground():
        raise StorageError(f"cannot persist non-ground atom {atom!r}")
    return [atom.pred, [encode_term(a) for a in atom.args]]


def decode_atom(obj) -> Atom:
    """Decode ``[pred, [args...]]`` back to an atom."""
    if (
        not isinstance(obj, list)
        or len(obj) != 2
        or not isinstance(obj[0], str)
        or not isinstance(obj[1], list)
    ):
        raise StorageError(f"malformed atom encoding: {obj!r}")
    return Atom(obj[0], (decode_term(a) for a in obj[1]))


def dumps(obj) -> str:
    """Canonical JSON text: no whitespace, keys sorted, UTF-8-safe."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True)


def loads(text: str | bytes):
    """Parse JSON, converting parse failures to :class:`StorageError`."""
    try:
        return json.loads(text)
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"corrupt JSON payload: {exc}") from exc


# Canonical JSON fragment per interned term, keyed by the *faithful*
# intern ID (``_tid``), never the equality-class ID: the codec must
# keep the quoted-string / symbol distinction (``["q",...]`` vs
# ``["s",...]``) that equality-class IDs deliberately collapse.
# Entries carry the term alongside its text and are validated by
# identity on every hit, so a cleared-and-refilled intern table (which
# reuses IDs) can never serve a stale fragment.
_FRAGMENTS: dict[int, tuple[Term, str]] = {}


def term_fragment(term: Term) -> str:
    """The canonical JSON text of one ground term, memoized per intern
    ID.  Byte-identical to ``dumps(encode_term(term))`` — term trees
    contain no JSON objects, so key ordering cannot differ."""
    tid = term._tid
    if tid is None:
        return dumps(encode_term(term))
    entry = _FRAGMENTS.get(tid)
    if entry is not None and entry[0] is term:
        return entry[1]
    text = dumps(encode_term(term))
    _FRAGMENTS[tid] = (term, text)
    return text


def dumps_atom(atom: Atom) -> str:
    """One atom as a canonical JSON line (no trailing newline).

    Assembled from per-term memoized fragments: a fact whose terms have
    been serialized before — the overwhelmingly common case in WAL
    batches and snapshots — costs one dict hit per argument instead of
    re-walking every term tree.
    """
    if not atom.is_ground():
        raise StorageError(f"cannot persist non-ground atom {atom!r}")
    frags = ",".join(term_fragment(a) for a in atom.args)
    return "[" + dumps(atom.pred) + ",[" + frags + "]]"


def encode_id_row(pred: str, row: tuple[int, ...]) -> list:
    """Encode a stored ID row (see :mod:`repro.engine.relation`) as the
    same tagged tree :func:`encode_atom` produces, without materializing
    an :class:`Atom`."""
    table = _ID_TABLE
    return [pred, [encode_term(table[rid]) for rid in row]]


def dumps_id_row(pred: str, row: tuple[int, ...]) -> str:
    """A predicate's ID row as a canonical atom line — the ID-direct
    twin of :func:`dumps_atom` (columnar storage hands the codec rows,
    not atoms)."""
    table = _ID_TABLE
    frags = ",".join(term_fragment(table[rid]) for rid in row)
    return "[" + dumps(pred) + ",[" + frags + "]]"


def decode_atom_row(obj) -> tuple[str, tuple[int, ...]]:
    """Decode ``[pred, [args...]]`` straight to ``(pred, id_row)``.

    Terms are interned bottom-up exactly as :func:`decode_atom` does,
    then collapsed to their equality-class IDs — the row a
    :class:`~repro.engine.relation.Relation` stores — so loaders can
    feed columnar storage without building intermediate atoms.
    """
    if (
        not isinstance(obj, list)
        or len(obj) != 2
        or not isinstance(obj[0], str)
        or not isinstance(obj[1], list)
    ):
        raise StorageError(f"malformed atom encoding: {obj!r}")
    return obj[0], tuple(row_id(decode_term(a)) for a in obj[1])


def loads_atom(text: str | bytes) -> Atom:
    """Inverse of :func:`dumps_atom`."""
    return decode_atom(loads(text))


def check_version(version) -> None:
    """Reject payloads written by a codec newer than this module."""
    if not isinstance(version, int) or version < 1:
        raise StorageError(f"bad codec version marker: {version!r}")
    if version > CODEC_VERSION:
        raise StorageError(
            f"codec version {version} is newer than supported {CODEC_VERSION}"
        )
