"""Append-only write-ahead log of EDB mutations.

File layout: an 8-byte magic (``LDL1WAL`` + format version byte)
followed by framed records.  Each record is::

    <payload length: u32 le> <crc32(payload): u32 le> <payload bytes>

where the payload is canonical JSON ``{"op": ..., "facts": [...]}``
with atoms encoded by :mod:`repro.storage.codec`.  Batches are one
record, so a batch becomes durable — and later replays — atomically.

Crash recovery is the open path: the log is scanned front to back and
the first frame that is short, oversized, CRC-mismatched, or
undecodable marks the *torn tail*; everything from there on is the
debris of an interrupted append and is physically truncated away.
A corrupt or missing magic is different — that is not a torn append
but a damaged or foreign file, and raises
:class:`~repro.errors.StorageError` instead of silently wiping it.

``fsync`` policy: ``"always"`` syncs every append (durability =
acknowledged), ``"batch"`` syncs only on :meth:`flush`/:meth:`close`,
``"never"`` leaves it to the OS.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import StorageError
from repro.observe import MetricsCollector, emit_storage_event
from repro.program.rule import Atom
from repro.storage import codec

MAGIC = b"LDL1WAL\x01"
_HEADER = struct.Struct("<II")

#: Mutation kinds a record may carry.
OPS = ("add", "remove")


@dataclass(frozen=True)
class WalRecord:
    """One durable mutation batch: the op plus its ground facts."""

    op: str
    facts: tuple[Atom, ...]
    #: File offset one past this record's frame (where the next starts).
    end_offset: int = 0


def _decode_payload(payload: bytes) -> tuple[str, tuple[Atom, ...]]:
    obj = codec.loads(payload)
    if (
        not isinstance(obj, dict)
        or obj.get("op") not in OPS
        or not isinstance(obj.get("facts"), list)
    ):
        raise StorageError(f"malformed WAL record: {obj!r}")
    return obj["op"], tuple(codec.decode_atom(f) for f in obj["facts"])


class WriteAheadLog:
    """A CRC-checked append-only log with torn-tail truncation on open."""

    def __init__(
        self,
        path,
        fsync: str = "always",
        hooks=None,
        metrics: MetricsCollector | None = None,
    ) -> None:
        if fsync not in ("always", "batch", "never"):
            raise StorageError(f"unknown fsync policy {fsync!r}")
        self.path = os.fspath(path)
        self.fsync = fsync
        self.hooks = hooks
        self.metrics = metrics
        self.records: list[WalRecord] = []
        self.truncated_bytes = 0
        self._file = None
        self._open()

    # -- open / recovery ---------------------------------------------------

    def _open(self) -> None:
        fresh = not os.path.exists(self.path)
        self._file = open(self.path, "a+b" if fresh else "r+b")
        if fresh:
            self._file.write(MAGIC)
            self._sync(force=self.fsync != "never")
            return
        self._file.seek(0)
        head = self._file.read(len(MAGIC))
        if head != MAGIC:
            self._file.close()
            self._file = None
            raise StorageError(
                f"{self.path}: not an LDL1 WAL (bad magic {head!r})"
            )
        good_end = self._scan()
        size = os.path.getsize(self.path)
        if good_end < size:
            self.truncated_bytes = size - good_end
            self._file.truncate(good_end)
            self._sync(force=self.fsync != "never")
        self._file.seek(0, os.SEEK_END)

    def _scan(self) -> int:
        """Read every intact record; return the offset of the torn tail."""
        offset = len(MAGIC)
        size = os.path.getsize(self.path)
        while True:
            header = self._file.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return offset
            length, crc = _HEADER.unpack(header)
            if offset + _HEADER.size + length > size:
                return offset
            payload = self._file.read(length)
            if len(payload) < length or zlib.crc32(payload) != crc:
                return offset
            try:
                op, facts = _decode_payload(payload)
            except StorageError:
                return offset
            offset += _HEADER.size + length
            self.records.append(WalRecord(op, facts, end_offset=offset))

    # -- appending ---------------------------------------------------------

    def append(self, op: str, facts: Iterable[Atom]) -> WalRecord:
        """Durably log one mutation batch; returns the framed record."""
        if self._file is None:
            raise StorageError(f"{self.path}: log is closed")
        if op not in OPS:
            raise StorageError(f"unknown WAL op {op!r}")
        batch = tuple(facts)
        # assembled from the codec's per-term fragment memo; the literal
        # layout matches dumps({"facts": [...], "op": op}) byte for byte
        # ("facts" sorts before "op", canonical separators throughout).
        payload = (
            '{"facts":['
            + ",".join(codec.dumps_atom(a) for a in batch)
            + '],"op":'
            + codec.dumps(op)
            + "}"
        ).encode("utf-8")
        frame = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        self._file.write(frame)
        if self.fsync == "always":
            self._sync(force=True)
        record = WalRecord(op, batch, end_offset=self._file.tell())
        self.records.append(record)
        if self.metrics is not None:
            self.metrics.record_storage(bytes_written=len(frame))
            self.metrics.incr("wal_records_appended")
        emit_storage_event(
            self.hooks, "on_wal_append", op=op, facts=len(batch), nbytes=len(frame)
        )
        return record

    def replay(self) -> Iterator[WalRecord]:
        """The intact records recovered at open plus later appends."""
        return iter(self.records)

    @property
    def record_count(self) -> int:
        return len(self.records)

    @property
    def size_bytes(self) -> int:
        if self._file is None:
            return os.path.getsize(self.path)
        return self._file.tell()

    # -- maintenance -------------------------------------------------------

    def reset(self) -> None:
        """Drop every record (after a snapshot made them redundant)."""
        if self._file is None:
            raise StorageError(f"{self.path}: log is closed")
        self._file.truncate(len(MAGIC))
        self._file.seek(len(MAGIC))
        self._sync(force=self.fsync != "never")
        self.records = []

    def flush(self) -> None:
        self._sync(force=True)

    def _sync(self, force: bool) -> None:
        self._file.flush()
        if force:
            os.fsync(self._file.fileno())
            if self.metrics is not None:
                self.metrics.record_storage(fsyncs=1)

    def close(self) -> None:
        if self._file is not None:
            if self.fsync != "never":
                self._sync(force=True)
            self._file.close()
            self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
