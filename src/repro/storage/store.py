"""The durable store: snapshot + WAL + incremental engine, composed.

:class:`DurableStore` owns one database directory::

    <path>/snapshot.jsonl    last published snapshot (atomic replace)
    <path>/wal.log           mutations since that snapshot

The open protocol is the classical ARIES-shaped sequence, specialized
to a deductive database whose IDB is a deterministic function of the
EDB and the program:

1. load the snapshot (if any).  When its fingerprint matches the
   current program, the materialized model — IDB extensions included —
   is adopted wholesale and the layered fixpoint is *skipped*; when it
   does not match (the rules changed), only the EDB facts are kept and
   the model is recomputed from them;
2. open the WAL, which truncates any torn tail (a crash mid-append);
3. replay the surviving records through the
   :class:`~repro.engine.incremental.IncrementalModel`, which repairs
   the model per batch exactly as the original updates did;
4. serve.  Later mutations are WAL-appended *before* they touch the
   model (write-ahead), so an acknowledged batch is never lost.

Compaction folds the WAL into a fresh snapshot: after
``compact_every`` records the store checkpoints itself, and
:meth:`checkpoint` does the same on demand.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Iterable

from repro.engine.database import Database
from repro.engine.incremental import IncrementalModel, UpdateStats
from repro.errors import StorageError
from repro.observe import EngineHooks, MetricsCollector, emit_storage_event
from repro.program.rule import Atom, Program, canonical_atom
from repro.storage.snapshot import load_snapshot, program_fingerprint, write_snapshot
from repro.storage.wal import WriteAheadLog

SNAPSHOT_FILE = "snapshot.jsonl"
WAL_FILE = "wal.log"


@dataclass
class StoreStats:
    """How the last :meth:`DurableStore.open` brought the model up."""

    #: "cold" — no snapshot; "snapshot" — materialized model adopted,
    #: fixpoint skipped; "rebuild" — snapshot EDB kept, rules changed,
    #: model recomputed.
    restore_mode: str = "cold"
    snapshot_facts: int = 0
    wal_records_replayed: int = 0
    wal_facts_replayed: int = 0
    wal_truncated_bytes: int = 0
    compactions: int = 0


class DurableStore:
    """A persistent LDL1 fact base with crash recovery."""

    def __init__(
        self,
        program: Program,
        path,
        fsync: str = "always",
        compact_every: int = 1024,
        check: bool = True,
        hooks: EngineHooks | None = None,
        metrics: MetricsCollector | None = None,
        maintain: str | None = None,
    ) -> None:
        self.program = program
        self.path = os.fspath(path)
        self.fsync = fsync
        self.compact_every = compact_every
        self.check = check
        self.hooks = hooks
        self.metrics = metrics
        self.maintain = maintain
        self.model: IncrementalModel | None = None
        self.wal: WriteAheadLog | None = None
        self.stats = StoreStats()
        self._fingerprint: str | None = None

    # -- lifecycle ---------------------------------------------------------

    @property
    def snapshot_path(self) -> str:
        return os.path.join(self.path, SNAPSHOT_FILE)

    @property
    def wal_path(self) -> str:
        return os.path.join(self.path, WAL_FILE)

    def open(self) -> "DurableStore":
        """Load snapshot, recover the WAL, replay, and start serving."""
        if self.model is not None:
            raise StorageError(f"{self.path}: store already open")
        os.makedirs(self.path, exist_ok=True)
        self._fingerprint = program_fingerprint(self.program)
        stats = StoreStats()

        start = time.perf_counter()
        snapshot = load_snapshot(self.snapshot_path)
        if snapshot is not None and snapshot.fingerprint == self._fingerprint:
            self.model = IncrementalModel(
                self.program,
                edb=snapshot.edb_facts,
                check=self.check,
                hooks=self.hooks,
                materialized=Database(snapshot.model_atoms),
                maintain=self.maintain,
            )
            stats.restore_mode = "snapshot"
        elif snapshot is not None:
            # rules changed since the snapshot: its materialized IDB is
            # stale, but the EDB facts are still the durable truth.
            self.model = IncrementalModel(
                self.program,
                edb=snapshot.edb_facts,
                check=self.check,
                hooks=self.hooks,
                maintain=self.maintain,
            )
            stats.restore_mode = "rebuild"
        else:
            self.model = IncrementalModel(
                self.program, check=self.check, hooks=self.hooks,
                maintain=self.maintain,
            )
            stats.restore_mode = "cold"
        if snapshot is not None:
            stats.snapshot_facts = len(snapshot.edb_facts) + len(
                snapshot.model_atoms
            )
            emit_storage_event(
                self.hooks,
                "on_snapshot_load",
                path=self.snapshot_path,
                facts=stats.snapshot_facts,
                restored=stats.restore_mode == "snapshot",
            )
        if self.metrics is not None:
            self.metrics.add_time("snapshot_load", time.perf_counter() - start)
            if stats.restore_mode == "snapshot":
                self.metrics.incr("snapshot_restores")

        start = time.perf_counter()
        self.wal = WriteAheadLog(
            self.wal_path, fsync=self.fsync, hooks=self.hooks, metrics=self.metrics
        )
        stats.wal_truncated_bytes = self.wal.truncated_bytes
        for record in self.wal.replay():
            # replayed updates carry the same LSN (the log offset one
            # past the record) the original mutation was stamped with.
            if record.op == "add":
                self.model.add_facts(record.facts, lsn=record.end_offset)
            else:
                self.model.remove_facts(record.facts, lsn=record.end_offset)
            stats.wal_records_replayed += 1
            stats.wal_facts_replayed += len(record.facts)
        if self.metrics is not None:
            self.metrics.add_time("wal_replay", time.perf_counter() - start)
            self.metrics.record_storage(replayed=stats.wal_records_replayed)
        if stats.wal_records_replayed:
            emit_storage_event(
                self.hooks,
                "on_wal_replay",
                records=stats.wal_records_replayed,
                facts=stats.wal_facts_replayed,
            )
        self.stats = stats
        return self

    def close(self) -> None:
        if self.wal is not None:
            self.wal.close()
            self.wal = None
        self.model = None

    def __enter__(self) -> "DurableStore":
        if self.model is None:
            self.open()
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- serving -----------------------------------------------------------

    @property
    def database(self) -> Database:
        """The live materialized model."""
        self._require_open()
        return self.model.database

    @property
    def edb_facts(self) -> frozenset[Atom]:
        self._require_open()
        return self.model.edb_facts

    # -- mutation ----------------------------------------------------------

    def add_facts(self, atoms: Iterable[Atom]) -> UpdateStats:
        """Durably insert base facts: WAL first, then repair the model."""
        return self._mutate("add", atoms)

    def remove_facts(self, atoms: Iterable[Atom]) -> UpdateStats:
        """Durably delete base facts: WAL first, then repair the model."""
        return self._mutate("remove", atoms)

    def _mutate(self, op: str, atoms: Iterable[Atom]) -> UpdateStats:
        self._require_open()
        batch = tuple(self._canonical(a) for a in atoms)
        if not batch:
            return UpdateStats(mode="none")
        start = time.perf_counter()
        record = self.wal.append(op, batch)
        if self.metrics is not None:
            self.metrics.add_time("wal_append", time.perf_counter() - start)
        # the WAL LSN (offset one past the record) stamps the update and
        # its delta batch, so downstream consumers can order view deltas
        # against the log.
        if op == "add":
            stats = self.model.add_facts(batch, lsn=record.end_offset)
        else:
            stats = self.model.remove_facts(batch, lsn=record.end_offset)
        if self.compact_every and self.wal.record_count >= self.compact_every:
            self.checkpoint()
        return stats

    def _canonical(self, atom: Atom) -> Atom:
        return canonical_atom(atom)

    # -- maintenance -------------------------------------------------------

    def checkpoint(self) -> int:
        """Publish a snapshot and reset the WAL; returns bytes written.

        Crash-safe in every interleaving: the snapshot replaces its
        predecessor atomically, and until the WAL reset lands a reopen
        merely replays records whose effects the snapshot already
        contains (replay is idempotent for adds and removes alike).
        """
        self._require_open()
        start = time.perf_counter()
        nbytes = write_snapshot(
            self.snapshot_path,
            self._fingerprint,
            sorted(self.model.edb_facts, key=lambda a: a.sort_key()),
            self.model.database.sorted_atoms(),
            hooks=self.hooks,
            metrics=self.metrics,
        )
        self.wal.reset()
        if self.metrics is not None:
            self.metrics.add_time("snapshot_write", time.perf_counter() - start)
        self.stats.compactions += 1
        return nbytes

    #: :meth:`compact` is :meth:`checkpoint` under its log-centric name.
    compact = checkpoint

    def _require_open(self) -> None:
        if self.model is None or self.wal is None:
            raise StorageError(f"{self.path}: store is not open")

    def __repr__(self) -> str:
        state = "open" if self.model is not None else "closed"
        return f"DurableStore({self.path!r}, {state})"
