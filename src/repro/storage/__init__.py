"""Durable storage: codec, write-ahead log, snapshots, and the store.

The engine keeps the computed model in memory (:mod:`repro.engine`);
this package makes that state survive process restarts:

* :mod:`repro.storage.codec` — a stable, versioned encoding of ground
  U-terms and atoms with round-trip guarantees,
* :mod:`repro.storage.wal` — an append-only, CRC-checked write-ahead
  log of EDB mutations with torn-tail truncation on open,
* :mod:`repro.storage.snapshot` — atomic (write-temp-then-rename)
  snapshots of the full database, including materialized IDB
  extensions and the program's layering fingerprint,
* :mod:`repro.storage.store` — :class:`DurableStore`, composing the
  three into open → load snapshot → replay WAL → serve, with log
  compaction.
"""

from repro.storage.codec import (
    CODEC_VERSION,
    decode_atom,
    decode_atom_row,
    decode_term,
    dumps_atom,
    dumps_id_row,
    encode_atom,
    encode_id_row,
    encode_term,
    loads_atom,
    term_fragment,
)
from repro.storage.snapshot import Snapshot, load_snapshot, program_fingerprint, write_snapshot
from repro.storage.store import DurableStore, StoreStats
from repro.storage.wal import WalRecord, WriteAheadLog

__all__ = [
    "CODEC_VERSION",
    "DurableStore",
    "Snapshot",
    "StoreStats",
    "WalRecord",
    "WriteAheadLog",
    "decode_atom",
    "decode_atom_row",
    "decode_term",
    "dumps_atom",
    "dumps_id_row",
    "encode_atom",
    "encode_id_row",
    "encode_term",
    "load_snapshot",
    "loads_atom",
    "program_fingerprint",
    "term_fragment",
    "write_snapshot",
]
