"""Small shared utilities."""

from __future__ import annotations

import sys
from contextlib import contextmanager

#: Upper bound for temporary recursion-limit bumps.  Python frames in
#: CPython ≥ 3.11 are cheap, but generator resumption still consumes C
#: stack, so an unbounded limit could fault instead of raising.
MAX_RECURSION_LIMIT = 500_000


@contextmanager
def deep_recursion(estimated_frames: int):
    """Temporarily raise the interpreter recursion limit.

    Deep derivations (a 1000-edge chain explained or solved top-down)
    legitimately recurse proportionally to the data.  ``estimated_frames``
    is the caller's worst-case need; the limit is only ever raised,
    never lowered, and restored afterwards.
    """
    previous = sys.getrecursionlimit()
    target = min(max(previous, estimated_frames), MAX_RECURSION_LIMIT)
    sys.setrecursionlimit(target)
    try:
        yield
    finally:
        sys.setrecursionlimit(previous)
