"""Reserved names and fresh-name generation.

LDL1 reserves some predicate symbols (``member``, ``union``, ... —
paper Section 2.1) and the source-to-source transformations of
Sections 3.3 and 4 need fresh predicate symbols that cannot clash with
user programs.
"""

from __future__ import annotations

from itertools import count
from typing import Iterable

#: Built-in (reserved) predicate symbols with fixed interpretations
#: (Section 2.2 restrictions, plus the arithmetic/comparison predicates
#: the paper declares built in, and ``partition`` used by the Section 1
#: parts-explosion example).
BUILTIN_PREDICATES = frozenset(
    {
        "member",
        "union",
        "intersection",
        "difference",
        "partition",
        "subset",
        "card",
        "sum",
        "min_of",
        "max_of",
        "=",
        "!=",
        "<",
        "<=",
        ">",
        ">=",
    }
)

#: Built-in function symbols (Section 2.1).
BUILTIN_FUNCTIONS = frozenset({"scons"})


def is_builtin_predicate(name: str) -> bool:
    """True for reserved predicate symbols with a fixed interpretation."""
    return name in BUILTIN_PREDICATES


class FreshNames:
    """Generate predicate names guaranteed absent from a program.

    >>> gen = FreshNames({"p", "q"}, prefix="aux")
    >>> gen.fresh()
    'aux_1'
    >>> gen.fresh("p")
    'p_2'
    """

    def __init__(self, taken: Iterable[str], prefix: str = "aux") -> None:
        self._taken = set(taken) | set(BUILTIN_PREDICATES)
        self._prefix = prefix
        self._counter = count(1)

    def fresh(self, stem: str | None = None) -> str:
        """Return an unused name based on ``stem`` (default: the prefix)."""
        stem = stem or self._prefix
        while True:
            candidate = f"{stem}_{next(self._counter)}"
            if candidate not in self._taken:
                self._taken.add(candidate)
                return candidate

    def reserve(self, name: str) -> None:
        """Mark a name as taken without generating it."""
        self._taken.add(name)
