"""Pretty-printer for LDL1 terms, atoms, literals, rules, and programs.

Produces concrete syntax that round-trips through :mod:`repro.parser`:
``parse(format(x)) == x`` for every construct (tested property-wise).
"""

from __future__ import annotations

import re

from repro.terms.term import (
    ARITHMETIC_FUNCTORS,
    Const,
    Func,
    GroupTerm,
    SetPattern,
    SetVal,
    Term,
    Var,
)

_BARE_SYMBOL = re.compile(r"[a-z][A-Za-z0-9_]*\Z")

#: Binary functors printed infix.
_INFIX_FUNCTORS = {"+", "-", "*", "/", "mod"}

#: Binary predicates printed infix.
INFIX_PREDICATES = {"=", "!=", "<", "<=", ">", ">="}


def format_term(term: Term) -> str:
    """Render a term in concrete LDL1 syntax."""
    if isinstance(term, Var):
        return term.name
    if isinstance(term, Const):
        return _format_const(term)
    if isinstance(term, SetVal):
        inner = ", ".join(format_term(e) for e in term)  # sorted by SetVal.__iter__
        return "{" + inner + "}"
    if isinstance(term, SetPattern):
        inner = ", ".join(format_term(t) for t in term.items)
        if term.rest is not None:
            return "{" + inner + " | " + format_term(term.rest) + "}"
        return "{" + inner + "}"
    if isinstance(term, GroupTerm):
        return "<" + format_term(term.inner) + ">"
    if isinstance(term, Func):
        if term.functor == "tuple" and len(term.args) >= 2:
            inner = ", ".join(format_term(a) for a in term.args)
            return f"({inner})"
        if term.functor in _INFIX_FUNCTORS and len(term.args) == 2:
            left, right = term.args
            return f"({format_term(left)} {term.functor} {format_term(right)})"
        args = ", ".join(format_term(a) for a in term.args)
        functor = term.functor
        if not _BARE_SYMBOL.match(functor) and functor not in ARITHMETIC_FUNCTORS:
            functor = _quote(functor)
        return f"{functor}({args})"
    raise TypeError(f"cannot format {term!r}")


def _format_const(term: Const) -> str:
    value = term.value
    if isinstance(value, bool):  # pragma: no cover - Const rejects bools
        raise TypeError("boolean constant")
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if term.quoted or not _BARE_SYMBOL.match(value):
        return _quote(value)
    return value


def _quote(text: str) -> str:
    escaped = text.replace("\\", "\\\\").replace("'", "\\'")
    return f"'{escaped}'"


def format_atom(atom) -> str:
    """Render an atom; infix comparison predicates print infix."""
    if atom.pred in INFIX_PREDICATES and len(atom.args) == 2:
        left, right = atom.args
        return f"{format_term(left)} {atom.pred} {format_term(right)}"
    if not atom.args:
        return atom.pred
    args = ", ".join(format_term(a) for a in atom.args)
    return f"{atom.pred}({args})"


def format_literal(literal) -> str:
    """Render a literal, prefixing ``~`` when negative."""
    text = format_atom(literal.atom)
    if literal.positive:
        return text
    return f"~{text}"


def format_rule(rule) -> str:
    """Render a rule (or fact, when the body is empty) with trailing dot."""
    head = format_atom(rule.head)
    if not rule.body:
        return f"{head}."
    body = ", ".join(format_literal(lit) for lit in rule.body)
    return f"{head} <- {body}."


def format_query(query) -> str:
    """Render a query ``? p(...)``."""
    return f"? {format_atom(query.atom)}."


def format_program(program) -> str:
    """Render a whole program, one rule per line."""
    return "\n".join(format_rule(rule) for rule in program.rules)
