"""Domination orders on U-elements and U-facts (paper Section 2.4).

The paper replaces set-inclusion minimality with a *domination* order:

* **basic fact domination** — ``p(s1..sn) <= p(s1'..sn')`` iff for each
  argument position, set arguments are related by subset and non-set
  arguments are equal;
* **elaborate element domination** (the Remark) — recursive: equal
  terms, functor terms dominated argument-wise, and sets dominated by
  pointwise coverage (every element of the smaller set is dominated by
  some element of the larger);
* **set-of-facts domination** ``A <= B`` — derived from the submodel
  definition: there must be a *preserving* function ``rho`` and a subset
  ``B'' of B`` with ``rho(B'') = A``; since ``rho`` is a function this
  is exactly an injective matching of A into B along fact domination.

The injective matching is computed with Hopcroft–Karp via networkx.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import networkx as nx

from repro.terms.term import Func, SetVal, Term


def element_dominated(a: Term, b: Term) -> bool:
    """Elaborate domination ``a <= b`` on U-elements (Section 2.4 Remark)."""
    if a == b:
        return True
    if isinstance(a, Func) and isinstance(b, Func):
        return (
            a.functor == b.functor
            and len(a.args) == len(b.args)
            and all(element_dominated(x, y) for x, y in zip(a.args, b.args))
        )
    if isinstance(a, SetVal) and isinstance(b, SetVal):
        return all(
            any(element_dominated(x, y) for y in b.elements) for x in a.elements
        )
    return False


def _args_of(fact) -> Sequence[Term]:
    return fact.args


def fact_dominated(a, b, elaborate: bool = False) -> bool:
    """Fact domination ``a <= b`` on U-facts.

    With ``elaborate=False`` (the paper's primary definition) a set
    argument must be a subset of the corresponding argument and any
    other argument must be equal.  With ``elaborate=True`` every
    argument is compared with :func:`element_dominated`.
    """
    if a.pred != b.pred or len(_args_of(a)) != len(_args_of(b)):
        return False
    for x, y in zip(_args_of(a), _args_of(b)):
        if elaborate:
            if not element_dominated(x, y):
                return False
        elif isinstance(x, SetVal) and isinstance(y, SetVal):
            if not x.elements <= y.elements:
                return False
        elif x != y:
            return False
    return True


def factset_dominated(
    a_facts: Iterable,
    b_facts: Iterable,
    elaborate: bool = False,
    dominates: Callable | None = None,
) -> bool:
    """Set-of-facts domination ``A <= B`` via injective matching.

    True iff there is an injection ``phi: A -> B`` with
    ``fact_dominated(a, phi(a))`` for every ``a``.  This realizes the
    paper's "preserving function rho with rho(B'') = A" condition.  A
    custom ``dominates(a, b)`` predicate may replace fact domination.
    """
    a_list = list(a_facts)
    b_list = list(b_facts)
    if not a_list:
        return True
    if len(a_list) > len(b_list):
        return False
    if dominates is None:
        def dominates(x, y, _elab=elaborate):
            return fact_dominated(x, y, elaborate=_elab)

    graph = nx.Graph()
    a_nodes = [("a", i) for i in range(len(a_list))]
    b_nodes = [("b", j) for j in range(len(b_list))]
    graph.add_nodes_from(a_nodes, bipartite=0)
    graph.add_nodes_from(b_nodes, bipartite=1)
    for i, fa in enumerate(a_list):
        for j, fb in enumerate(b_list):
            if dominates(fa, fb):
                graph.add_edge(("a", i), ("b", j))
    matching = nx.algorithms.bipartite.matching.hopcroft_karp_matching(
        graph, top_nodes=a_nodes
    )
    matched_a = sum(1 for node in matching if node[0] == "a")
    return matched_a == len(a_list)


def is_partial_order_sample(terms: Sequence[Term]) -> bool:
    """Check reflexivity/antisymmetry/transitivity of elaborate
    domination on a finite sample of U-elements.

    Used by property-based tests; returns False on the first violated
    axiom.  Antisymmetry holds on canonical U-elements because mutual
    set coverage of finite sets forces equality only in the basic order;
    for the elaborate order mutual domination may relate distinct terms
    (e.g. nested sets), so antisymmetry is only asserted for set-free
    terms.
    """
    for x in terms:
        if not element_dominated(x, x):
            return False
    for x in terms:
        for y in terms:
            for z in terms:
                if (
                    element_dominated(x, y)
                    and element_dominated(y, z)
                    and not element_dominated(x, z)
                ):
                    return False
    for x in terms:
        for y in terms:
            if (
                element_dominated(x, y)
                and element_dominated(y, x)
                and x != y
                and _set_free(x)
                and _set_free(y)
            ):
                return False
    return True


def _set_free(term: Term) -> bool:
    return not any(isinstance(t, SetVal) for t in term.walk())
