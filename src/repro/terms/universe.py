"""The LDL1 universe *U* (paper Section 2.2).

``U0`` is the classical Herbrand universe of simple variable-free terms;
``U_{n+1}`` closes ``U_n`` under finite subsets and (non-``scons``)
function application, and ``U`` is the union of all ``U_n``.  Every
canonical ground term built from constants, free functors, and
:class:`~repro.terms.term.SetVal` values lies in *U*; ``scons`` terms do
not (they are *interpreted into* U by evaluation, Section 2.2
restriction 1).

This module provides the membership test, the *rank* of a U-element
(the least ``n`` with the element in ``U_n``), and the set-nesting
depth, which the paper's ``U_n`` hierarchy stratifies.
"""

from __future__ import annotations

from repro.errors import EvaluationError
from repro.terms.term import (
    SCONS,
    Const,
    Func,
    GroupTerm,
    SetPattern,
    SetVal,
    Term,
    Var,
)


def in_universe(term: Term) -> bool:
    """Return True when ``term`` is a canonical element of *U*.

    Canonical means: ground, no ``scons`` or arithmetic left unfolded
    (any functor is allowed *structurally* except ``scons``; arithmetic
    functors over numbers would have been folded by evaluation, but a
    symbolic ``+('a', 'b')`` is a legitimate free term), no set
    patterns, and no grouping terms.
    """
    if isinstance(term, (Var, GroupTerm, SetPattern)):
        return False
    if isinstance(term, Const):
        return True
    if isinstance(term, SetVal):
        return all(in_universe(e) for e in term.elements)
    if isinstance(term, Func):
        if term.functor == SCONS:
            return False
        return all(in_universe(a) for a in term.args)
    return False


def set_depth(term: Term) -> int:
    """Maximum nesting depth of sets inside ``term`` (0 when set-free)."""
    if isinstance(term, Const):
        return 0
    if isinstance(term, SetVal):
        if not term.elements:
            return 1
        return 1 + max(set_depth(e) for e in term.elements)
    if isinstance(term, Func):
        return max(set_depth(a) for a in term.args)
    raise EvaluationError(f"set_depth of non-U term {term!r}")


def universe_rank(term: Term) -> int:
    """Least ``n`` such that ``term`` is in ``U_n``.

    ``U_0`` contains exactly the set-free simple terms, and each
    application of F(·) (forming a finite set) forces one more level, so
    the rank of a U-element equals its set-nesting depth.  Function
    application does not raise the rank beyond its arguments' maximum
    because each ``U_n`` is closed under (finitely iterated) function
    application via the ``G_{n,j}`` stages.
    """
    if not in_universe(term):
        raise EvaluationError(f"{term!r} is not in the LDL1 universe")
    return set_depth(term)


def finite_subsets(terms: frozenset[Term] | set[Term], max_size: int | None = None):
    """Enumerate F(S): all finite subsets of ``terms`` as SetVal values.

    ``max_size`` caps the subset cardinality (the full F(S) of an n-set
    has 2**n members).  Yields subsets in increasing cardinality, each
    deterministic in content order.
    """
    from itertools import combinations

    ordered = sorted(terms, key=lambda t: t.sort_key())
    top = len(ordered) if max_size is None else min(max_size, len(ordered))
    for size in range(top + 1):
        for combo in combinations(ordered, size):
            yield SetVal(combo)
