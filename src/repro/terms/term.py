"""LDL1 term algebra (paper Section 2.1).

Terms extend classical first-order terms with finite sets:

* :class:`Var` — a logical variable (``X``, ``Y``, ``_``),
* :class:`Const` — a constant: a symbol (``john``), a number, or a string,
* :class:`Func` — a compound term ``f(t1, ..., tn)``,
* :class:`SetVal` — a *ground* finite set, the interpretation of ``{}``
  and of enumerated sets under the LDL1 universe (Section 2.2),
* :class:`SetPattern` — a syntactic enumerated-set term ``{t1, ..., tn}``
  possibly with a rest variable ``{t1, ..., tn | R}`` (sugar for nested
  ``scons``); becomes a :class:`SetVal` once ground,
* :class:`GroupTerm` — the grouping construct ``<t>`` used in rule heads
  (and, in LDL1.5, rule bodies).

All terms are immutable and hashable.  Ground terms form the LDL1
universe *U*; :func:`evaluate_ground` folds the built-in constructor
``scons`` and ground set patterns into canonical :class:`SetVal` values,
raising :class:`~repro.errors.NotInUniverseError` when the result would
fall outside *U* (e.g. ``scons`` onto a non-set).

Two hot-path mechanisms live here:

* **cached hashes** — every term carries a ``_hash`` slot filled on the
  first ``hash()`` call; equality short-circuits on identity and on
  differing cached hashes before falling back to structural comparison.
  Cached hashes never survive pickling (``hash(str)`` is randomized per
  process), so every class reduces to its constructor arguments;
* **interning** — :func:`intern_term` maps structurally equal ground
  terms to one canonical representative.  :func:`evaluate_ground` and
  the storage codec intern every term they produce, so facts flowing
  through the evaluator, the durable store, and the server protocol
  share subterm objects and equality in join probes usually hits the
  ``is`` fast path.  A per-term ``_interned`` flag marks canonical
  representatives so re-evaluating an already-canonical term is a
  single attribute load.  The table uses ``dict.setdefault``: under
  concurrent decodes (server executor threads) two equal representatives
  can transiently escape, which is benign — identity is only ever a fast
  path over structural equality.  :func:`clear_intern_table` releases
  the table (e.g. between long-lived server workloads);
* **dense term IDs** — every canonical representative is also assigned
  a dense ``int`` ID at intern time, with a reverse table mapping IDs
  back to terms (:func:`term_of_id`).  Two ID notions coexist because
  ``Const.__eq__`` ignores ``quoted`` while the intern table does not:

  - :func:`term_id` — the *faithful* ID, 1:1 with intern-table entries
    (a quoted and an unquoted string constant get distinct IDs), used
    by the storage codec so round-trips preserve printing;
  - :func:`row_id` — the *equality-class* ID shared by all terms that
    compare equal (quoted/unquoted collapse to the class's first
    assigned ID), used by the columnar relation storage and the
    specialized executors so ID equality coincides exactly with term
    equality.

  For every term kind except string constants the two IDs agree.  IDs
  are assigned under a small lock (so the dense sequence has no holes)
  and are process-local, never persisted as-is.
"""

from __future__ import annotations

import threading
from typing import Iterable, Iterator, Mapping

from repro.errors import EvaluationError, NotInUniverseError

#: Name of the built-in binary set constructor (paper Section 2.1).
SCONS = "scons"

#: Function symbols evaluated arithmetically when all arguments are numbers.
ARITHMETIC_FUNCTORS = frozenset({"+", "-", "*", "/", "mod", "min", "max", "abs"})


class Term:
    """Abstract base class for all LDL1 terms."""

    __slots__ = ()

    #: Rank used by :func:`sort_key` to order terms of different kinds.
    _kind_rank = 99

    def is_ground(self) -> bool:
        """Return True when the term contains no variables."""
        raise NotImplementedError

    def variables(self) -> frozenset[str]:
        """Return the set of variable names occurring in the term."""
        raise NotImplementedError

    def substitute(self, binding: Mapping[str, "Term"]) -> "Term":
        """Replace variables per ``binding``; unbound variables stay."""
        raise NotImplementedError

    def walk(self) -> Iterator["Term"]:
        """Yield this term and every subterm, pre-order."""
        yield self

    def sort_key(self):
        """Deterministic total-order key across all term kinds."""
        raise NotImplementedError


class Var(Term):
    """A logical variable, identified by name."""

    __slots__ = ("name", "_hash", "_interned", "_tid", "_rid")
    _kind_rank = 0

    def __init__(self, name: str) -> None:
        self.name = name
        self._hash = None
        self._interned = False
        self._tid = None
        self._rid = None

    def is_ground(self) -> bool:
        return False

    def variables(self) -> frozenset[str]:
        return frozenset((self.name,))

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return binding.get(self.name, self)

    def sort_key(self):
        return (self._kind_rank, self.name)

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((Var, self.name))
            self._hash = h
        return h

    def __reduce__(self):
        return (Var, (self.name,))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


class Const(Term):
    """A constant: a symbol, an integer, a float, or a quoted string.

    Symbols and strings are both carried as ``str``; ``quoted`` records
    whether the constant was written as a quoted string, which only
    affects printing.
    """

    __slots__ = ("value", "quoted", "_hash", "_interned", "_tid", "_rid")
    _kind_rank = 1

    def __init__(self, value, quoted: bool = False) -> None:
        if not isinstance(value, (int, float, str)) or isinstance(value, bool):
            raise TypeError(f"unsupported constant payload: {value!r}")
        self.value = value
        self.quoted = quoted and isinstance(value, str)
        self._hash = None
        self._interned = False
        self._tid = None
        self._rid = None

    def is_ground(self) -> bool:
        return True

    def variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return self

    def sort_key(self):
        if isinstance(self.value, str):
            return (self._kind_rank, 1, self.value)
        return (self._kind_rank, 0, float(self.value), str(self.value))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, Const)
            and self.value == other.value
            and type(self.value) is type(other.value)
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((Const, type(self.value).__name__, self.value))
            self._hash = h
        return h

    def __reduce__(self):
        return (Const, (self.value, self.quoted))

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


class Func(Term):
    """A compound term ``functor(args...)`` with a fixed arity."""

    __slots__ = ("functor", "args", "_hash", "_interned", "_ground", "_tid", "_rid")
    _kind_rank = 2

    def __init__(self, functor: str, args: Iterable[Term]) -> None:
        self.functor = functor
        self.args = tuple(args)
        self._hash = None
        self._interned = False
        self._ground = None
        self._tid = None
        self._rid = None
        if not self.args:
            raise ValueError(
                f"zero-arity Func {functor!r}; use Const for plain symbols"
            )

    def is_ground(self) -> bool:
        g = self._ground
        if g is None:
            g = all(a.is_ground() for a in self.args)
            self._ground = g
        return g

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for a in self.args:
            out |= a.variables()
        return out

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return Func(self.functor, [a.substitute(binding) for a in self.args])

    def walk(self) -> Iterator[Term]:
        yield self
        for a in self.args:
            yield from a.walk()

    def sort_key(self):
        return (
            self._kind_rank,
            self.functor,
            len(self.args),
            tuple(a.sort_key() for a in self.args),
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, Func):
            return False
        h1, h2 = self._hash, other._hash
        if h1 is not None and h2 is not None and h1 != h2:
            return False
        return self.functor == other.functor and self.args == other.args

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((Func, self.functor, self.args))
            self._hash = h
        return h

    def __reduce__(self):
        return (Func, (self.functor, self.args))

    def __repr__(self) -> str:
        return f"Func({self.functor!r}, {list(self.args)!r})"


class SetVal(Term):
    """A ground finite set — an element of F(U) in the LDL1 universe."""

    __slots__ = ("elements", "_hash", "_interned", "_tid", "_rid")
    _kind_rank = 3

    def __init__(self, elements: Iterable[Term] = ()) -> None:
        elems = frozenset(elements)
        for e in elems:
            if not isinstance(e, Term):
                raise TypeError(f"set element is not a Term: {e!r}")
            if not e.is_ground():
                raise ValueError(f"SetVal element must be ground: {e!r}")
        self.elements = elems
        self._hash = None
        self._interned = False
        self._tid = None
        self._rid = None

    @classmethod
    def from_ground(cls, elements: Iterable[Term]) -> "SetVal":
        """Build from elements already known to be ground U-elements.

        Skips the per-element validation walk; only for callers whose
        inputs come out of :func:`evaluate_ground` or an existing
        :class:`SetVal` — set algebra in the builtins, for instance.
        """
        self = cls.__new__(cls)
        self.elements = frozenset(elements)
        self._hash = None
        self._interned = False
        self._tid = None
        self._rid = None
        return self

    def is_ground(self) -> bool:
        return True

    def variables(self) -> frozenset[str]:
        return frozenset()

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return self

    def walk(self) -> Iterator[Term]:
        yield self
        for e in self.elements:
            yield from e.walk()

    def sort_key(self):
        return (
            self._kind_rank,
            len(self.elements),
            tuple(sorted(e.sort_key() for e in self.elements)),
        )

    def __contains__(self, item: Term) -> bool:
        return item in self.elements

    def __len__(self) -> int:
        return len(self.elements)

    def __iter__(self) -> Iterator[Term]:
        return iter(sorted(self.elements, key=lambda t: t.sort_key()))

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, SetVal):
            return False
        h1, h2 = self._hash, other._hash
        if h1 is not None and h2 is not None and h1 != h2:
            return False
        return self.elements == other.elements

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((SetVal, self.elements))
            self._hash = h
        return h

    def __reduce__(self):
        return (SetVal, (tuple(self.elements),))

    def __repr__(self) -> str:
        return f"SetVal({sorted(self.elements, key=lambda t: t.sort_key())!r})"


class SetPattern(Term):
    """A syntactic enumerated set ``{t1, ..., tn}`` or ``{t1, ... | Rest}``.

    Appears in rules; duplicates among the ``ti`` collapse once ground
    (paper Section 1: "duplicate elements are eliminated during the set
    construction process").  ``rest``, when present, must be a variable
    or another set term and denotes the remaining elements, mirroring
    ``scons(t1, scons(..., rest))``.
    """

    __slots__ = ("items", "rest", "_hash", "_interned", "_tid", "_rid")
    _kind_rank = 4

    def __init__(self, items: Iterable[Term], rest: Term | None = None) -> None:
        self.items = tuple(items)
        self.rest = rest
        self._hash = None
        self._interned = False
        self._tid = None
        self._rid = None
        if rest is not None and not isinstance(rest, (Var, SetVal, SetPattern, Func)):
            raise TypeError(f"set-pattern rest must be a variable or set: {rest!r}")

    def is_ground(self) -> bool:
        rest_ground = self.rest is None or self.rest.is_ground()
        return rest_ground and all(t.is_ground() for t in self.items)

    def variables(self) -> frozenset[str]:
        out: frozenset[str] = frozenset()
        for t in self.items:
            out |= t.variables()
        if self.rest is not None:
            out |= self.rest.variables()
        return out

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        items = tuple(t.substitute(binding) for t in self.items)
        rest = None if self.rest is None else self.rest.substitute(binding)
        pattern = SetPattern(items, rest)
        if pattern.is_ground():
            try:
                return evaluate_ground(pattern)
            except (EvaluationError, NotInUniverseError):
                # e.g. a rest bound to a non-set: stay a pattern; the
                # consumer's evaluation rejects the binding as not
                # applicable (Section 3.2).
                return pattern
        return pattern

    def walk(self) -> Iterator[Term]:
        yield self
        for t in self.items:
            yield from t.walk()
        if self.rest is not None:
            yield from self.rest.walk()

    def sort_key(self):
        rest_key = () if self.rest is None else self.rest.sort_key()
        return (
            self._kind_rank,
            tuple(t.sort_key() for t in self.items),
            rest_key,
        )

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return (
            isinstance(other, SetPattern)
            and self.items == other.items
            and self.rest == other.rest
        )

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((SetPattern, self.items, self.rest))
            self._hash = h
        return h

    def __reduce__(self):
        return (SetPattern, (self.items, self.rest))

    def __repr__(self) -> str:
        return f"SetPattern({list(self.items)!r}, rest={self.rest!r})"


class GroupTerm(Term):
    """The grouping construct ``<t>`` (paper Sections 2.1 and 4).

    In base LDL1 the inner term is a single variable and the construct
    appears only as a direct argument of a rule head.  LDL1.5 allows
    arbitrary inner terms and body occurrences; those are compiled away
    by :mod:`repro.transform`.
    """

    __slots__ = ("inner", "_hash", "_interned", "_tid", "_rid")
    _kind_rank = 5

    def __init__(self, inner: Term) -> None:
        self.inner = inner
        self._hash = None
        self._interned = False
        self._tid = None
        self._rid = None

    def is_ground(self) -> bool:
        return False

    def variables(self) -> frozenset[str]:
        return self.inner.variables()

    def substitute(self, binding: Mapping[str, Term]) -> Term:
        return GroupTerm(self.inner.substitute(binding))

    def walk(self) -> Iterator[Term]:
        yield self
        yield from self.inner.walk()

    def sort_key(self):
        return (self._kind_rank, self.inner.sort_key())

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        return isinstance(other, GroupTerm) and self.inner == other.inner

    def __hash__(self) -> int:
        h = self._hash
        if h is None:
            h = hash((GroupTerm, self.inner))
            self._hash = h
        return h

    def __reduce__(self):
        return (GroupTerm, (self.inner,))

    def __repr__(self) -> str:
        return f"GroupTerm({self.inner!r})"


#: Canonical representatives of ground terms, keyed structurally.  The
#: table grows with the set of distinct ground terms seen by a process;
#: long-lived servers can release it with :func:`clear_intern_table`.
_INTERN_TABLE: dict = {}

#: Reverse table: dense ID → canonical term.  Index ``tid`` holds the
#: term whose faithful ID is ``tid``; for an equality-class ID (``rid``)
#: the slot holds the class representative that columnar relations
#: materialize — for string classes always the *unquoted* spelling
#: (``_assign_ids`` registers it eagerly), so decoded output never
#: depends on intern order.  Mutated in place only (``append``/
#: ``clear``) so closures may capture the list object.
_ID_TABLE: list[Term] = []

#: Equality-class IDs for string-valued constants: the only term kind
#: where the intern table holds several entries per equality class
#: (quoted vs unquoted).  Maps the string payload to the class's ID.
_EQ_IDS: dict[str, int] = {}

#: Numeric lane parallel to :data:`_ID_TABLE`: index ``tid`` holds the
#: raw Python number of a numeric :class:`Const` (the shape
#: ``fold_arith`` accepts: ``type(term) is Const`` with an int/float
#: payload) and None for every other term.  The vector kernels read it
#: to run arithmetic and comparisons directly in ID space — one list
#: subscript instead of materialize + isinstance checks per operand.
#: Mutated in place only (``append``/``clear``), in lockstep with
#: ``_ID_TABLE``, so closures may capture the list object.
_NUM_TABLE: list = []

#: Callbacks invoked by :func:`clear_intern_table`: modules that memoize
#: dense IDs process-wide (the vector kernels' number→ID and set-union
#: memos) register here so a clear cannot leave dangling IDs behind.
_CLEAR_LISTENERS: list = []


def register_clear_listener(fn) -> None:
    """Call ``fn()`` whenever :func:`clear_intern_table` runs.

    For process-wide caches keyed by (or holding) dense term IDs, which
    dangle when the ID tables reset.  Idempotent registration is the
    caller's concern; listeners must not raise.
    """
    _CLEAR_LISTENERS.append(fn)

#: Guards dense-ID assignment so the ID sequence stays gap-free and a
#: term's ``_tid``/``_rid`` pair is published atomically.
_ID_LOCK = threading.Lock()


def _assign_ids(term: Term) -> None:
    """Give a canonical representative its dense IDs (idempotent).

    Composite terms assign their subterms first — Func args left to
    right, set elements in iteration order (the same walk
    ``encode_term`` takes) — so the dense-ID table stays topological.
    :func:`intern_snapshot` replay depends on that: a fresh process
    re-interning the table's codec fragments bottom-up must land every
    entry on the sender's exact ID, which fails if a subterm's first
    table appearance is *inside* a composite entry.
    """
    if term._tid is None:
        if isinstance(term, Func):
            for arg in term.args:
                if arg._tid is None:
                    term_id(arg)
        elif isinstance(term, SetVal):
            for element in term:
                if element._tid is None:
                    term_id(element)
    with _ID_LOCK:
        if term._tid is not None:
            return
        if (
            isinstance(term, Const)
            and isinstance(term.value, str)
            and term.quoted
            and term.value not in _EQ_IDS
        ):
            # The class representative — what everything materializing
            # out of ID space (columnar decode, specialized bindings,
            # derived heads) spells a value as — must not depend on
            # which variant a process interned first.  Register the
            # unquoted twin now so it always claims the class ID.
            plain_key = (Const, str, term.value, False)
            plain = _INTERN_TABLE.get(plain_key)
            if plain is None:
                plain = _INTERN_TABLE.setdefault(plain_key, Const(term.value))
            if plain._tid is None:
                ptid = len(_ID_TABLE)
                _ID_TABLE.append(plain)
                _NUM_TABLE.append(None)
                plain._rid = _EQ_IDS.setdefault(plain.value, ptid)
                plain._tid = ptid
                plain._interned = True
        tid = len(_ID_TABLE)
        _ID_TABLE.append(term)
        _NUM_TABLE.append(
            term.value
            if type(term) is Const and isinstance(term.value, (int, float))
            else None
        )
        if isinstance(term, Const) and isinstance(term.value, str):
            term._rid = _EQ_IDS.setdefault(term.value, tid)
        else:
            term._rid = tid
        term._tid = tid


def _intern_key(term: Term):
    """Table key for ``term``.

    ``Const.__eq__`` deliberately ignores ``quoted`` (it only affects
    printing), but interning must not collapse the distinction: the
    storage codec tags quoted strings differently, and canonical
    snapshot bytes would otherwise depend on which variant a process
    happened to intern first.
    """
    if isinstance(term, Const):
        return (Const, term.value.__class__, term.value, term.quoted)
    return term


def intern_term(term: Term) -> Term:
    """Return the canonical representative of a ground term.

    Structurally equal terms interned by the same process map to one
    object, so equality between interned terms usually succeeds on the
    ``is`` fast path and their cached hashes are computed once.  A term
    that already is the canonical representative carries
    ``_interned=True`` and returns immediately without touching the
    table.  The lookup uses ``dict.setdefault``; concurrent callers
    (server executor threads) may transiently both insert, which is
    benign — identity is a fast path over structural equality, never a
    substitute for it.
    """
    if term._interned:
        return term
    key = _intern_key(term)
    interned = _INTERN_TABLE.get(key)
    if interned is not None:
        return interned
    winner = _INTERN_TABLE.setdefault(key, term)
    if winner._tid is None:
        _assign_ids(winner)
    winner._interned = True
    return winner


def intern_const(value, quoted: bool = False) -> Const:
    """Canonical :class:`Const` for ``value`` without allocating first.

    Equivalent to ``intern_term(Const(value, quoted))`` but probes the
    table directly, so the hot arithmetic/comparison paths skip the
    throwaway allocation whenever the constant has been seen before.
    """
    key = (Const, value.__class__, value, quoted)
    interned = _INTERN_TABLE.get(key)
    if interned is not None:
        return interned
    term = Const(value, quoted)
    winner = _INTERN_TABLE.setdefault(key, term)
    if winner._tid is None:
        _assign_ids(winner)
    winner._interned = True
    return winner


def intern_table_size() -> int:
    """Number of canonical representatives currently held."""
    return len(_INTERN_TABLE)


def term_id(term: Term) -> int:
    """The faithful dense ID of ``term``, interning it first if needed.

    1:1 with intern-table entries: quoted and unquoted string constants
    get *distinct* IDs, so ``term_of_id(term_id(t)) == t`` preserves
    the printing distinction the storage codec depends on.  The caller
    supplies a ground term (the interning contract).
    """
    tid = term._tid
    if tid is not None:
        return tid
    term = intern_term(term)
    if term._tid is None:  # raced the _interned flag; settle under the lock
        _assign_ids(term)
    return term._tid


def row_id(term: Term) -> int:
    """The equality-class dense ID of ``term``, interning if needed.

    All terms that compare equal share one row ID (quoted/unquoted
    string constants collapse), so ID equality over row IDs coincides
    exactly with term equality — the invariant the columnar relations
    and the specialized executors are built on.
    """
    rid = term._rid
    if rid is not None:
        return rid
    term = intern_term(term)
    if term._rid is None:
        _assign_ids(term)
    return term._rid


def term_of_id(tid: int) -> Term:
    """The canonical term for a dense ID (inverse of :func:`term_id`).

    For an equality-class ID this is the class's first-interned
    representative.  Raises :class:`IndexError` for IDs never assigned
    by this process (or assigned before a :func:`clear_intern_table`).
    """
    return _ID_TABLE[tid]


def id_table_size() -> int:
    """Number of dense IDs assigned so far (the reverse-table length)."""
    return len(_ID_TABLE)


def intern_snapshot(start: int = 0) -> list[Term]:
    """The dense-ID table slice ``[start:]``, in assignment order.

    The partitioned evaluator ships this (as codec fragments) to fresh
    worker processes so their dense IDs agree with the coordinator's:
    assignment order is replayable because the table is topological —
    every subterm of an entry was interned (and got its ID) before the
    entry itself, and ``_assign_ids`` registers a quoted string's
    unquoted twin eagerly, so the twin always precedes it.
    """
    return _ID_TABLE[start:]


def sync_intern_terms(terms: Iterable[Term], expect_start: int) -> None:
    """Replay another process's dense-ID assignments from ``expect_start``.

    Interns each term in table order and verifies it lands on the exact
    ID the sending process assigned — the intern-table handshake of the
    partitioned evaluator.  After a successful sync every ID below the
    sender's watermark denotes the same term in both processes, so ID
    rows below the watermark can cross the process boundary as raw
    ints.  Raises :class:`ValueError` when the local table diverges
    (IDs assigned since the snapshot, or a non-topological snapshot);
    callers surface that as an evaluation error.
    """
    table = _ID_TABLE
    if len(table) < expect_start:
        raise ValueError(
            f"intern-table sync expects {expect_start} assigned IDs, "
            f"have {len(table)}"
        )
    for offset, term in enumerate(terms):
        expected = expect_start + offset
        if expected < len(table):
            local = table[expected]
            if local is term or (
                local == term
                and getattr(local, "quoted", None) == getattr(term, "quoted", None)
            ):
                continue
            raise ValueError(
                f"intern-table sync diverged at ID {expected}: "
                f"local {local!r} vs remote {term!r}"
            )
        assigned = term_id(intern_term(term))
        if assigned != expected:
            raise ValueError(
                f"intern-table sync assigned ID {assigned} where the "
                f"sender had {expected} ({term!r})"
            )


def clear_intern_table() -> None:
    """Release every interned representative (the shared constants below
    are re-seeded).  Existing terms stay valid and keep their
    ``_interned`` flag — they remain canonical for themselves; only
    identity sharing with terms interned later is lost.  The dense ID
    tables reset with the intern table: relations populated before a
    clear must not outlive it (their row IDs would dangle), which holds
    for the intended use between independent server workloads."""
    _INTERN_TABLE.clear()
    _ID_TABLE.clear()
    _NUM_TABLE.clear()
    _EQ_IDS.clear()
    for term in (EMPTY_SET, BOTTOM):
        _INTERN_TABLE.setdefault(_intern_key(term), term)
        term._tid = None
        term._rid = None
        _assign_ids(term)
    for listener in list(_CLEAR_LISTENERS):
        listener()


#: The empty set constant ``{}`` — interpreted as the empty SetVal.
EMPTY_SET = intern_term(SetVal())

#: The reserved bottom constant of Section 3.3, "whose usage is
#: prohibited in programs" and which the negation-to-grouping
#: transformation injects.
BOTTOM = intern_term(Const("$bottom"))


def mkset(elements: Iterable[Term]) -> SetVal:
    """Build a ground :class:`SetVal` from ground terms."""
    return SetVal(elements)


def const(value) -> Const:
    """Shorthand constructor for :class:`Const`."""
    return Const(value)


def _evaluate_arithmetic(functor: str, args: tuple[Term, ...]):
    """Fold an arithmetic functor applied to numeric constants.

    Returns the raw Python number; the caller interns it via
    :func:`intern_const` without an intermediate ``Const`` allocation.
    """
    values = []
    for a in args:
        if not isinstance(a, Const) or not isinstance(a.value, (int, float)):
            raise EvaluationError(
                f"arithmetic on non-number: {functor}({args!r})"
            )
        values.append(a.value)
    return fold_arithmetic_values(functor, values)


def fold_arithmetic_values(functor: str, values: list):
    """Apply an arithmetic functor to raw Python numbers.

    Shared by ground-term evaluation and the plan runner's precompiled
    arithmetic arguments.  Raises :class:`EvaluationError` on division
    or mod by zero and on unknown functors.
    """
    if functor == "+":
        result = values[0] + values[1]
    elif functor == "-":
        result = values[0] - values[1] if len(values) == 2 else -values[0]
    elif functor == "*":
        result = values[0] * values[1]
    elif functor == "/":
        if values[1] == 0:
            raise EvaluationError("division by zero")
        result = values[0] / values[1]
        if isinstance(values[0], int) and isinstance(values[1], int) and values[0] % values[1] == 0:
            result = values[0] // values[1]
    elif functor == "mod":
        if values[1] == 0:
            raise EvaluationError("mod by zero")
        result = values[0] % values[1]
    elif functor == "min":
        result = min(values)
    elif functor == "max":
        result = max(values)
    elif functor == "abs":
        result = abs(values[0])
    else:  # pragma: no cover - guarded by caller
        raise EvaluationError(f"unknown arithmetic functor {functor!r}")
    return result


def evaluate_ground(term: Term) -> Term:
    """Interpret a ground term as an element of the LDL1 universe U.

    Canonicalizes the term per the interpretation rules of Section 2.2:

    * ground :class:`SetPattern` terms become :class:`SetVal` values
      (with duplicates collapsed and the rest-set unioned in),
    * ``scons(t, S)`` becomes ``{t} | S`` when ``S`` is a set, and raises
      :class:`NotInUniverseError` otherwise (restriction 1),
    * arithmetic functors over numbers are folded to constants,
    * every other functor maps to "itself" (free interpretation).

    Every result is interned (:func:`intern_term`), so repeated
    evaluation of equal ground terms yields the identical object, and
    an already-canonical input returns itself after one flag check.
    Raises :class:`EvaluationError` on non-ground input.
    """
    if term._interned:
        return term
    if isinstance(term, (Const, Var, SetVal)):
        if isinstance(term, Var):
            raise EvaluationError(f"cannot evaluate non-ground term {term!r}")
        return intern_term(term)
    if isinstance(term, GroupTerm):
        raise EvaluationError(f"grouping term {term!r} is not a U-element")
    if isinstance(term, SetPattern):
        elements = [evaluate_ground(t) for t in term.items]
        if term.rest is not None:
            rest = evaluate_ground(term.rest)
            if not isinstance(rest, SetVal):
                raise NotInUniverseError(
                    f"set-pattern rest evaluated to a non-set: {rest!r}"
                )
            elements.extend(rest.elements)
        return intern_term(SetVal.from_ground(elements))
    if isinstance(term, Func):
        args = tuple(evaluate_ground(a) for a in term.args)
        if term.functor == SCONS:
            if len(args) != 2:
                raise EvaluationError("scons is binary")
            element, tail = args
            if not isinstance(tail, SetVal):
                raise NotInUniverseError(
                    f"scons onto a non-set is outside U: scons(_, {tail!r})"
                )
            return intern_term(SetVal.from_ground({element} | tail.elements))
        if term.functor in ARITHMETIC_FUNCTORS:
            return intern_const(_evaluate_arithmetic(term.functor, args))
        return intern_term(Func(term.functor, args))
    raise EvaluationError(f"unknown term kind: {term!r}")


def contains_group_term(term: Term) -> bool:
    """Return True when ``<...>`` occurs anywhere inside ``term``."""
    return any(isinstance(t, GroupTerm) for t in term.walk())


def group_terms_of(term: Term) -> list[GroupTerm]:
    """All grouping subterms of ``term`` in pre-order."""
    return [t for t in term.walk() if isinstance(t, GroupTerm)]
