"""Recursive-descent parser for concrete LDL1 syntax.

Grammar (see the README for examples)::

    program   := (rule | query)*
    rule      := atom [ '<-' body ] '.'
    query     := ('?' | '?-') atom '.'
    body      := literal (',' literal)*
    literal   := ('~' | '¬' | 'not') atom | atom
    atom      := expr [ cmpop expr ]          -- cmpop in = != < <= > >=
    expr      := mult (('+'|'-') mult)*
    mult      := unary (('*'|'/'|'mod') unary)*
    unary     := '-' unary | primary
    primary   := NUMBER | STRING | VAR | IDENT ['(' terms ')']
               | '(' expr ')' | '{' setbody '}' | '<' expr '>'
    setbody   := [ expr (',' expr)* [ '|' expr ] ]

An ``atom`` that is not a comparison must reduce to a predicate
application or a bare symbol.  ``<expr>`` inside a term position is the
grouping construct; at comparison position ``<`` is less-than — the
parser resolves the ambiguity by context.  Each ``_`` becomes a fresh
anonymous variable.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.errors import LDLError, ParseError
from repro.parser.lexer import Token, tokenize
from repro.program.rule import Atom, Literal, Program, Query, Rule
from repro.terms.term import (
    Const,
    Func,
    GroupTerm,
    SetPattern,
    SetVal,
    Term,
    Var,
    evaluate_ground,
)

_COMPARISON_TOKENS = {
    "EQ": "=",
    "NE": "!=",
    "LT": "<",
    "LE": "<=",
    "GT": ">",
    "GE": ">=",
}

_ADDITIVE = {"PLUS": "+", "MINUS": "-"}
_MULTIPLICATIVE = {"STAR": "*", "SLASH": "/"}


class ParsedProgram(NamedTuple):
    """A parsed source unit: its rules and its queries, in order."""

    program: Program
    queries: tuple[Query, ...]


class _Parser:
    def __init__(self, text: str) -> None:
        self._tokens = list(tokenize(text))
        self._pos = 0
        self._anon = 0

    # -- token plumbing -------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        index = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def _next(self) -> Token:
        token = self._peek()
        self._pos += 1
        return token

    def _expect(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.text!r}",
                token.line,
                token.column,
            )
        return self._next()

    def _accept(self, kind: str) -> Token | None:
        if self._peek().kind == kind:
            return self._next()
        return None

    def _error(self, message: str) -> ParseError:
        token = self._peek()
        return ParseError(message + f" (at {token.text!r})", token.line, token.column)

    # -- program / rules ------------------------------------------------

    def parse_program(self) -> ParsedProgram:
        rules: list[Rule] = []
        queries: list[Query] = []
        while self._peek().kind != "EOF":
            if self._peek().kind == "QUESTION":
                queries.append(self.parse_query())
            else:
                rules.append(self.parse_rule())
        return ParsedProgram(Program(rules), tuple(queries))

    def parse_rule(self) -> Rule:
        head = self.parse_atom()
        body: list[Literal] = []
        if self._accept("ARROW"):
            body.append(self.parse_literal())
            while self._accept("COMMA"):
                body.append(self.parse_literal())
        self._expect("DOT")
        return Rule(head, body)

    def parse_query(self) -> Query:
        self._expect("QUESTION")
        atom = self.parse_atom()
        self._expect("DOT")
        return Query(atom)

    # -- literals and atoms ----------------------------------------------

    def parse_literal(self) -> Literal:
        if self._accept("TILDE"):
            return Literal(self.parse_atom(), positive=False)
        token = self._peek()
        if token.kind == "IDENT" and token.value == "not":
            follower = self._peek(1)
            if follower.kind in ("IDENT", "VAR", "NUMBER", "STRING", "LPAREN"):
                self._next()
                return Literal(self.parse_atom(), positive=False)
        return Literal(self.parse_atom(), positive=True)

    def parse_atom(self) -> Atom:
        left = self.parse_expr()
        op_token = self._peek()
        if op_token.kind in _COMPARISON_TOKENS:
            self._next()
            right = self.parse_expr()
            return Atom(_COMPARISON_TOKENS[op_token.kind], (left, right))
        return self._expr_to_atom(left)

    def _expr_to_atom(self, expr: Term) -> Atom:
        if isinstance(expr, Func):
            return Atom(expr.functor, expr.args)
        if isinstance(expr, Const) and isinstance(expr.value, str) and not expr.quoted:
            return Atom(expr.value, ())
        raise self._error(f"not a predicate application: {expr!r}")

    # -- terms / expressions ----------------------------------------------

    def parse_expr(self) -> Term:
        left = self.parse_mult()
        while self._peek().kind in _ADDITIVE:
            op = _ADDITIVE[self._next().kind]
            right = self.parse_mult()
            left = self._fold(op, left, right)
        return left

    def parse_mult(self) -> Term:
        left = self.parse_unary()
        while True:
            token = self._peek()
            if token.kind in _MULTIPLICATIVE:
                op = _MULTIPLICATIVE[self._next().kind]
            elif token.kind == "IDENT" and token.value == "mod":
                self._next()
                op = "mod"
            else:
                return left
            right = self.parse_unary()
            left = self._fold(op, left, right)

    def parse_unary(self) -> Term:
        if self._accept("MINUS"):
            operand = self.parse_unary()
            if isinstance(operand, Const) and isinstance(operand.value, (int, float)):
                return Const(-operand.value)
            return Func("-", (Const(0), operand))
        return self.parse_primary()

    def _fold(self, op: str, left: Term, right: Term) -> Term:
        term = Func(op, (left, right))
        if left.is_ground() and right.is_ground():
            try:
                return evaluate_ground(term)
            except LDLError:
                # e.g. 0/0 or arithmetic on symbols: leave the term
                # unfolded; evaluation will reject it where it is used.
                return term
        return term

    def parse_primary(self) -> Term:
        token = self._peek()
        if token.kind == "NUMBER":
            self._next()
            return Const(token.value)
        if token.kind == "STRING":
            self._next()
            return Const(token.value, quoted=True)
        if token.kind == "VAR":
            self._next()
            if token.value == "_":
                self._anon += 1
                return Var(f"_Anon{self._anon}")
            return Var(token.value)
        if token.kind == "IDENT":
            self._next()
            if self._accept("LPAREN"):
                args = [self.parse_expr()]
                while self._accept("COMMA"):
                    args.append(self.parse_expr())
                self._expect("RPAREN")
                return Func(token.value, args)
            return Const(token.value)
        if token.kind == "LPAREN":
            self._next()
            inner = self.parse_expr()
            if self._peek().kind == "COMMA":
                # (t1, t2, ...) is a tuple term with the implicit
                # functor "tuple" (paper Section 4.2.1).
                items = [inner]
                while self._accept("COMMA"):
                    items.append(self.parse_expr())
                self._expect("RPAREN")
                return Func("tuple", items)
            self._expect("RPAREN")
            return inner
        if token.kind == "LBRACE":
            return self._parse_set()
        if token.kind == "LT":
            self._next()
            inner = self.parse_expr()
            self._expect("GT")
            return GroupTerm(inner)
        raise self._error("expected a term")

    def _parse_set(self) -> Term:
        self._expect("LBRACE")
        if self._accept("RBRACE"):
            return SetVal()
        items = [self.parse_expr()]
        while self._accept("COMMA"):
            items.append(self.parse_expr())
        rest: Term | None = None
        if self._accept("BAR"):
            rest = self.parse_expr()
        self._expect("RBRACE")
        pattern = SetPattern(items, rest)
        if pattern.is_ground():
            try:
                return evaluate_ground(pattern)
            except LDLError:
                return pattern
        return pattern


def parse_program(text: str) -> ParsedProgram:
    """Parse a source unit into a :class:`Program` and its queries."""
    return _Parser(text).parse_program()


def parse_rules(text: str) -> Program:
    """Parse rules only; raises if the text contains queries."""
    parsed = parse_program(text)
    if parsed.queries:
        raise ParseError("unexpected query in rule-only input", 0, 0)
    return parsed.program


def parse_rule(text: str) -> Rule:
    """Parse exactly one rule."""
    program = parse_rules(text)
    if len(program) != 1:
        raise ParseError(f"expected exactly one rule, got {len(program)}", 0, 0)
    return program.rules[0]


def parse_query(text: str) -> Query:
    """Parse exactly one query (with or without the leading ``?``)."""
    stripped = text.strip()
    if not stripped.startswith("?"):
        stripped = "? " + stripped
    if not stripped.endswith("."):
        stripped += "."
    parsed = _Parser(stripped).parse_program()
    if len(parsed.queries) != 1 or parsed.program.rules:
        raise ParseError("expected exactly one query", 0, 0)
    return parsed.queries[0]


def parse_term(text: str) -> Term:
    """Parse a single term."""
    parser = _Parser(text)
    term = parser.parse_expr()
    parser._expect("EOF")
    return term


def parse_atom(text: str) -> Atom:
    """Parse a single atom."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    parser._expect("EOF")
    return atom
