"""Tokenizer for the concrete LDL1 syntax.

Token kinds:

* ``IDENT`` — lower-case identifiers (predicate/function symbols,
  constants, keywords ``not`` and ``mod``),
* ``VAR`` — identifiers starting upper-case or with ``_`` (a bare ``_``
  is the anonymous variable),
* ``NUMBER`` — integer or float literals,
* ``STRING`` — single-quoted strings with ``\\`` escapes,
* punctuation/operator tokens, one kind each: ``( ) { } , . | ? ~``
  ``<- = != < <= > >= + - * /``.

Comments run from ``%`` or ``#`` to end of line.  ``<`` doubles as the
comparison operator and the grouping bracket; the lexer always emits
``LT`` and the parser decides by context.  ``<-`` and ``<=`` are single
tokens (maximal munch).
"""

from __future__ import annotations

from typing import Iterator, NamedTuple

from repro.errors import LexerError


class Token(NamedTuple):
    kind: str
    text: str
    value: object
    line: int
    column: int


_SIMPLE = {
    "(": "LPAREN",
    ")": "RPAREN",
    "{": "LBRACE",
    "}": "RBRACE",
    ",": "COMMA",
    ".": "DOT",
    "|": "BAR",
    "~": "TILDE",
    "+": "PLUS",
    "-": "MINUS",
    "*": "STAR",
    "/": "SLASH",
    "=": "EQ",
    ">": "GT",
    "?": "QUESTION",
}


def tokenize(text: str) -> Iterator[Token]:
    """Yield tokens, ending with a synthetic ``EOF`` token."""
    line = 1
    column = 1
    i = 0
    n = len(text)
    while i < n:
        ch = text[i]
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if ch in "%#":
            while i < n and text[i] != "\n":
                i += 1
            continue
        start_col = column
        if ch == "<":
            if i + 1 < n and text[i + 1] == "-":
                yield Token("ARROW", "<-", None, line, start_col)
                i += 2
                column += 2
                continue
            if i + 1 < n and text[i + 1] == "=":
                yield Token("LE", "<=", None, line, start_col)
                i += 2
                column += 2
                continue
            yield Token("LT", "<", None, line, start_col)
            i += 1
            column += 1
            continue
        if ch == ">":
            if i + 1 < n and text[i + 1] == "=":
                yield Token("GE", ">=", None, line, start_col)
                i += 2
                column += 2
                continue
            yield Token("GT", ">", None, line, start_col)
            i += 1
            column += 1
            continue
        if ch == "!":
            if i + 1 < n and text[i + 1] == "=":
                yield Token("NE", "!=", None, line, start_col)
                i += 2
                column += 2
                continue
            raise LexerError("unexpected '!'", line, start_col)
        if ch == "?":
            if i + 1 < n and text[i + 1] == "-":
                yield Token("QUESTION", "?-", None, line, start_col)
                i += 2
                column += 2
                continue
            yield Token("QUESTION", "?", None, line, start_col)
            i += 1
            column += 1
            continue
        if ch == "¬":
            yield Token("TILDE", "¬", None, line, start_col)
            i += 1
            column += 1
            continue
        if ch in _SIMPLE:
            yield Token(_SIMPLE[ch], ch, None, line, start_col)
            i += 1
            column += 1
            continue
        if ch == "'":
            value, consumed = _scan_string(text, i, line, start_col)
            yield Token("STRING", text[i : i + consumed], value, line, start_col)
            i += consumed
            column += consumed
            continue
        if _is_ascii_digit(ch):
            value, consumed = _scan_number(text, i)
            yield Token("NUMBER", text[i : i + consumed], value, line, start_col)
            i += consumed
            column += consumed
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            if word[0].isupper() or word[0] == "_":
                yield Token("VAR", word, word, line, start_col)
            else:
                yield Token("IDENT", word, word, line, start_col)
            column += j - i
            i = j
            continue
        raise LexerError(f"unexpected character {ch!r}", line, start_col)
    yield Token("EOF", "", None, line, column)


def _is_ascii_digit(ch: str) -> bool:
    """ASCII digits only: unicode digit characters (e.g. superscripts)
    pass str.isdigit() but are not valid number literals."""
    return "0" <= ch <= "9"


def _scan_string(text: str, start: int, line: int, column: int) -> tuple[str, int]:
    i = start + 1
    n = len(text)
    out: list[str] = []
    while i < n:
        ch = text[i]
        if ch == "\\":
            if i + 1 >= n:
                raise LexerError("unterminated escape", line, column)
            out.append(text[i + 1])
            i += 2
            continue
        if ch == "'":
            return "".join(out), i - start + 1
        if ch == "\n":
            raise LexerError("newline in string literal", line, column)
        out.append(ch)
        i += 1
    raise LexerError("unterminated string literal", line, column)


def _scan_number(text: str, start: int) -> tuple[int | float, int]:
    i = start
    n = len(text)
    while i < n and _is_ascii_digit(text[i]):
        i += 1
    is_float = False
    if i + 1 < n and text[i] == "." and _is_ascii_digit(text[i + 1]):
        is_float = True
        i += 1
        while i < n and _is_ascii_digit(text[i]):
            i += 1
    if i < n and text[i] in "eE":
        j = i + 1
        if j < n and text[j] in "+-":
            j += 1
        if j < n and _is_ascii_digit(text[j]):
            is_float = True
            i = j
            while i < n and _is_ascii_digit(text[i]):
                i += 1
    raw = text[start:i]
    return (float(raw) if is_float else int(raw)), i - start
