"""Lexer and parser for concrete LDL1 syntax."""

from repro.parser.lexer import Token, tokenize
from repro.parser.parser import (
    ParsedProgram,
    parse_atom,
    parse_program,
    parse_query,
    parse_rule,
    parse_rules,
    parse_term,
)

__all__ = [
    "ParsedProgram",
    "Token",
    "parse_atom",
    "parse_program",
    "parse_query",
    "parse_rule",
    "parse_rules",
    "parse_term",
    "tokenize",
]
