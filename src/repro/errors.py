"""Exception hierarchy for the LDL1 reproduction.

All library-raised exceptions derive from :class:`LDLError` so callers can
catch one type at the API boundary.  Sub-hierarchies mirror the pipeline
stages: lexing/parsing, well-formedness, stratification, evaluation, and the
magic-sets compiler.
"""

from __future__ import annotations


class LDLError(Exception):
    """Base class for every error raised by the library."""


class LexerError(LDLError):
    """Raised when the tokenizer meets an unexpected character.

    Carries the 1-based ``line`` and ``column`` of the offending input.
    """

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(LDLError):
    """Raised when the parser meets an unexpected token."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class WellFormednessError(LDLError):
    """A rule violates the syntactic restrictions of Section 2.1.

    Grouping rules must have no ``<X>`` in the body (restriction W1), at
    most one ``<X>`` in the head, directly as an argument (W2), and an
    all-positive body (W3).
    """


class SafetyError(WellFormednessError):
    """A rule is not range-restricted (Section 7 restriction).

    Every head variable and every variable of a negated literal must occur
    in a positive, non-built-in body literal.
    """


class NotAdmissibleError(LDLError):
    """The program cannot be layered (stratified) per Section 3.1."""

    def __init__(self, message: str, cycle: tuple[str, ...] = ()) -> None:
        super().__init__(message)
        self.cycle = cycle


class NotInUniverseError(LDLError):
    """A term evaluates to an object outside the LDL1 universe U.

    For example ``scons(t, S)`` where ``S`` is not a set (Section 2.2,
    restriction 1 on built-in functions).
    """


class EvaluationError(LDLError):
    """Raised for runtime evaluation failures (bad built-in modes, etc.)."""


class InfiniteGroupError(EvaluationError):
    """A grouping rule would have to group an infinite set.

    Cannot occur for safe programs over finite databases; raised defensively
    by the engine's sanity checks.
    """


class MagicRewriteError(LDLError):
    """The magic-sets compiler could not rewrite the program or query."""


class StorageError(LDLError):
    """Durable-storage failure: codec mismatch, corrupt snapshot, bad WAL.

    Torn WAL tails are *not* errors — the log truncates them on open as
    part of normal crash recovery.  This exception signals damage the
    store cannot repair on its own (unreadable magic, corrupt snapshot
    body, codec version from the future).
    """


class ProtocolError(LDLError):
    """A malformed client request on the wire protocol.

    Raised by the server for requests that cannot be dispatched at all
    (not JSON, not an object, missing/unknown ``op``, oversized line)
    and by :class:`repro.server.Client` for malformed responses.
    """


class ServerError(LDLError):
    """A server-reported request failure, re-raised client-side.

    ``etype`` carries the server-side exception class name (e.g.
    ``"ParseError"``) so callers can distinguish failure modes without
    depending on the server's stack.
    """

    def __init__(self, message: str, etype: str = "ServerError") -> None:
        super().__init__(message)
        self.etype = etype


class UnstableMagicEvaluationError(EvaluationError):
    """The constrained magic evaluation failed its stability assertion.

    After the alternating saturation phases reach a global fixpoint, one
    more application of the grouping/negation rules must derive nothing
    new; this error signals that invariant was violated (a bug or an
    inadmissible input program).
    """
