"""Seeded synthetic workload generators for examples and benchmarks."""

from repro.workloads.books import BOOK_DEAL_PROGRAM, BOOK_PAIR_PROGRAM, books
from repro.workloads.family import (
    chain_family,
    generation_family,
    leaves_of_chain,
    random_family,
    tree_family,
)
from repro.workloads.parts import ORDERED_SUM_PROGRAM, TC_PROGRAM, TC_SCOPED_PROGRAM, bom
from repro.workloads.generator import GeneratedProgram, GeneratorConfig, random_program
from repro.workloads.social import SOCIAL_PROGRAM, social_network
from repro.workloads.suppliers import SUPPLIER_PROGRAM, supplies

__all__ = [
    "BOOK_DEAL_PROGRAM",
    "BOOK_PAIR_PROGRAM",
    "ORDERED_SUM_PROGRAM",
    "TC_SCOPED_PROGRAM",
    "GeneratedProgram",
    "GeneratorConfig",
    "SOCIAL_PROGRAM",
    "SUPPLIER_PROGRAM",
    "TC_PROGRAM",
    "bom",
    "books",
    "chain_family",
    "generation_family",
    "leaves_of_chain",
    "random_family",
    "random_program",
    "social_network",
    "supplies",
    "tree_family",
]
