"""Supplier-parts workloads for the Section 1 grouping example (E5)."""

from __future__ import annotations

import random

from repro.program.rule import Atom
from repro.terms.term import Const

#: The Section 1 grouping program.
SUPPLIER_PROGRAM = "supplier_parts(S, <P>) <- supplies(S, P)."


def supplies(
    suppliers: int, parts_per_supplier: int, seed: int = 0
) -> list[Atom]:
    """``supplies(s, p)`` facts: each supplier gets a random draw of
    parts (exactly ``parts_per_supplier`` distinct ones)."""
    rng = random.Random(seed)
    part_pool = max(suppliers * parts_per_supplier // 2, parts_per_supplier + 1)
    facts: list[Atom] = []
    for s in range(suppliers):
        chosen = rng.sample(range(part_pool), parts_per_supplier)
        for p in chosen:
            facts.append(
                Atom("supplies", (Const(f"s{s}"), Const(f"p{p}")))
            )
    return facts
