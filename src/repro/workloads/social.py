"""A social-network workload exercising every language feature at once.

Used by the stress tests and the ``examples/social_network.py``
walkthrough: follows-graphs with communities, influence closure,
grouped follower sets, and negation-based recommendations.
"""

from __future__ import annotations

import random

from repro.program.rule import Atom
from repro.terms.term import Const

#: The rule set: recursion (influence), grouping (followers/communities),
#: negation (recommendations), set built-ins (audience sizes, overlap).
SOCIAL_PROGRAM = """
% influence: transitive closure of follows
influences(A, B) <- follows(B, A).
influences(A, B) <- influences(A, C), follows(B, C).

% follower sets and audience sizes
followers(U, <F>) <- follows(F, U).
audience(U, N) <- followers(U, S), card(S, N).

% communities: users sharing an interest, as sets
community(T, <U>) <- interest(U, T).

% overlap between two communities
overlap(T1, T2, S) <- community(T1, S1), community(T2, S2), T1 < T2,
                      intersection(S1, S2, S).

% recommend B to A: a followee's followee A doesn't follow yet
candidate(A, B) <- follows(A, M), follows(M, B), A != B.
recommend(A, B) <- candidate(A, B), ~follows(A, B).
"""


#: Bounded reachability from a seed user: linear in the edge count
#: (unlike the full influences closure, which is quadratic on dense
#: graphs).  This is the shape the E23 parallel-speedup benchmark runs
#: over million-edge graphs from :func:`follow_graph`.
REACH_PROGRAM = """
reach(U) <- source(U).
reach(V) <- reach(U), follows(U, V).
"""


def follow_graph(users: int, edges: int, seed: int = 0) -> list[Atom]:
    """Exactly ``edges`` distinct random follows over ``users`` users.

    Unlike :func:`social_network` (whose duplicate-discarding loop
    makes the edge count only approximate), this generator is for
    benchmarks that advertise an exact edge count ("a million-edge
    graph"): it draws pairs until precisely ``edges`` distinct
    ``follows(uA, uB)`` facts exist, plus one ``source(u0)`` seed fact
    for :data:`REACH_PROGRAM`.  Deterministic for a given seed.
    """
    if edges > users * (users - 1):
        raise ValueError(
            f"cannot place {edges} distinct edges on {users} users"
        )
    rng = random.Random(seed)
    consts = [Const(f"u{u}") for u in range(users)]
    seen: set[tuple[int, int]] = set()
    facts: list[Atom] = [Atom("source", (consts[0],))]
    while len(seen) < edges:
        u = rng.randrange(users)
        v = rng.randrange(users)
        if v != u and (u, v) not in seen:
            seen.add((u, v))
            facts.append(Atom("follows", (consts[u], consts[v])))
    return facts


def social_network(
    users: int, follows_per_user: int = 4, interests: int = 5, seed: int = 0
) -> list[Atom]:
    """Random follows + interest facts, seeded and deterministic."""
    rng = random.Random(seed)
    facts: list[Atom] = []
    seen: set[tuple[int, int]] = set()
    for u in range(users):
        for _ in range(follows_per_user):
            v = rng.randrange(users)
            if v != u and (u, v) not in seen:
                seen.add((u, v))
                facts.append(
                    Atom("follows", (Const(f"u{u}"), Const(f"u{v}")))
                )
    for u in range(users):
        for t in rng.sample(range(interests), rng.randrange(1, 3)):
            facts.append(
                Atom("interest", (Const(f"u{u}"), Const(f"topic{t}")))
            )
    return facts
