"""Book-price workloads for the Section 1 set-enumeration example (E10)."""

from __future__ import annotations

import random

from repro.program.rule import Atom
from repro.terms.term import Const

#: The Section 1 book_deal program: sets of up to three titles whose
#: total price stays under the budget.  Duplicate titles collapse in
#: the constructed set, so singleton and doublet deals appear too.
BOOK_DEAL_PROGRAM = """
book_deal({X, Y, Z}) <- book(X, Px), book(Y, Py), book(Z, Pz),
                        Px + Py + Pz < 100.
"""

#: Pair variant used for larger sweeps (the triple join is cubic).
BOOK_PAIR_PROGRAM = """
book_pair({X, Y}) <- book(X, Px), book(Y, Py), X != Y, Px + Py < 100.
"""


def books(count: int, max_price: int = 120, seed: int = 0) -> list[Atom]:
    """``book(title, price)`` facts with uniformly random prices."""
    rng = random.Random(seed)
    return [
        Atom("book", (Const(f"b{i}"), Const(rng.randrange(5, max_price))))
        for i in range(count)
    ]
