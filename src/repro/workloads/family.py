"""Synthetic family workloads for ancestor / same-generation programs.

Deterministic generators (seeded) producing ``parent`` and ``siblings``
facts at laptop scale, used by experiments E1–E4.
"""

from __future__ import annotations

import random

from repro.program.rule import Atom
from repro.terms.term import Const


def _person(prefix: str, i: int) -> Const:
    return Const(f"{prefix}{i}")


def _parent(x: Const, y: Const) -> Atom:
    return Atom("parent", (x, y))


def chain_family(length: int, prefix: str = "p") -> list[Atom]:
    """A single descent line: p0 -> p1 -> ... -> p(length)."""
    return [
        _parent(_person(prefix, i), _person(prefix, i + 1))
        for i in range(length)
    ]


def tree_family(depth: int, fanout: int = 2, prefix: str = "t") -> list[Atom]:
    """A complete ``fanout``-ary descent tree of the given depth.

    Node ids follow heap numbering: node i has children
    ``i * fanout + 1 .. i * fanout + fanout``.
    """
    facts: list[Atom] = []
    level_start = 0
    level_size = 1
    node = 0
    for _ in range(depth):
        for i in range(level_start, level_start + level_size):
            for c in range(fanout):
                child = i * fanout + c + 1
                facts.append(_parent(_person(prefix, i), _person(prefix, child)))
        level_start = level_start * fanout + 1
        level_size *= fanout
    return facts


def random_family(
    people: int, edges: int, seed: int = 0, prefix: str = "r"
) -> list[Atom]:
    """Random acyclic parenthood: edges only from lower to higher ids."""
    rng = random.Random(seed)
    seen: set[tuple[int, int]] = set()
    facts: list[Atom] = []
    attempts = 0
    while len(facts) < edges and attempts < edges * 20:
        attempts += 1
        a = rng.randrange(people - 1)
        b = rng.randrange(a + 1, people)
        if (a, b) not in seen:
            seen.add((a, b))
            facts.append(_parent(_person(prefix, a), _person(prefix, b)))
    return facts


def generation_family(
    generations: int,
    width: int,
    prefix: str = "g",
    parent_pred: str = "p",
    siblings_pred: str = "siblings",
) -> list[Atom]:
    """A layered family for same-generation queries (Section 6 names).

    ``width`` people per generation; person j of generation i is a
    parent of persons j and (j+1) mod width of generation i+1.  The
    first generation are all mutual siblings, giving the sg base case.
    Predicate names default to the paper's ``p``/``siblings``.
    """

    def person(i: int, j: int) -> Const:
        return Const(f"{prefix}_{i}_{j}")

    facts: list[Atom] = []
    for i in range(generations - 1):
        for j in range(width):
            facts.append(Atom(parent_pred, (person(i, j), person(i + 1, j))))
            facts.append(
                Atom(parent_pred, (person(i, j), person(i + 1, (j + 1) % width)))
            )
    for j in range(width):
        for k in range(width):
            if j != k:
                facts.append(Atom(siblings_pred, (person(0, j), person(0, k))))
    return facts


def leaves_of_chain(length: int, prefix: str = "p") -> Const:
    """The youngest member of :func:`chain_family`'s output."""
    return _person(prefix, length)
