"""Random admissible program generation for differential testing.

Generates seeded random LDL1 programs that are *admissible by
construction*: predicates are assigned to strata up front, rule bodies
only reference equal strata positively (recursion) or strictly lower
strata under negation/grouping, and every rule is range-restricted.
Used by the fuzz tests to cross-check the evaluation strategies on
inputs nobody hand-picked.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.program.rule import Atom, Literal, Program, Rule
from repro.terms.term import Const, GroupTerm, Var


@dataclass
class GeneratorConfig:
    """Knobs for :func:`random_program`."""

    edb_predicates: int = 3
    strata: int = 3
    rules_per_stratum: int = 3
    max_body_literals: int = 3
    negation_probability: float = 0.3
    grouping_probability: float = 0.25
    recursion_probability: float = 0.4
    constants: int = 6
    edb_facts: int = 20


@dataclass
class GeneratedProgram:
    """The program plus its generated base facts."""

    program: Program
    edb: list[Atom] = field(default_factory=list)


def random_program(seed: int, config: GeneratorConfig | None = None) -> GeneratedProgram:
    """Build a random admissible, safe LDL1 program (binary predicates)."""
    cfg = config or GeneratorConfig()
    rng = random.Random(seed)

    edb_preds = [f"e{i}" for i in range(cfg.edb_predicates)]
    strata_preds: list[list[str]] = [[] for _ in range(cfg.strata)]
    rules: list[Rule] = []
    counter = 0

    def lower_preds(stratum: int) -> list[str]:
        pool = list(edb_preds)
        for s in range(stratum):
            pool.extend(strata_preds[s])
        return pool

    for stratum in range(cfg.strata):
        for _ in range(cfg.rules_per_stratum):
            counter += 1
            head_pred = f"p{counter}"
            recursive = (
                stratum == 0 or rng.random() > cfg.grouping_probability
            ) and rng.random() < cfg.recursion_probability
            grouping = not recursive and rng.random() < cfg.grouping_probability
            if grouping and stratum == 0:
                grouping = False

            x, y, z = Var("X"), Var("Y"), Var("Z")
            body: list[Literal] = []
            # a positive binder first (range restriction)
            binder_pool = lower_preds(stratum) or edb_preds
            body.append(Literal(Atom(rng.choice(binder_pool), (x, y))))
            extra = rng.randrange(cfg.max_body_literals)
            for _ in range(extra):
                pred = rng.choice(binder_pool)
                shape = rng.random()
                if shape < 0.5:
                    body.append(Literal(Atom(pred, (y, z))))
                else:
                    body.append(Literal(Atom(pred, (x, z))))
            bound_pairs = [(x, y)] + [
                (lit.atom.args[0], lit.atom.args[1]) for lit in body[1:]
            ]
            if (
                not grouping
                and stratum > 0
                and rng.random() < cfg.negation_probability
            ):
                neg_pred = rng.choice(lower_preds(stratum))
                a, b = rng.choice(bound_pairs)
                body.append(Literal(Atom(neg_pred, (a, b)), positive=False))
            if recursive:
                body.append(Literal(Atom(head_pred, (y, z))))
                head = Atom(head_pred, (x, z))
                # ensure z bound even when the recursive literal is the
                # only z occurrence: it binds z itself (positive).
            elif grouping:
                head = Atom(head_pred, (x, GroupTerm(y)))
            else:
                head = Atom(head_pred, (x, y))
            rules.append(Rule(head, body))
            strata_preds[stratum].append(head_pred)

    edb_atoms = []
    for _ in range(cfg.edb_facts):
        pred = rng.choice(edb_preds)
        a = Const(rng.randrange(cfg.constants))
        b = Const(rng.randrange(cfg.constants))
        edb_atoms.append(Atom(pred, (a, b)))
    return GeneratedProgram(Program(rules), edb_atoms)
