"""Bill-of-materials workloads for the Section 1 parts-explosion program.

Generates ``p(Part, Subpart)`` and ``q(LeafPart, Cost)`` facts forming
a layered tree: aggregate parts decompose into ``fanout`` subparts for
``depth`` levels; leaves carry costs.  Costs are integers so the
expected total cost is exactly computable for verification.
"""

from __future__ import annotations

import random

from repro.program.rule import Atom
from repro.terms.term import Const


def bom(depth: int, fanout: int = 2, seed: int = 0) -> tuple[list[Atom], dict[int, int]]:
    """Build a BOM tree; returns (facts, expected_cost_per_part).

    Part 1 is the root.  Heap numbering: part i has subparts
    ``i * fanout + k`` for k in 1..fanout, down to ``depth`` levels.
    """
    rng = random.Random(seed)
    facts: list[Atom] = []
    cost: dict[int, int] = {}

    def build(part: int, level: int) -> int:
        if level == depth:
            leaf_cost = rng.randrange(1, 100)
            facts.append(Atom("q", (Const(part), Const(leaf_cost))))
            cost[part] = leaf_cost
            return leaf_cost
        total = 0
        for k in range(1, fanout + 1):
            child = part * fanout + k
            facts.append(Atom("p", (Const(part), Const(child))))
            total += build(child, level + 1)
        cost[part] = total
        return total

    build(1, 0)
    return facts, cost


#: The paper-faithful parts-explosion program (Section 1), with the
#: nonempty-partition guards that make the recursive rule safe to run
#: bottom-up, plus the result projection.
TC_PROGRAM = """
part(P, <S>) <- p(P, S).
tc({X}, C) <- q(X, C).
tc({X}, C) <- part(X, S), tc(S, C).
tc(S, C) <- partition(S, S1, S2), S1 != {}, S2 != {},
            tc(S1, C1), tc(S2, C2), C = C1 + C2.
result(X, C) <- tc({X}, C).
"""

#: Scoped variant of the recursive rule: bottom-up, the paper's third
#: ``tc`` rule unions *any* two disjoint cost sets, deriving a ``tc``
#: fact for every subset of the whole part space (exponential in the
#: total part count).  Restricting ``S`` to subsets of some part's
#: actual subpart set keeps the same answers for ``result`` while
#: staying exponential only in the *fan-out* — the relevance idea the
#: paper's Section 6 motivates, hand-applied.
TC_SCOPED_PROGRAM = """
part(P, <S>) <- p(P, S).
tc({X}, C) <- q(X, C).
tc({X}, C) <- part(X, S), tc(S, C).
tc(S, C) <- part(P, SS), subset(S, SS), partition(S, S1, S2),
            S1 != {}, S2 != {}, tc(S1, C1), tc(S2, C2), C = C1 + C2.
result(X, C) <- tc({X}, C).
"""

#: Ablation for experiment E6: the same part costs computed with a
#: purely relational encoding — subparts are chained in id order with
#: stratified negation, and costs accumulate along the chain.  Linear
#: in the number of subparts where the paper's partition-based ``tc``
#: is exponential in the subpart-set size.
ORDERED_SUM_PROGRAM = """
haslower(P, X) <- p(P, X), p(P, Y), Y < X.
firstsub(P, X) <- p(P, X), ~haslower(P, X).
somebetween(P, X, Y) <- p(P, X), p(P, Y), p(P, Z), X < Z, Z < Y.
nextsub(P, X, Y) <- p(P, X), p(P, Y), X < Y, ~somebetween(P, X, Y).
haslarger(P, X) <- p(P, X), p(P, Y), Y > X.
lastsub(P, X) <- p(P, X), ~haslarger(P, X).

cost(X, C) <- q(X, C).
prefixcost(P, X, C) <- firstsub(P, X), cost(X, C).
prefixcost(P, Y, C) <- prefixcost(P, X, C1), nextsub(P, X, Y),
                       cost(Y, C2), C = C1 + C2.
cost(P, C) <- lastsub(P, X), prefixcost(P, X, C).
result2(P, C) <- cost(P, C).
"""
