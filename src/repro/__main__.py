"""``python -m repro`` — the LDL1 command-line interface."""

from repro.cli import main

if __name__ == "__main__":
    main()
