"""The classical immediate-consequence operator T_P (paper Section 2).

Section 2 recalls that classical logic-program semantics can be given
"model-theoretically and through lattice-theoretic fixed points"
([TARS55], [KE76]) — and then shows why *neither* transfers naively to
LDL1.  This module makes that executable:

* :func:`tp` — the immediate-consequence operator for *simple* rules
  (no grouping, no negation); monotone on the powerset lattice;
* :func:`lfp` — its least fixpoint by Kleene iteration from a base;
* :func:`tp_with_grouping` — the naive extension that also fires
  grouping rules; **not monotone**, and its "fixpoints" depend on the
  iteration schedule — the executable content of Section 2.3's
  negative results.

For simple programs, ``lfp(P, M)`` coincides with the engine's
``R(M)`` (tested), connecting the paper's operational Section 3.2 back
to the lattice view it generalizes.
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.context import EvalContext, ensure_context
from repro.engine.database import Database
from repro.engine.exec import derive_facts
from repro.engine.grouping import apply_grouping_rule
from repro.errors import EvaluationError
from repro.program.rule import Atom, Program

Interpretation = frozenset[Atom]


def tp(
    program: Program,
    interpretation: Iterable[Atom],
    context: EvalContext | None = None,
) -> Interpretation:
    """One application of the immediate-consequence operator.

    Only defined for *simple* programs (positive, grouping-free):
    returns the heads of all rule instances whose bodies hold in the
    interpretation, together with the program's ground facts.  Raises
    for non-simple rules — the point of Section 2 is that they have no
    monotone T_P.  ``context`` shares compiled rule plans across
    applications (the Kleene iteration in :func:`lfp` passes one).
    """
    for rule in program.rules:
        if not rule.is_simple():
            raise EvaluationError(
                "T_P is only defined for simple rules (no grouping/negation)"
            )
    db = Database(interpretation)
    ctx = ensure_context(context, db)
    out: set[Atom] = set()
    for rule in program.rules:
        out.update(
            derive_facts(db, ctx.plan_for(rule), executor=ctx.executor)
        )
    return frozenset(out)


def lfp(
    program: Program, base: Iterable[Atom] = (), max_steps: int = 100_000
) -> Interpretation:
    """Least fixpoint of ``M ↦ base ∪ M ∪ T_P(M)`` by Kleene iteration."""
    current: Interpretation = frozenset(base)
    ctx = EvalContext()  # plans compiled once, reused every step
    for _ in range(max_steps):
        step = current | tp(program, current, context=ctx)
        if step == current:
            return current
        current = step
    raise EvaluationError(f"no fixpoint within {max_steps} steps")


def is_monotone_on(
    program: Program, smaller: Iterable[Atom], larger: Iterable[Atom]
) -> bool:
    """Check T_P(smaller) ⊆ T_P(larger) for one comparable pair."""
    small_set = frozenset(smaller)
    large_set = frozenset(larger)
    if not small_set <= large_set:
        raise ValueError("inputs must be ⊆-comparable")
    return tp(program, small_set) <= tp(program, large_set)


def tp_with_grouping(
    program: Program, interpretation: Iterable[Atom]
) -> Interpretation:
    """The *naive* grouping extension of T_P (for demonstrations).

    Fires simple rules as :func:`tp` and grouping rules by the
    Section 3.2 class construction over the given interpretation.  Not
    monotone: growing the interpretation can change (not just grow) a
    grouped set — the reason the paper abandons the lattice route and
    builds the layered operational semantics instead.
    """
    db = Database(interpretation)
    ctx = ensure_context(None, db)
    out: set[Atom] = set()
    for rule in program.rules:
        if rule.is_grouping():
            out.update(apply_grouping_rule(rule, db, context=ctx))
            continue
        if any(lit.negative for lit in rule.body):
            raise EvaluationError("negation is not supported by this operator")
        out.update(
            derive_facts(db, ctx.plan_for(rule), executor=ctx.executor)
        )
    return frozenset(out)
