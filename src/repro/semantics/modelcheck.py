"""Model checking against the Section 2.2 truth definition.

An interpretation is a set of U-facts (ground atoms); it is a *model*
when every rule evaluates to true.  For an ordinary rule this is the
usual implication; for a grouping rule
``p(t1, ..., <Y>, ..., tn) <- body`` the formula is true when, for
every equivalence class of body bindings with a non-empty finite set of
``Y`` values, the head fact with the grouped set is present.

Model checking is restricted to range-restricted rules (every variable
bound through positive body literals or built-in modes), which covers
every program in the paper and keeps the candidate bindings enumerable
from the finite interpretation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, NamedTuple

from repro.engine.context import ensure_context
from repro.engine.database import Database
from repro.engine.exec import enumerate_bindings
from repro.engine.grouping import apply_grouping_rule
from repro.engine.match import ground_atom
from repro.program.rule import Atom, Program, Rule

Interpretation = frozenset[Atom]


class Violation(NamedTuple):
    """A witness that a rule is false under an interpretation."""

    rule: Rule
    missing_head: Atom


def _as_database(interpretation: Iterable[Atom]) -> Database:
    return Database(interpretation)


def violations(
    program: Program, interpretation: Iterable[Atom]
) -> Iterator[Violation]:
    """Yield one witness per rule falsified by ``interpretation``."""
    facts = frozenset(interpretation)
    db = _as_database(facts)
    ctx = ensure_context(None, db)
    for rule in program.rules:
        if rule.is_grouping():
            for fact in apply_grouping_rule(rule, db, context=ctx):
                if fact not in facts:
                    yield Violation(rule, fact)
                    break
            continue
        for binding in enumerate_bindings(
            db, ctx.plan_for(rule), executor=ctx.executor
        ):
            head = ground_atom(rule.head, binding)
            if head is None or head not in facts:
                missing = head if head is not None else rule.head.substitute(binding)
                yield Violation(rule, missing)
                break


def is_model(program: Program, interpretation: Iterable[Atom]) -> bool:
    """True when ``interpretation`` satisfies every rule of ``program``."""
    for _ in violations(program, interpretation):
        return False
    return True


def first_violation(
    program: Program, interpretation: Iterable[Atom]
) -> Violation | None:
    """The first falsifying witness, or None for a model."""
    for violation in violations(program, interpretation):
        return violation
    return None
