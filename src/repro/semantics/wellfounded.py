"""Well-founded semantics: life beyond admissibility (paper §7).

The paper's first open problem — "whether admissibility is too
restrictive a concept" ([SN86]) — was answered by the field shortly
after with the *well-founded semantics* (Van Gelder, Ross, Schlipf),
which assigns every program with negation a three-valued model: facts
that are definitely **true**, definitely **false**, or **undefined**
(caught in unresolvable negative loops).

This module implements it by the classical alternating fixpoint:

* ``reduct(J)`` — the least model of the program with every negative
  literal evaluated against the fixed interpretation ``J`` (¬q holds
  iff q ∉ J); anti-monotone in J;
* alternating ``U_{k+1} = reduct(O_k)``, ``O_{k+1} = reduct(U_{k+1})``
  from ``U_0 = ∅`` converges to the least fixpoint of ``reduct²``
  (the true facts) and the greatest (the non-false facts).

For admissible programs the well-founded model is total and coincides
with the paper's standard model (tested, including over random
generated programs).  Grouping is not supported here — a grouped set is
not three-valued-monotone — so programs with grouping rules are
rejected; use the stratified evaluator for those.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.context import EvalContext
from repro.engine.database import Database
from repro.engine.exec import derive_facts
from repro.errors import EvaluationError
from repro.program.rule import Atom, Program
from repro.program.wellformed import check_program
from repro.terms.term import evaluate_ground
from typing import Iterable


@dataclass
class WellFoundedModel:
    """The three-valued result."""

    true: frozenset[Atom]
    undefined: frozenset[Atom]
    rounds: int

    def is_total(self) -> bool:
        """Two-valued: nothing undefined."""
        return not self.undefined

    def value_of(self, fact: Atom) -> str:
        if fact in self.true:
            return "true"
        if fact in self.undefined:
            return "undefined"
        return "false"


def _reduct(
    program: Program, base: Database, assumed: Database, ctx: EvalContext
) -> Database:
    """Least model with ¬q decided against the fixed ``assumed`` set.

    Rule plans come from the shared ``ctx`` (compiled once per
    ``wellfounded`` call, not once per reduct iteration) and run through
    the engine's one executor pipeline with negation checked against
    ``assumed``.
    """
    db = base.copy()
    plans = [ctx.plan_for(rule) for rule in program.proper_rules()]
    changed = True
    while changed:
        changed = False
        for plan in plans:
            derived = derive_facts(
                db, plan, negation_db=assumed, executor=ctx.executor
            )
            for fact in derived:
                if db.add(fact):
                    changed = True
    return db


def wellfounded(
    program: Program,
    edb: Iterable[Atom] = (),
    check: bool = True,
    max_rounds: int = 10_000,
) -> WellFoundedModel:
    """Compute the well-founded model of a (possibly non-admissible)
    program with negation.

    ``true`` are the facts in every reasonable model; ``undefined`` are
    those caught in negative cycles (e.g. draws in the win-move game).
    """
    if check:
        check_program(program)
    for rule in program.rules:
        if rule.is_grouping():
            raise EvaluationError(
                "well-founded semantics does not cover grouping rules; "
                "use the stratified evaluator"
            )

    base = Database(edb)
    for rule in program.facts():
        base.add(
            Atom(
                rule.head.pred,
                tuple(evaluate_ground(a) for a in rule.head.args),
            )
        )

    # one context for the whole alternating fixpoint: every reduct
    # reuses the same compiled plans.
    ctx = EvalContext(base)

    # O_0 = Γ(∅): with nothing assumed true every negation succeeds,
    # giving the most generous overestimate; `under` starts as a
    # placeholder that the first comparison always rejects.
    under = base.copy()
    over = _reduct(program, base, Database(), ctx)
    rounds = 1
    while True:
        rounds += 1
        if rounds > max_rounds:
            raise EvaluationError("alternating fixpoint did not converge")
        new_under = _reduct(program, base, over, ctx)
        new_over = _reduct(program, base, new_under, ctx)
        if new_under == under and new_over == over:
            break
        under, over = new_under, new_over

    true_facts = under.as_set()
    undefined = over.as_set() - true_facts
    return WellFoundedModel(true_facts, frozenset(undefined), rounds)
