"""Model-theoretic semantics: model checking, minimality, enumeration."""

from repro.semantics.enumerate_models import (
    MAX_CANDIDATES,
    all_models,
    enumerate_models,
    generate_candidates,
    has_model,
    minimal_models_over,
)
from repro.semantics.fixpoint_theory import (
    is_monotone_on,
    lfp,
    tp,
    tp_with_grouping,
)
from repro.semantics.wellfounded import WellFoundedModel, wellfounded
from repro.semantics.minimality import (
    improves_on,
    is_minimal_among,
    is_minimal_model_among,
    minimal_models,
    submodel,
)
from repro.semantics.modelcheck import (
    Violation,
    first_violation,
    is_model,
    violations,
)

__all__ = [
    "MAX_CANDIDATES",
    "Violation",
    "all_models",
    "enumerate_models",
    "first_violation",
    "generate_candidates",
    "has_model",
    "improves_on",
    "is_minimal_among",
    "is_minimal_model_among",
    "is_model",
    "is_monotone_on",
    "lfp",
    "tp",
    "tp_with_grouping",
    "WellFoundedModel",
    "wellfounded",
    "minimal_models",
    "minimal_models_over",
    "submodel",
    "violations",
]
