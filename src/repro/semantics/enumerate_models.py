"""Brute-force model enumeration over a finite fact universe.

The counterexamples of Sections 2.3–2.4 reason about *all* models of a
tiny program.  This module makes those arguments executable: given a
candidate fact universe (supplied explicitly or generated from the
program's constants), it enumerates the subsets that are models and
reports the §2.4-minimal ones.

Exponential by construction — guarded by a candidate-count cap.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable, Iterator, Sequence

from repro.errors import EvaluationError
from repro.program.rule import Atom, Program
from repro.semantics.minimality import minimal_models as _filter_minimal
from repro.semantics.modelcheck import is_model
from repro.terms.term import Term
from repro.terms.universe import finite_subsets

#: Largest candidate universe we will exhaustively power-set.
MAX_CANDIDATES = 20

Interpretation = frozenset[Atom]


def enumerate_models(
    program: Program,
    candidates: Sequence[Atom],
    base: Iterable[Atom] = (),
) -> Iterator[Interpretation]:
    """Yield every model of ``program`` of the form base ∪ S with
    S ⊆ candidates, smallest subsets first.

    ``base`` facts are forced into every interpretation (typically the
    program's ground facts — a model must contain them anyway).
    """
    forced = frozenset(base) | {
        rule.head for rule in program.facts() if rule.head.is_ground()
    }
    optional = [c for c in dict.fromkeys(candidates) if c not in forced]
    if len(optional) > MAX_CANDIDATES:
        raise EvaluationError(
            f"candidate universe too large to power-set: {len(optional)}"
        )
    for size in range(len(optional) + 1):
        for combo in combinations(optional, size):
            interpretation = forced | frozenset(combo)
            if is_model(program, interpretation):
                yield interpretation


def all_models(
    program: Program, candidates: Sequence[Atom], base: Iterable[Atom] = ()
) -> list[Interpretation]:
    """All models over the candidate universe, smallest first."""
    return list(enumerate_models(program, candidates, base))


def minimal_models_over(
    program: Program, candidates: Sequence[Atom], base: Iterable[Atom] = ()
) -> list[Interpretation]:
    """Models over the universe that are §2.4-minimal within that pool."""
    return _filter_minimal(all_models(program, candidates, base))


def has_model(program: Program, candidates: Sequence[Atom]) -> bool:
    """Whether any subset of the candidate universe is a model."""
    for _ in enumerate_models(program, candidates):
        return True
    return False


def generate_candidates(
    program: Program,
    terms: Iterable[Term],
    max_set_size: int = 2,
    max_set_depth: int = 1,
    predicates: Iterable[tuple[str, int]] | None = None,
) -> list[Atom]:
    """Build a candidate fact universe from a term pool.

    The pool is closed under set formation up to ``max_set_size`` /
    ``max_set_depth``, then every predicate (name, arity) is
    instantiated over all argument combinations.  Kept deliberately
    small — callers hand-pick pools for the paper examples.
    """
    pool: set[Term] = set(terms)
    for _ in range(max_set_depth):
        pool |= set(finite_subsets(pool, max_size=max_set_size))
    ordered_pool = sorted(pool, key=lambda t: t.sort_key())

    if predicates is None:
        arities: dict[str, int] = {}
        for rule in program.rules:
            arities.setdefault(rule.head.pred, rule.head.arity)
            for lit in rule.body:
                if not lit.atom.is_builtin():
                    arities.setdefault(lit.atom.pred, lit.atom.arity)
        predicates = sorted(arities.items())

    out: list[Atom] = []
    for pred, arity in predicates:
        out.extend(
            Atom(pred, combo) for combo in _tuples(ordered_pool, arity)
        )
    return out


def _tuples(pool: Sequence[Term], arity: int) -> Iterator[tuple[Term, ...]]:
    if arity == 0:
        yield ()
        return
    for head in pool:
        for rest in _tuples(pool, arity - 1):
            yield (head,) + rest
