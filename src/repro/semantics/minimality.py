"""Minimal models under the Section 2.4 domination criterion.

The paper replaces set-inclusion minimality (which fails for LDL1 —
positive programs can have several inclusion-minimal models) with: a
model M is *minimal* iff there is no model M' different from M with
``(M' - M) <= (M - M')``, where ``<=`` on fact sets is the submodel
relation realized by an injective domination matching
(:func:`repro.terms.domination.factset_dominated`).

These checks are inherently enumerative; they are meant for the small
counterexample programs of Sections 2.3–2.4 and for validating the
bottom-up evaluator's output on test-sized programs.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.program.rule import Atom, Program
from repro.semantics.modelcheck import is_model
from repro.terms.domination import factset_dominated

Interpretation = frozenset[Atom]


def submodel(
    candidate: Iterable[Atom], model: Iterable[Atom], elaborate: bool = False
) -> bool:
    """The paper's ``M' <= M``: a preserving function from a subset of
    ``model`` onto ``candidate`` exists.

    ``elaborate=True`` uses the recursive element-domination order of
    the Section 2.4 Remark; the paper claims (and our tests confirm on
    its examples) that the results hold for it as well.
    """
    return factset_dominated(candidate, model, elaborate=elaborate)


def improves_on(
    challenger: Iterable[Atom],
    incumbent: Iterable[Atom],
    elaborate: bool = False,
) -> bool:
    """True when ``challenger`` witnesses non-minimality of ``incumbent``:
    it differs and ``(challenger - incumbent) <= (incumbent - challenger)``."""
    challenger_set = frozenset(challenger)
    incumbent_set = frozenset(incumbent)
    if challenger_set == incumbent_set:
        return False
    return factset_dominated(
        challenger_set - incumbent_set,
        incumbent_set - challenger_set,
        elaborate=elaborate,
    )


def is_minimal_among(
    model: Iterable[Atom],
    other_models: Iterable[Iterable[Atom]],
    elaborate: bool = False,
) -> bool:
    """Minimality of ``model`` relative to an explicit candidate pool."""
    return not any(
        improves_on(other, model, elaborate=elaborate)
        for other in other_models
    )


def is_minimal_model_among(
    program: Program,
    model: Iterable[Atom],
    candidates: Iterable[Iterable[Atom]],
) -> bool:
    """Check ``model`` is a model and minimal among candidate *models*.

    Candidates that are not models of ``program`` are ignored, so the
    pool may be a coarse superset (e.g. every subset of a fact
    universe).
    """
    model_set = frozenset(model)
    if not is_model(program, model_set):
        return False
    for candidate in candidates:
        candidate_set = frozenset(candidate)
        if candidate_set == model_set:
            continue
        if not improves_on(candidate_set, model_set):
            continue
        if is_model(program, candidate_set):
            return False
    return True


def minimal_models(models: Sequence[Iterable[Atom]]) -> list[Interpretation]:
    """Filter a pool of models down to the §2.4-minimal ones."""
    pool = [frozenset(m) for m in models]
    return [
        model
        for model in pool
        if not any(improves_on(other, model) for other in pool)
    ]
