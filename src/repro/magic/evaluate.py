"""Constrained bottom-up evaluation of magic-rewritten programs (§6).

The rewritten program is *not* layered (magic predicates cycle with the
rules they guard), so plain stratified evaluation does not apply.  Per
the paper, grouping rules and rules with negation on derived predicates
must see fully evaluated bodies *for each magic tuple*; the evaluation
therefore alternates:

1. **saturation** — semi-naive fixpoint of all magic rules and
   non-deferred modified rules (all positive, so order-free);
2. **deferred step** — one application of each deferred rule
   (grouping / negation on derived predicates) against the saturated
   database;

repeating until the deferred step derives nothing new.  A final
validation recomputes every deferred rule and checks it derives exactly
the facts recorded during the run — catching any violation of the
saturation argument (e.g. a group that grew after it was formed) and
raising :class:`UnstableMagicEvaluationError`.

The saturation step itself is SCC-condensed
(:func:`repro.program.dependency.condense_program`): the rewritten
rules' dependency graph is condensed once, and each sweep evaluates the
components in dependency order — non-recursive components with a single
rule application, recursive ones as their own small fixpoint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.engine.context import EvalContext, ensure_context
from repro.engine.database import Database
from repro.engine.evaluator import answer_query
from repro.engine.fixpoint import FixpointStats, seminaive_fixpoint, single_pass
from repro.program.dependency import condense_program
from repro.engine.exec import derive_facts
from repro.engine.grouping import apply_grouping_rule
from repro.engine.match import Binding
from repro.errors import UnstableMagicEvaluationError
from repro.observe import EngineHooks
from repro.magic.rewrite import MagicProgram, magic_rewrite
from repro.program.rule import Atom, Program, Query, Rule, canonical_atom
from repro.program.wellformed import check_program
from repro.terms.term import evaluate_ground


@dataclass
class MagicStats:
    """Work counters for a constrained magic evaluation."""

    phases: int = 0
    saturation: FixpointStats = field(default_factory=FixpointStats)
    deferred_facts: int = 0


@dataclass
class MagicResult:
    """Outcome of evaluating a query by magic sets."""

    database: Database
    magic_program: MagicProgram
    stats: MagicStats

    @property
    def total_facts(self) -> int:
        return len(self.database)

    def answers(self) -> list[Binding]:
        """Bindings of the query's variables."""
        query = self.magic_program.adorned.query
        adorned_query = Query(
            Atom(self.magic_program.answer_pred, query.atom.args)
        )
        return answer_query(self.database, adorned_query)

    def answer_atoms(self) -> list[Atom]:
        """Matching answer facts under the *original* predicate name."""
        query = self.magic_program.adorned.query
        out = []
        for binding in self.answers():
            atom = query.atom.substitute(binding)
            args = tuple(evaluate_ground(a) for a in atom.args)
            out.append(Atom(query.atom.pred, args))
        return sorted(set(out), key=lambda a: a.sort_key())


def _apply_deferred(
    rule: Rule, db: Database, context: EvalContext | None = None
) -> list[Atom]:
    ctx = ensure_context(context, db)
    if rule.is_grouping():
        return list(apply_grouping_rule(rule, db, context=ctx))
    return derive_facts(db, ctx.plan_for(rule), executor=ctx.executor)


def evaluate_magic(
    program: Program,
    query: Query,
    edb: Iterable[Atom] = (),
    check: bool = True,
    max_phases: int = 10_000,
    rewrite=magic_rewrite,
    hooks: EngineHooks | None = None,
) -> MagicResult:
    """Answer ``query`` over ``program`` + ``edb`` via magic sets.

    Equivalent (Theorem 4) to computing the full minimal model and
    matching the query, but restricted to facts relevant to the query's
    constants.  ``rewrite`` selects the rewriting algorithm (default:
    Generalized Magic Sets; see
    :func:`repro.magic.supplementary.supplementary_rewrite`).
    """
    if check:
        check_program(program)
    mp = rewrite(program, query)

    db = Database(canonical_atom(a) for a in edb)
    idb = mp.adorned.idb_predicates
    for rule in program.facts():
        if rule.head.pred not in idb:
            db.add(
                Atom(
                    rule.head.pred,
                    tuple(evaluate_ground(a) for a in rule.head.args),
                )
            )
    db.add(mp.seed)

    phase1_rules = list(mp.magic_rules) + list(mp.modified_rules)
    # condensed once: the saturation sweep walks the rewritten rules'
    # SCCs in dependency order instead of one global fixpoint.
    phase1_schedule = [
        c for c in condense_program(Program(phase1_rules)) if c.rules
    ]
    derived_by_rule: dict[Rule, set[Atom]] = {r: set() for r in mp.deferred_rules}
    stats = MagicStats()
    # one context across all saturation/deferred phases: every rule in
    # the rewritten program is planned exactly once for the whole run.
    ctx = EvalContext(db, hooks=hooks)

    while True:
        stats.phases += 1
        if stats.phases > max_phases:
            raise UnstableMagicEvaluationError(
                f"no fixpoint after {max_phases} phases"
            )
        for component in phase1_schedule:
            if component.recursive:
                stats.saturation.merge(
                    seminaive_fixpoint(db, component.rules, context=ctx)
                )
            else:
                stats.saturation.merge(
                    single_pass(db, component.rules, context=ctx)
                )
        changed = False
        for rule in mp.deferred_rules:
            for fact in _apply_deferred(rule, db, context=ctx):
                derived_by_rule[rule].add(fact)
                if db.add(fact):
                    stats.deferred_facts += 1
                    changed = True
        if not changed:
            break

    # stability validation: every deferred rule, recomputed now, must
    # derive exactly what it derived during the run.
    for rule in mp.deferred_rules:
        final = set(_apply_deferred(rule, db, context=ctx))
        if final != derived_by_rule[rule]:
            raise UnstableMagicEvaluationError(
                "deferred rule derivations changed after fixpoint: "
                f"{rule!r}"
            )

    return MagicResult(db, mp, stats)


def on_demand_rows(
    program: Program,
    query: Query,
    edb: Iterable[Atom] = (),
    hooks: EngineHooks | None = None,
) -> tuple[tuple, ...]:
    """Ground argument rows answering ``query``, computed on demand.

    The magic pipeline as a demand-driven *row* producer: evaluate the
    rewritten program (so only facts relevant to the query's bound
    arguments are derived) and return the full argument tuples of the
    matching answer atoms, sorted.  This is the population entry point
    of the server's answer cache — rows for a relaxed pattern can
    answer any more-bound query later by re-matching, which variable
    bindings cannot.
    """
    result = evaluate_magic(program, query, edb=edb, hooks=hooks)
    return tuple(atom.args for atom in result.answer_atoms())
