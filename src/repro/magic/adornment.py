"""Adorned programs (paper Section 6, following [BR87]).

An *adornment* for an n-ary predicate is a string over ``{b, f}``
marking which argument positions arrive bound.  Starting from the query
predicate's adornment, a *sip* (sideways information passing strategy)
decides how bindings flow through each rule body; the default here is
the paper's left-to-right strategy with the two LDL1-specific
restrictions spelled out in Section 6:

* a head argument of the form ``<X>`` never contributes bound
  variables (footnote 6: restricting the grouped variable would change
  the grouped set's meaning);
* negative literals receive bindings but produce none.

Derived (IDB) predicates are specialized per adornment by renaming
``p`` to ``p__<adornment>``; EDB predicates and built-ins keep their
names.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MagicRewriteError
from repro.magic.sips import SipStrategy, left_to_right_sip
from repro.names import is_builtin_predicate
from repro.program.modes import modes_for
from repro.program.rule import Atom, Literal, Program, Query, Rule
from repro.terms.term import GroupTerm


def adorned_name(pred: str, adornment: str) -> str:
    return f"{pred}__{adornment}"


def atom_adornment(atom: Atom, bound_vars: set[str]) -> str:
    """b/f string for ``atom`` given the currently bound variables.

    An argument is bound when every variable in it is bound (ground
    arguments are vacuously bound); a grouping-term argument is free.
    """
    out = []
    for arg in atom.args:
        if isinstance(arg, GroupTerm):
            out.append("f")
        elif arg.variables() <= bound_vars:
            out.append("b")
        else:
            out.append("f")
    return "".join(out)


def _bound_head_vars(head: Atom, adornment: str) -> set[str]:
    bound: set[str] = set()
    for marker, arg in zip(adornment, head.args):
        if marker == "b" and not isinstance(arg, GroupTerm):
            bound |= arg.variables()
    return bound


def _builtin_produces(lit: Literal, bound: set[str]) -> set[str]:
    """Variables a built-in literal can bind given ``bound``."""
    atom = lit.atom
    for mode in modes_for(atom.pred):
        required: set[str] = set()
        for pos in mode.requires:
            if pos < len(atom.args):
                required |= atom.args[pos].variables()
        if required <= bound:
            produced: set[str] = set()
            for pos in mode.produces:
                if pos < len(atom.args):
                    produced |= atom.args[pos].variables()
            return produced
    return set()


@dataclass
class AdornedRule:
    """One adorned rule plus sip bookkeeping.

    ``rule`` has the adorned head/body predicate names already applied;
    ``prefix_bound`` records, per body position, the variables bound
    *before* that literal (used by the magic rewrite), and ``derived``
    flags body positions referring to IDB predicates.
    """

    rule: Rule
    head_adornment: str
    body_adornments: tuple[str, ...]
    prefix_bound: tuple[frozenset[str], ...]
    derived: tuple[bool, ...]
    #: body occurrence indices in sip-processing order; binding flow and
    #: magic-rule prefixes follow this order, not the written one.
    sip_order: tuple[int, ...] = ()


@dataclass
class AdornedProgram:
    """The adorned version of (program, query)."""

    rules: tuple[AdornedRule, ...]
    query: Query
    query_pred: str  # adorned name of the query predicate
    query_adornment: str  # effective adornment (grouped positions free)
    idb_predicates: frozenset[str]

    def program(self) -> Program:
        return Program(ar.rule for ar in self.rules)


def adorn(
    program: Program,
    query: Query,
    sip_strategy: SipStrategy = left_to_right_sip,
) -> AdornedProgram:
    """Build the adorned program ``P^ad`` for ``query``.

    Only rules reachable from the query predicate are kept (the
    unreachable ones cannot contribute to the answer).  ``sip_strategy``
    chooses how bindings flow through rule bodies (default: the paper's
    left-to-right sip).
    """
    idb = program.idb_predicates()
    if is_builtin_predicate(query.atom.pred):
        raise MagicRewriteError("cannot rewrite a query on a built-in")
    for pred in idb:
        if "__" in pred or pred.startswith("m_"):
            raise MagicRewriteError(
                f"predicate name {pred!r} clashes with adorned naming"
            )

    # positions that are grouped (<X>) in some rule head can never be
    # bound: a binding there would restrict the grouped set (footnote 6).
    grouped_positions: dict[str, set[int]] = {}
    for rule in program.rules:
        positions = rule.head.group_positions()
        if positions:
            grouped_positions.setdefault(rule.head.pred, set()).update(positions)

    def effective(pred: str, adornment: str) -> str:
        forced = grouped_positions.get(pred)
        if not forced:
            return adornment
        return "".join(
            "f" if i in forced else marker
            for i, marker in enumerate(adornment)
        )

    query_adornment = effective(query.atom.pred, query.adornment())
    out: list[AdornedRule] = []
    seen: set[tuple[str, str]] = set()
    worklist: list[tuple[str, str]] = []

    def demand(pred: str, adornment: str) -> str:
        """Record a (pred, adornment) pair; return the adorned name."""
        if pred not in idb:
            return pred
        adornment = effective(pred, adornment)
        key = (pred, adornment)
        if key not in seen:
            seen.add(key)
            worklist.append(key)
        return adorned_name(pred, adornment)

    if query.atom.pred in idb:
        query_pred = demand(query.atom.pred, query_adornment)
    else:
        query_pred = query.atom.pred

    while worklist:
        pred, adornment = worklist.pop(0)
        for rule in program.rules_for(pred):
            sip = sip_strategy(rule, adornment)
            bound = _bound_head_vars(rule.head, adornment)
            size = len(rule.body)
            body_adornments: list[str] = [""] * size
            prefix_bound: list[frozenset[str]] = [frozenset()] * size
            derived_flags: list[bool] = [False] * size
            new_body: list[Literal | None] = [None] * size
            for index in sip.order:
                lit = rule.body[index]
                prefix_bound[index] = frozenset(bound)
                lit_adornment = atom_adornment(lit.atom, bound)
                body_adornments[index] = lit_adornment
                derived_flags[index] = lit.atom.pred in idb
                new_pred = demand(lit.atom.pred, lit_adornment)
                new_body[index] = Literal(
                    Atom(new_pred, lit.atom.args), lit.positive
                )
                if lit.negative:
                    continue  # negative literals produce no bindings
                if is_builtin_predicate(lit.atom.pred):
                    bound |= _builtin_produces(lit, bound)
                else:
                    bound |= lit.atom.variables()
            new_head = Atom(adorned_name(pred, adornment), rule.head.args)
            out.append(
                AdornedRule(
                    Rule(new_head, new_body),
                    adornment,
                    tuple(body_adornments),
                    tuple(prefix_bound),
                    tuple(derived_flags),
                    sip.order,
                )
            )
    return AdornedProgram(
        rules=tuple(out),
        query=query,
        query_pred=query_pred,
        query_adornment=query_adornment,
        idb_predicates=idb,
    )
