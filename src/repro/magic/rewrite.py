"""Generalized Magic Sets rewriting for layered LDL1 (paper Section 6).

From the adorned program, build ``P^mg``:

* per adorned rule, a **modified rule** guarded by the magic predicate
  of its head (``p__a(t) <- m_p__a(t_b), body``);
* per derived body occurrence (positive *or* negative — a negated
  predicate must also be fully computed for its bound arguments), a
  **magic rule** passing the guard plus the positive sip prefix::

      m_q__b(s_b) <- m_p__a(t_b), B1, ..., B_{i-1}   (positives only)

* a **seed** fact for the query's magic predicate.

Negative prefix literals are dropped from magic-rule bodies: they may
carry unbound variables and omitting them only widens the demand set,
which is sound.  Rules whose evaluation must wait for saturated
sub-demands — grouping heads, or negation on a derived predicate — are
flagged *deferred* for the constrained evaluation of
:mod:`repro.magic.evaluate` (the paper: "the body must be fully
evaluated before grouping can be done", and likewise for ``~p``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MagicRewriteError
from repro.magic.adornment import AdornedProgram, AdornedRule, adorn
from repro.program.rule import Atom, Literal, Program, Query, Rule
from repro.terms.term import GroupTerm, evaluate_ground


def magic_name(adorned_pred: str) -> str:
    return f"m_{adorned_pred}"


def _bound_args(atom: Atom, adornment: str) -> tuple:
    return tuple(
        arg
        for marker, arg in zip(adornment, atom.args)
        if marker == "b" and not isinstance(arg, GroupTerm)
    )


@dataclass
class MagicProgram:
    """The rewritten program plus evaluation metadata."""

    magic_rules: tuple[Rule, ...]
    modified_rules: tuple[Rule, ...]
    deferred_rules: tuple[Rule, ...]
    seed: Atom
    adorned: AdornedProgram
    answer_pred: str

    def all_rules(self) -> Program:
        return Program(
            self.magic_rules + self.modified_rules + self.deferred_rules
        )

    def rule_count(self) -> int:
        return (
            len(self.magic_rules)
            + len(self.modified_rules)
            + len(self.deferred_rules)
        )


def _is_deferred(adorned_rule: AdornedRule) -> bool:
    if adorned_rule.rule.is_grouping():
        return True
    for lit, derived in zip(adorned_rule.rule.body, adorned_rule.derived):
        if lit.negative and derived:
            return True
    return False


def magic_rewrite(
    program: Program, query: Query, sip_strategy=None
) -> MagicProgram:
    """Rewrite ``program`` for ``query`` with Generalized Magic Sets.

    Theorem 4: the rewritten program (with the seed) computes the same
    answer set for the query as the adorned program, and hence as the
    original (Theorem 3 of Section 6).  ``sip_strategy`` overrides the
    default left-to-right sip (see :mod:`repro.magic.sips`).
    """
    from repro.magic.sips import left_to_right_sip

    adorned = adorn(program, query, sip_strategy or left_to_right_sip)
    if adorned.query.atom.pred not in adorned.idb_predicates:
        raise MagicRewriteError(
            f"query predicate {query.atom.pred!r} is not derived; "
            "evaluate it directly against the database"
        )

    magic_rules: list[Rule] = []
    modified: list[Rule] = []
    deferred: list[Rule] = []

    for adorned_rule in adorned.rules:
        rule = adorned_rule.rule
        head_bound = _bound_args(rule.head, adorned_rule.head_adornment)
        guard = Literal(Atom(magic_name(rule.head.pred), head_bound))
        target = deferred if _is_deferred(adorned_rule) else modified
        target.append(Rule(rule.head, (guard,) + rule.body))

        prefix: list[Literal] = []
        for index in adorned_rule.sip_order:
            lit = rule.body[index]
            if adorned_rule.derived[index]:
                bound = _bound_args(lit.atom, adorned_rule.body_adornments[index])
                magic_rules.append(
                    Rule(
                        Atom(magic_name(lit.atom.pred), bound),
                        (guard,) + tuple(prefix),
                    )
                )
            if lit.positive:
                prefix.append(lit)

    try:
        seed_args = tuple(
            evaluate_ground(arg)
            for marker, arg in zip(adorned.query_adornment, query.atom.args)
            if marker == "b"
        )
    except Exception as exc:  # noqa: BLE001 - surfaced as rewrite error
        raise MagicRewriteError(f"cannot evaluate query constants: {exc}")
    seed = Atom(magic_name(adorned.query_pred), seed_args)

    return MagicProgram(
        magic_rules=tuple(magic_rules),
        modified_rules=tuple(modified),
        deferred_rules=tuple(deferred),
        seed=seed,
        adorned=adorned,
        answer_pred=adorned.query_pred,
    )
