"""Sideways information passing strategies — sips (paper Section 6).

A sip for a rule (given the bound head arguments) is a labeled graph:
arcs ``N --χ--> q`` say that once the members of ``N`` (the special
head node and/or body predicate occurrences) are evaluated, the
variable values in ``χ`` are passed to occurrence ``q``.  Section 6
states three conditions, implemented by :func:`validate_sip`:

1. nodes are subsets/members of the occurrence set plus the head node;
2. for each arc ``N --χ--> q``: every χ-variable appears in ``q`` and
   in an argument (not a grouped head argument ``<X>``) of a positive
   member of ``N``; every member of ``N`` is connected to a χ-variable;
   and some argument of ``q`` has all its variables in χ, with every
   χ-variable appearing in such an argument;
3. a total order exists in which the head precedes everything and arc
   sources precede their targets.

Two constructors are provided: the paper's default **left-to-right**
sip and a **bound-first** sip that greedily reorders the body to
maximize binding propagation — an ablation knob for the adornment and
magic rewriting (experiment E14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import MagicRewriteError
from repro.names import is_builtin_predicate
from repro.program.modes import modes_for
from repro.program.rule import Literal, Rule
from repro.terms.term import GroupTerm

#: The special head node ``p_h`` (Section 6): index -1.
HEAD_NODE = -1


@dataclass(frozen=True)
class SipArc:
    """``N --label--> target``: pass the label's variable bindings."""

    sources: frozenset[int]  # HEAD_NODE and/or body occurrence indices
    target: int  # body occurrence index
    label: frozenset[str]  # variable names


@dataclass(frozen=True)
class Sip:
    """A sip: its arcs plus the total evaluation order (condition 3)."""

    arcs: tuple[SipArc, ...]
    order: tuple[int, ...]  # body occurrence indices, evaluation order


def _bound_head_vars(rule: Rule, head_adornment: str) -> frozenset[str]:
    bound: set[str] = set()
    for marker, arg in zip(head_adornment, rule.head.args):
        if marker == "b" and not isinstance(arg, GroupTerm):
            bound |= arg.variables()
    return frozenset(bound)


def _passable_label(lit: Literal, bound: frozenset[str]) -> frozenset[str]:
    """χ per condition 2(iii): variables of ``lit``'s fully-bound
    arguments (every χ-var must appear in an argument whose variables
    all lie in χ — i.e. the bound arguments)."""
    label: set[str] = set()
    for arg in lit.atom.args:
        arg_vars = arg.variables()
        if arg_vars and arg_vars <= bound:
            label |= arg_vars
    return frozenset(label)


def _producers(
    rule: Rule, upto: Sequence[int], needed: frozenset[str], head_bound: frozenset[str]
) -> frozenset[int]:
    """Source node set: the head node and/or earlier positive
    occurrences that supply the needed variables."""
    sources: set[int] = set()
    if needed & head_bound:
        sources.add(HEAD_NODE)
    for index in upto:
        lit = rule.body[index]
        if lit.positive and lit.atom.variables() & needed:
            sources.add(index)
    return frozenset(sources)


def _literal_produces(lit: Literal, bound: set[str]) -> frozenset[str]:
    if lit.negative:
        return frozenset()
    if not is_builtin_predicate(lit.atom.pred):
        return lit.atom.variables()
    for mode in modes_for(lit.atom.pred):
        required: set[str] = set()
        for pos in mode.requires:
            if pos < len(lit.atom.args):
                required |= lit.atom.args[pos].variables()
        if required <= bound:
            produced: set[str] = set()
            for pos in mode.produces:
                if pos < len(lit.atom.args):
                    produced |= lit.atom.args[pos].variables()
            return frozenset(produced)
    return frozenset()


def _build_sip(rule: Rule, head_adornment: str, order: Sequence[int]) -> Sip:
    head_bound = _bound_head_vars(rule, head_adornment)
    bound: set[str] = set(head_bound)
    arcs: list[SipArc] = []
    processed: list[int] = []
    for index in order:
        lit = rule.body[index]
        label = _passable_label(lit, frozenset(bound))
        if label:
            sources = _producers(rule, processed, label, head_bound)
            if sources:
                arcs.append(SipArc(sources, index, label))
        bound |= _literal_produces(lit, bound)
        processed.append(index)
    return Sip(tuple(arcs), tuple(order))


def left_to_right_sip(rule: Rule, head_adornment: str) -> Sip:
    """The paper's default: process body literals in written order."""
    return _build_sip(rule, head_adornment, range(len(rule.body)))


def bound_first_sip(rule: Rule, head_adornment: str) -> Sip:
    """Greedy reordering: always pick next the literal with the most
    bound argument positions (ties broken by written order), so magic
    predicates carry as many bindings as possible."""
    head_bound = _bound_head_vars(rule, head_adornment)
    bound: set[str] = set(head_bound)
    remaining = list(range(len(rule.body)))
    order: list[int] = []
    while remaining:
        def score(index: int) -> tuple[int, int]:
            lit = rule.body[index]
            bound_args = sum(
                1
                for arg in lit.atom.args
                if arg.variables() and arg.variables() <= bound
            )
            return (-bound_args, index)

        best = min(remaining, key=score)
        remaining.remove(best)
        order.append(best)
        bound |= _literal_produces(rule.body[best], bound)
    return _build_sip(rule, head_adornment, order)


#: A sip strategy maps (rule, head adornment) to a Sip.
SipStrategy = Callable[[Rule, str], Sip]


def validate_sip(rule: Rule, head_adornment: str, sip: Sip) -> None:
    """Check the three Section 6 conditions; raises on violation."""
    occurrences = set(range(len(rule.body)))
    head_bound = _bound_head_vars(rule, head_adornment)

    # condition 3: the order is total over the occurrences and every
    # arc's sources precede its target (the head precedes everything).
    if sorted(sip.order) != sorted(occurrences):
        raise MagicRewriteError("sip order must enumerate all occurrences")
    position = {index: i for i, index in enumerate(sip.order)}

    for arc in sip.arcs:
        # condition 1: nodes come from P(r) ∪ {p_h}
        if arc.target not in occurrences:
            raise MagicRewriteError(f"sip arc target {arc.target} not in body")
        for source in arc.sources:
            if source != HEAD_NODE and source not in occurrences:
                raise MagicRewriteError(f"sip arc source {source} not in body")
            if source != HEAD_NODE and position[source] >= position[arc.target]:
                raise MagicRewriteError("sip arc source must precede target")

        target_lit = rule.body[arc.target]
        target_vars = target_lit.atom.variables()
        for var in arc.label:
            # 2(i): χ-vars appear in the target...
            if var not in target_vars:
                raise MagicRewriteError(
                    f"label variable {var} does not appear in the target"
                )
            # ... and in a non-grouped argument of a positive member of N.
            found = False
            for source in arc.sources:
                if source == HEAD_NODE:
                    if var in head_bound:
                        found = True
                else:
                    lit = rule.body[source]
                    if lit.positive and var in lit.atom.variables():
                        found = True
            if not found:
                raise MagicRewriteError(
                    f"label variable {var} has no positive source in N"
                )
        # 2(ii): every member of N is connected to a label variable.
        for source in arc.sources:
            source_vars = (
                head_bound
                if source == HEAD_NODE
                else rule.body[source].atom.variables()
            )
            if not source_vars & arc.label:
                raise MagicRewriteError(
                    "sip arc source not connected to any label variable"
                )
        # 2(iii): some argument of the target has all variables in χ,
        # and each χ-var appears in such an argument.
        saturated_args = [
            arg.variables()
            for arg in target_lit.atom.args
            if arg.variables() and arg.variables() <= arc.label
        ]
        if not saturated_args:
            raise MagicRewriteError(
                "no target argument fully covered by the sip label"
            )
        covered = frozenset().union(*saturated_args)
        if arc.label - covered:
            raise MagicRewriteError(
                "label variables outside every fully-covered argument"
            )
