"""Supplementary Magic Sets rewriting ([BR87]; paper §6 footnote 4).

The paper notes that "the other methods presented there can also be
extended to cover set grouping and negation".  This module implements
the most prominent one: *supplementary* magic sets, which materialize
the prefix joins that Generalized Magic Sets recomputes in every magic
rule.  For an adorned rule ``p__a(t) <- B1, ..., Bn``:

* ``sup_0(V0) <- m_p__a(t_b)`` carries the bound head variables;
* ``sup_i(Vi) <- sup_{i-1}(V_{i-1}), Bi`` extends the join one positive
  literal at a time, projecting onto the variables still needed;
* each derived occurrence ``Bi`` gets its magic rule from the
  supplementary state instead of the raw prefix:
  ``m_q__b(s_b) <- sup_{i-1}(V_{i-1})``;
* the modified rule becomes ``p__a(t) <- sup_last(V), [negatives]``.

Negative literals are left out of the supplementary chain (they may
not bind variables anyway) and evaluated in the final rule, which keeps
the deferral discipline of :mod:`repro.magic.evaluate` unchanged: the
rewrite returns a regular :class:`~repro.magic.rewrite.MagicProgram`.
"""

from __future__ import annotations

from repro.magic.adornment import adorn
from repro.magic.rewrite import MagicProgram, _bound_args, _is_deferred, magic_name
from repro.errors import MagicRewriteError
from repro.names import FreshNames
from repro.program.rule import Atom, Literal, Program, Query, Rule
from repro.terms.term import Var, evaluate_ground


def _needed_later(
    rule: Rule, remaining: tuple[int, ...]
) -> frozenset[str]:
    """Variables used by the head, by the ``remaining`` body occurrences,
    or by any negative literal (negatives are evaluated in the final
    rule regardless of their body position, so their variables must
    survive the whole supplementary chain)."""
    needed = set(rule.head.variables())
    for index in remaining:
        needed |= rule.body[index].atom.variables()
    for lit in rule.negative_body():
        needed |= lit.atom.variables()
    return frozenset(needed)


def supplementary_rewrite(
    program: Program, query: Query, sip_strategy=None
) -> MagicProgram:
    """Rewrite for ``query`` with supplementary magic sets.

    Produces the same answers as :func:`repro.magic.rewrite.magic_rewrite`
    (both instantiate the Theorem-4 equivalence); the benchmarks compare
    their rule-firing counts (experiment E13).
    """
    from repro.magic.sips import left_to_right_sip

    adorned = adorn(program, query, sip_strategy or left_to_right_sip)
    if adorned.query.atom.pred not in adorned.idb_predicates:
        raise MagicRewriteError(
            f"query predicate {query.atom.pred!r} is not derived"
        )
    fresh = FreshNames(
        {ar.rule.head.pred for ar in adorned.rules} | program.predicates(),
        prefix="sup",
    )

    magic_rules: list[Rule] = []
    modified: list[Rule] = []
    deferred: list[Rule] = []

    for adorned_rule in adorned.rules:
        rule = adorned_rule.rule
        head_bound = _bound_args(rule.head, adorned_rule.head_adornment)
        guard = Literal(Atom(magic_name(rule.head.pred), head_bound))
        if not rule.body:
            # adorned fact: guard it directly, no chain needed.
            target = deferred if _is_deferred(adorned_rule) else modified
            target.append(Rule(rule.head, (guard,)))
            continue

        sup_name = fresh.fresh(f"sup_{rule.head.pred}")
        available: set[str] = set()
        for arg in head_bound:
            available |= arg.variables()
        order = adorned_rule.sip_order
        current_vars = tuple(sorted(available & _needed_later(rule, order)))
        current_atom = Atom(f"{sup_name}_0", tuple(Var(v) for v in current_vars))
        magic_rules.append(Rule(current_atom, (guard,)))

        stage = 0
        negatives: list[Literal] = []
        for step, index in enumerate(order):
            lit = rule.body[index]
            if adorned_rule.derived[index]:
                bound = _bound_args(
                    lit.atom, adorned_rule.body_adornments[index]
                )
                magic_rules.append(
                    Rule(
                        Atom(magic_name(lit.atom.pred), bound),
                        (Literal(current_atom),),
                    )
                )
            if lit.negative:
                negatives.append(lit)
                continue
            stage += 1
            available |= lit.atom.variables()
            next_vars = tuple(
                sorted(available & _needed_later(rule, order[step + 1 :]))
            )
            next_atom = Atom(
                f"{sup_name}_{stage}", tuple(Var(v) for v in next_vars)
            )
            magic_rules.append(
                Rule(next_atom, (Literal(current_atom), lit))
            )
            current_atom = next_atom

        final = Rule(rule.head, (Literal(current_atom),) + tuple(negatives))
        target = deferred if _is_deferred(adorned_rule) else modified
        target.append(final)

    seed_args = tuple(
        evaluate_ground(arg)
        for marker, arg in zip(adorned.query_adornment, query.atom.args)
        if marker == "b"
    )
    seed = Atom(magic_name(adorned.query_pred), seed_args)

    return MagicProgram(
        magic_rules=tuple(magic_rules),
        modified_rules=tuple(modified),
        deferred_rules=tuple(deferred),
        seed=seed,
        adorned=adorned,
        answer_pred=adorned.query_pred,
    )
