"""Magic-sets compilation for layered LDL1 programs (paper Section 6)."""

from repro.magic.adornment import (
    AdornedProgram,
    AdornedRule,
    adorn,
    adorned_name,
    atom_adornment,
)
from repro.magic.evaluate import MagicResult, MagicStats, evaluate_magic
from repro.magic.rewrite import MagicProgram, magic_name, magic_rewrite
from repro.magic.sips import (
    HEAD_NODE,
    Sip,
    SipArc,
    bound_first_sip,
    left_to_right_sip,
    validate_sip,
)
from repro.magic.supplementary import supplementary_rewrite

__all__ = [
    "AdornedProgram",
    "AdornedRule",
    "MagicProgram",
    "MagicResult",
    "MagicStats",
    "adorn",
    "adorned_name",
    "atom_adornment",
    "evaluate_magic",
    "HEAD_NODE",
    "Sip",
    "SipArc",
    "bound_first_sip",
    "left_to_right_sip",
    "magic_name",
    "magic_rewrite",
    "supplementary_rewrite",
    "validate_sip",
]
