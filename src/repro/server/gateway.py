"""An HTTP/JSON gateway in front of the TCP server core.

:class:`HttpGateway` exposes the same operations as the line protocol
over plain HTTP/1.1 — stdlib asyncio only, no new dependencies — so
anything that can speak HTTP (curl, a browser, a load balancer's
health check) can talk to a serving session::

    POST /v1/query       {"q": "? ancestor(ann, X).", "strategy": "magic"}
    POST /v1/add_facts   {"pred": "parent", "rows": [[["s","ann"], ["s","bob"]]]}
    POST /v1/remove_facts, /v1/explain, /v1/checkpoint
    GET  /v1/stats, /v1/ping, /

Request bodies are exactly the JSON objects of
:mod:`repro.server.protocol` minus the ``op`` (taken from the path);
responses are the protocol's response objects as JSON bodies.  Success
is 200; a failed operation maps its ``etype`` to a status —
``ProtocolError`` 400, ``TimeoutError`` 504, anything else 500 — with
the protocol error object as the body either way.

The gateway owns **no** session state: every request funnels through
the shared :meth:`LDLServer.handle_request`, so HTTP traffic takes the
same read-write lock, answer cache, metrics, and in-flight drain
accounting as line-protocol traffic, and the two can serve one session
simultaneously.

Admission control and backpressure:

* ``max_connections`` — a connection over the limit is answered with
  one ``503`` and closed before any request is read;
* ``max_inflight`` — a request that would push the gateway's dispatched
  requests over the limit is answered ``503 Retry-After: 1`` *without*
  touching the core (the connection survives; a well-behaved client
  backs off);
* ``max_body_bytes`` — a declared body over the limit is answered
  ``413`` and the connection closed (the body is never read);
* responses are written through ``await writer.drain()``, so a slow
  reader stalls only its own connection, bounded by the transport's
  write buffer, instead of buffering unboundedly in the process.

Rejections are counted per reason in the shared
:class:`~repro.observe.ServerMetrics` (``rejections`` in ``stats``).
"""

from __future__ import annotations

import asyncio
import json
from typing import TYPE_CHECKING

from repro.server import protocol

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.server.server import LDLServer

#: ops reachable with GET (no body, read-only, cheap)
GET_OPS = frozenset({"stats", "ping"})

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _status_of(response: dict) -> int:
    """The HTTP status a protocol response maps to."""
    if response.get("ok"):
        return 200
    etype = response.get("etype", "")
    if etype == "ProtocolError":
        return 400
    if etype == "TimeoutError":
        return 504
    return 500


def _encode_http(
    status: int, payload: dict, extra_headers: tuple[str, ...] = (), close: bool = False
) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        *extra_headers,
    ]
    if close:
        lines.append("Connection: close")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def _error_payload(message: str, etype: str = "ProtocolError") -> dict:
    return {"ok": False, "error": message, "etype": etype}


class HttpGateway:
    """Serve :class:`LDLServer` operations over HTTP/1.1."""

    def __init__(
        self,
        core: "LDLServer",
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 128,
        max_inflight: int = 64,
        max_body_bytes: int | None = None,
    ) -> None:
        self.core = core
        self.host = host
        self.port = port
        self.max_connections = max_connections
        self.max_inflight = max_inflight
        self.max_body_bytes = (
            core.max_request_bytes if max_body_bytes is None else max_body_bytes
        )
        self._connections = 0
        self._inflight = 0
        self._server: asyncio.base_events.Server | None = None
        self._writers: set[asyncio.StreamWriter] = set()
        self._stopping = False

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "HttpGateway":
        """Bind and start accepting; resolves the ephemeral port."""
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=max(self.max_body_bytes, 1 << 16),
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self) -> None:
        """Stop accepting and close the remaining connections.

        In-flight requests already dispatched to the core are covered
        by the core's own drain accounting
        (:meth:`LDLServer.track_request`); idle keep-alive connections
        are simply closed.
        """
        self._stopping = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        for writer in list(self._writers):
            writer.close()

    # -- connection handling -----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._connections >= self.max_connections:
            self.core.metrics.record_rejection("connections")
            writer.write(
                _encode_http(
                    503,
                    _error_payload(
                        f"gateway connection limit ({self.max_connections}) "
                        "reached; retry later",
                        etype="ServerError",
                    ),
                    extra_headers=("Retry-After: 1",),
                    close=True,
                )
            )
            try:
                await writer.drain()
            finally:
                writer.close()
            return
        self._connections += 1
        self._writers.add(writer)
        self.core.metrics.connection_opened()
        try:
            while not self._stopping:
                keep_alive = await self._serve_one(reader, writer)
                if not keep_alive:
                    break
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass  # client vanished; nothing left to answer
        finally:
            self._connections -= 1
            self._writers.discard(writer)
            self.core.metrics.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one HTTP request; returns whether to keep the connection."""
        try:
            request_line = await reader.readline()
        except ValueError:
            writer.write(
                _encode_http(
                    431, _error_payload("request line too long"), close=True
                )
            )
            await writer.drain()
            return False
        if not request_line or not request_line.strip():
            return False
        try:
            method, path, _version = request_line.decode("ascii").split(None, 2)
        except (UnicodeDecodeError, ValueError):
            writer.write(
                _encode_http(
                    400, _error_payload("malformed request line"), close=True
                )
            )
            await writer.drain()
            return False

        headers: dict[str, str] = {}
        while True:
            try:
                line = await reader.readline()
            except ValueError:
                writer.write(
                    _encode_http(
                        431, _error_payload("header too long"), close=True
                    )
                )
                await writer.drain()
                return False
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        wants_close = headers.get("connection", "").lower() == "close"

        async def respond(status: int, payload: dict, *extra: str) -> bool:
            close = wants_close or status in (400, 413, 431)
            writer.write(
                _encode_http(status, payload, extra_headers=extra, close=close)
            )
            # backpressure: a slow reader stalls this connection here,
            # bounded by the transport buffer, instead of queueing
            # responses in memory.
            await writer.drain()
            return not close

        op, error = self._route(method, path)
        if error is not None:
            # discard any declared body so a keep-alive connection stays
            # aligned on the next request boundary
            length = headers.get("content-length")
            if length is not None:
                try:
                    nbytes = int(length)
                except ValueError:
                    nbytes = -1
                if 0 <= nbytes <= self.max_body_bytes:
                    await reader.readexactly(nbytes)
                else:
                    status, payload = error
                    writer.write(_encode_http(status, payload, close=True))
                    await writer.drain()
                    return False
            return await respond(*error)

        body = b""
        length = headers.get("content-length")
        if length is not None:
            try:
                nbytes = int(length)
            except ValueError:
                return await respond(
                    400, _error_payload("malformed Content-Length")
                )
            if nbytes > self.max_body_bytes:
                self.core.metrics.record_rejection("body")
                return await respond(
                    413,
                    _error_payload(
                        f"body of {nbytes} bytes exceeds the "
                        f"{self.max_body_bytes}-byte limit"
                    ),
                )
            body = await reader.readexactly(nbytes)
        elif method == "POST":
            return await respond(
                411, _error_payload("POST requires Content-Length")
            )

        if op is None:  # GET /: describe the API
            return await respond(
                200,
                {
                    "ok": True,
                    "ops": sorted(protocol.OPS),
                    "get": sorted(GET_OPS),
                },
            )

        if body:
            try:
                request = json.loads(body)
            except ValueError as exc:
                return await respond(
                    400, _error_payload(f"body is not valid JSON: {exc}")
                )
            if not isinstance(request, dict):
                return await respond(
                    400, _error_payload("body must be a JSON object")
                )
        else:
            request = {}
        request["op"] = op

        # admission control: refuse before dispatching, so an already
        # saturated core never grows an unbounded internal queue.
        if self._inflight >= self.max_inflight:
            self.core.metrics.record_rejection("admission")
            return await respond(
                503,
                _error_payload(
                    f"gateway at its in-flight limit ({self.max_inflight}); "
                    "retry later",
                    etype="ServerError",
                ),
                "Retry-After: 1",
            )

        self._inflight += 1
        try:
            with self.core.track_request():
                response = await self.core.handle_request(request)
                return await respond(_status_of(response), response)
        finally:
            self._inflight -= 1

    @staticmethod
    def _route(
        method: str, path: str
    ) -> tuple[str | None, tuple[int, dict] | None]:
        """Map method+path to an op; ``(None, None)`` is the index."""
        path = path.split("?", 1)[0]
        if path in ("/", ""):
            if method != "GET":
                return None, (405, _error_payload("use GET for /"))
            return None, None
        if not path.startswith("/v1/"):
            return None, (404, _error_payload(f"unknown path {path!r}"))
        op = path[len("/v1/") :]
        if op not in protocol.OPS:
            return None, (
                404,
                _error_payload(
                    f"unknown op {op!r} (expected one of {protocol.OPS})"
                ),
            )
        if method == "GET":
            if op not in GET_OPS:
                return None, (
                    405,
                    _error_payload(f"{op} requires POST"),
                )
            return op, None
        if method != "POST":
            return None, (405, _error_payload(f"unsupported method {method}"))
        return op, None


__all__ = ["HttpGateway", "GET_OPS"]
