"""The serving tier's subsumption-aware answer cache.

One :class:`AnswerCache` sits between :class:`repro.server.LDLServer`
and its session and memoizes query answers across clients:

* **Keying.**  A query is canonicalized to ``(pred, adornment, bound
  arguments)``: every ground argument is evaluated to its U-value and
  recorded with its position, every non-ground argument is *relaxed* to
  a fresh, distinct variable.  ``? p(f(X), a)`` and ``? p(Y, a)`` thus
  share one entry — the cache stores full ground argument **rows** for
  the relaxed pattern and re-derives each caller's bindings by matching
  the caller's own atom against the rows (repeated variables, compound
  patterns, and arithmetic in ground positions all fall out of
  :func:`repro.engine.match.match_atom`).

* **Subsumption.**  A miss on the exact key scans the predicate's other
  entries for a *broader* one — same predicate, bound positions a
  subset of ours with equal values.  Its rows are a superset of the
  answer set, so filtering them through the query pattern serves the
  query without touching the engine (counted as ``hit-subsumed``).

* **Population.**  Misses with at least one bound argument on an IDB
  predicate are computed *on demand* through the §6 magic-set pipeline
  (:func:`repro.magic.evaluate.on_demand_rows` via
  :meth:`repro.api.LDL.on_demand_rows`), so a bound query on a large
  database never materializes the full model.  Free queries and EDB
  predicates read the session's (already materialized or memoized)
  model directly; any magic-side failure falls back to the model too.

* **Invalidation.**  Writes invalidate *precisely*: the session's
  delta listeners deliver an :class:`repro.engine.maintain.Invalidation`
  naming the predicates whose extensions (may have) changed, and an
  entry is dropped only when its **support set** — the query predicate
  plus everything it transitively depends on in the rule dependency
  graph — intersects them.  Entries and invalidations both carry WAL
  LSNs when the session is durable, so an entry filled at or after the
  mutation that triggered an invalidation survives it.  A wholesale
  event (``preds=None``, e.g. rules changed) clears everything.

The cache is thread-safe (one internal mutex) but relies on its caller
for read/write ordering: the server fills entries while holding the
read side of its lock and invalidates under the write side, so a fill
can never interleave with the mutation it would go stale against.

``REPRO_ANSWER_CACHE=off`` (or ``0``/``false``/``no``) disables the
cache process-wide — the differential-testing leg CI runs for the
server suite.
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable

import networkx as nx

from repro.engine.match import match_atom
from repro.errors import EvaluationError, NotInUniverseError
from repro.program.dependency import dependency_graph
from repro.program.rule import Atom, Query
from repro.terms.term import Term, Var, evaluate_ground

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api import LDL
    from repro.engine.maintain import Invalidation

#: A cache key: predicate, b/f adornment, ((position, value), ...).
Key = tuple[str, str, tuple[tuple[int, Term], ...]]


def cache_enabled(default: bool = True) -> bool:
    """Whether ``REPRO_ANSWER_CACHE`` allows answer caching."""
    value = os.environ.get("REPRO_ANSWER_CACHE", "").strip().lower()
    if value in ("off", "0", "false", "no"):
        return False
    if value in ("on", "1", "true", "yes"):
        return True
    return default


class _Entry:
    """Rows for one relaxed pattern, stamped with their fill LSN."""

    __slots__ = ("key", "rows", "lsn")

    def __init__(
        self, key: Key, rows: tuple[tuple[Term, ...], ...], lsn: int | None
    ) -> None:
        self.key = key
        self.rows = rows
        self.lsn = lsn


def _bindings(
    pattern: Atom, rows: Iterable[tuple[Term, ...]]
) -> list[dict]:
    """Sorted distinct bindings of ``pattern`` over ``rows``.

    Mirrors :func:`repro.engine.evaluator.answer_query` exactly, so a
    cached answer is indistinguishable from an engine answer.
    """
    answers: list[dict] = []
    seen: set[frozenset] = set()
    for args in rows:
        for binding in match_atom(pattern, args, {}):
            key = frozenset(binding.items())
            if key not in seen:
                seen.add(key)
                answers.append(binding)
    answers.sort(
        key=lambda b: tuple(
            (name, value.sort_key()) for name, value in sorted(b.items())
        )
    )
    return answers


class AnswerCache:
    """An LRU answer cache with subsumption and LSN invalidation."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity
        self._mutex = threading.Lock()
        self._entries: OrderedDict[Key, _Entry] = OrderedDict()
        self._session: "LDL | None" = None
        # support-set memo, rebuilt whenever the program object changes
        self._support: dict[str, frozenset[str]] = {}
        self._graph = None
        self._graph_program = None
        self.hits = 0
        self.misses = 0
        self.subsumed = 0
        self.invalidation_events = 0
        self.entries_invalidated = 0

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    # -- wiring ------------------------------------------------------------

    def bind_session(self, session: "LDL", register: bool = True) -> "AnswerCache":
        """Attach the session answering misses; optionally self-register
        :meth:`apply_invalidation` as its delta listener (the server
        registers a metrics-counting wrapper instead)."""
        self._session = session
        if register:
            add = getattr(session, "add_delta_listener", None)
            if add is not None:
                add(self.apply_invalidation)
        return self

    # -- answering ---------------------------------------------------------

    def answers(self, query: Query) -> tuple[list[dict], str]:
        """Answer ``query``; returns ``(bindings, how)`` where ``how``
        is ``"hit"``, ``"hit-subsumed"``, ``"miss"``, or
        ``"unsatisfiable"`` (a ground argument fell outside U)."""
        try:
            key, pattern, relaxed = self._analyze(query)
        except (NotInUniverseError, EvaluationError):
            return [], "unsatisfiable"
        with self._mutex:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return _bindings(pattern, entry.rows), "hit"
            donor = self._subsuming_entry(key)
            if donor is not None:
                self._entries.move_to_end(donor.key)
                self.hits += 1
                self.subsumed += 1
                return _bindings(pattern, donor.rows), "hit-subsumed"
        # miss: evaluate outside the mutex (possibly slow), then insert.
        rows, lsn = self._load(key, relaxed)
        with self._mutex:
            self.misses += 1
            if key not in self._entries:
                self._entries[key] = _Entry(key, rows, lsn)
                while len(self._entries) > self.capacity:
                    self._entries.popitem(last=False)
        return _bindings(pattern, rows), "miss"

    def _subsuming_entry(self, key: Key) -> _Entry | None:
        """A broader entry able to answer ``key`` by filtering, if any.

        Broader means: same predicate, and every bound position of the
        candidate is bound in ``key`` to the same value — its rows are
        then a superset of the rows ``key`` would store.
        """
        pred, _, bound = key
        values = dict(bound)
        for other in reversed(self._entries):  # most recently used first
            if other[0] != pred or other == key:
                continue
            if all(values.get(i) == t for i, t in other[2]):
                return self._entries[other]
        return None

    @staticmethod
    def _analyze(query: Query) -> tuple[Key, Atom, Query]:
        """Key, match pattern, and relaxed load query for ``query``.

        Ground arguments are evaluated to U-values (raising when one
        falls outside U — the query then has no answers); non-ground
        arguments relax to fresh distinct variables in the load query
        while the match pattern keeps them (preserving repeated
        variables and compound shapes for filtering).
        """
        atom = query.atom
        bound: list[tuple[int, Term]] = []
        adornment: list[str] = []
        pattern_args: list[Term] = []
        relaxed_args: list[Term] = []
        for i, arg in enumerate(atom.args):
            if arg.is_ground():
                value = evaluate_ground(arg)
                bound.append((i, value))
                adornment.append("b")
                pattern_args.append(value)
                relaxed_args.append(value)
            else:
                adornment.append("f")
                pattern_args.append(arg)
                relaxed_args.append(Var(f"_Ans{i}"))
        key: Key = (atom.pred, "".join(adornment), tuple(bound))
        return (
            key,
            Atom(atom.pred, tuple(pattern_args)),
            Query(Atom(atom.pred, tuple(relaxed_args))),
        )

    def _load(
        self, key: Key, relaxed: Query
    ) -> tuple[tuple[tuple[Term, ...], ...], int | None]:
        """Rows for the relaxed pattern plus the LSN they reflect."""
        session = self._session
        if session is None:
            raise EvaluationError("AnswerCache.answers needs a bound session")
        lsn = self._current_lsn(session)
        pred, adornment, _ = key
        if "b" in adornment and pred in session.program.idb_predicates():
            try:
                return tuple(session.on_demand_rows(relaxed)), lsn
            except Exception:  # noqa: BLE001 - model fallback is always valid
                pass
        return self._rows_from_model(session, relaxed), lsn

    @staticmethod
    def _rows_from_model(
        session: "LDL", relaxed: Query
    ) -> tuple[tuple[Term, ...], ...]:
        """Matching rows straight off the session's materialized model."""
        from repro.engine.evaluator import _query_tuples

        db = session.model().database
        rows = {tuple(args) for args in _query_tuples(db, relaxed)}
        return tuple(
            sorted(rows, key=lambda r: tuple(t.sort_key() for t in r))
        )

    @staticmethod
    def _current_lsn(session: "LDL") -> int | None:
        store = getattr(session, "store", None)
        if store is not None:
            return store.model.maintenance.last_lsn
        return None

    # -- invalidation ------------------------------------------------------

    def apply_invalidation(self, event: "Invalidation") -> int:
        """Drop entries the update behind ``event`` may have staled.

        Returns how many entries were dropped.  An entry survives when
        its support set misses the changed predicates, or when its LSN
        shows it was filled at or after the invalidating mutation.
        """
        with self._mutex:
            self.invalidation_events += 1
            if event.preds is None:  # wholesale: rules changed
                dropped = len(self._entries)
                self._entries.clear()
                self._support.clear()
                self._graph = None
                self._graph_program = None
                self.entries_invalidated += dropped
                return dropped
            changed = frozenset(event.preds)
            if not changed:
                return 0
            victims = [
                key
                for key, entry in self._entries.items()
                if not (
                    event.lsn is not None
                    and entry.lsn is not None
                    and entry.lsn >= event.lsn
                )
                and self._support_of(key[0]) & changed
            ]
            for key in victims:
                del self._entries[key]
            self.entries_invalidated += len(victims)
            return len(victims)

    def _support_of(self, pred: str) -> frozenset[str]:
        """``pred`` plus everything it transitively depends on."""
        program = self._session.program if self._session is not None else None
        if program is not self._graph_program:
            self._graph_program = program
            self._support.clear()
            self._graph = (
                dependency_graph(program) if program is not None else None
            )
        support = self._support.get(pred)
        if support is None:
            if self._graph is None or pred not in self._graph:
                support = frozenset((pred,))
            else:
                # dependency edges run head -> body, so descendants are
                # the predicates pred's derivations can read.
                support = frozenset(nx.descendants(self._graph, pred)) | {pred}
            self._support[pred] = support
        return support

    def clear(self) -> int:
        """Drop everything (counted as one wholesale invalidation)."""
        from repro.engine.maintain import Invalidation

        return self.apply_invalidation(Invalidation(preds=None, precise=False))

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """JSON-friendly counters for the ``stats`` op and benchmarks."""
        with self._mutex:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "subsumed": self.subsumed,
                "hit_rate": self.hits / lookups if lookups else 0.0,
                "invalidation_events": self.invalidation_events,
                "entries_invalidated": self.entries_invalidated,
            }

    def __repr__(self) -> str:
        return (
            f"AnswerCache({len(self)} entries, {self.hits} hits, "
            f"{self.misses} misses)"
        )


__all__ = ["AnswerCache", "cache_enabled"]
