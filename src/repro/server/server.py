"""The asyncio TCP server over one shared LDL session.

One :class:`LDLServer` wraps one :class:`repro.api.LDL` session and
serves the newline-delimited JSON protocol of
:mod:`repro.server.protocol`.  Concurrency discipline:

* every request runs the (blocking) session call in the event loop's
  default executor, so slow evaluations never stall the accept loop;
* reads (``query``, ``explain``, ``stats``) hold the shared side of a
  :class:`~repro.server.rwlock.ReadWriteLock` and overlap freely;
* writes (``add_facts``, ``remove_facts``, ``checkpoint``) hold the
  exclusive side, serializing against the incremental model — a reader
  therefore always observes a model some prefix of the update stream
  produced, never a half-applied batch;
* each request is bounded by ``request_timeout`` seconds and
  ``max_request_bytes`` on the wire; violations produce an error
  response (and, for oversized lines, a closed connection).  For a
  *write* the budget covers waiting for the write lock only: once the
  blocking mutation has been handed to an executor thread it cannot be
  cancelled, so the lock is held until the thread actually finishes and
  the response reports the true outcome — a late write is a slow
  success, never a "timed out but maybe applied" lie, and no reader can
  observe the half-applied batch a cancelled-but-still-running mutation
  would otherwise expose;
* SIGTERM/SIGINT trigger graceful shutdown: stop accepting, drain
  in-flight requests (tracked from first byte dispatched to last byte
  drained), and checkpoint a durable session so the next start restores
  from the snapshot instead of replaying the WAL.

Request failures are *responses*, not connection teardowns: a parse
error in one query leaves the connection serving the next.

Queries are served through the session's :class:`AnswerCache` when one
is attached (the default; disable with ``REPRO_ANSWER_CACHE=off`` or
``cache=None``): hot queries hit cached answer rows, misses populate
the cache via on-demand magic evaluation, and every write invalidates
exactly the entries whose support intersects the predicates the
update's :class:`~repro.engine.maintain.DeltaBatch` actually changed.
"""

from __future__ import annotations

import asyncio
import signal
import time
from contextlib import contextmanager
from functools import partial

from repro.api import LDL
from repro.errors import ProtocolError
from repro.observe import ServerMetrics
from repro.server import protocol
from repro.server.cache import AnswerCache, cache_enabled
from repro.server.rwlock import ReadWriteLock

#: Ops that only read the model (shared lock) vs. mutate it (exclusive).
READ_OPS = frozenset({"query", "explain", "stats", "ping"})
WRITE_OPS = frozenset({"add_facts", "remove_facts", "checkpoint"})


class LDLServer:
    """Serve one LDL session to many concurrent TCP clients."""

    def __init__(
        self,
        session: LDL,
        host: str = "127.0.0.1",
        port: int = protocol.DEFAULT_PORT,
        request_timeout: float = 30.0,
        max_request_bytes: int = protocol.MAX_REQUEST_BYTES,
        metrics: ServerMetrics | None = None,
        shutdown_grace: float = 5.0,
        cache: AnswerCache | None | str = "auto",
    ) -> None:
        self.session = session
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.max_request_bytes = max_request_bytes
        self.metrics = metrics if metrics is not None else ServerMetrics()
        self.shutdown_grace = shutdown_grace
        if cache == "auto":
            cache = AnswerCache() if cache_enabled() else None
        self.cache = cache
        if self.cache is not None:
            self.cache.bind_session(session, register=False)
            session.add_delta_listener(self._on_invalidation)
        self._lock = ReadWriteLock()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop = asyncio.Event()
        self._writers: set[asyncio.StreamWriter] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._active_requests = 0

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "LDLServer":
        """Bind and start accepting; resolves the ephemeral port."""
        self._loop = asyncio.get_running_loop()
        self._server = await asyncio.start_server(
            self._serve_connection,
            self.host,
            self.port,
            limit=self.max_request_bytes,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    def request_stop(self) -> None:
        """Ask :meth:`serve` to shut down (signal- and thread-safe)."""
        try:
            running = asyncio.get_running_loop()
        except RuntimeError:
            running = None
        if self._loop is not None and running is not self._loop:
            self._loop.call_soon_threadsafe(self._stop.set)
        else:
            self._stop.set()

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self.request_stop)
            except NotImplementedError:  # pragma: no cover - non-POSIX
                pass

    async def serve(self, handle_signals: bool = True) -> None:
        """Run until :meth:`request_stop`, then shut down gracefully."""
        if self._server is None:
            await self.start()
        if handle_signals:
            self.install_signal_handlers()
        await self._stop.wait()
        await self.shutdown()

    async def shutdown(self, checkpoint: bool = True) -> None:
        """Stop accepting, drain in-flight work, checkpoint if durable."""
        if self._server is not None:
            self._server.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.shutdown_grace
        while self._active_requests and loop.time() < deadline:
            await asyncio.sleep(0.01)
        for writer in list(self._writers):
            writer.close()
        if self._server is not None:
            await self._server.wait_closed()
            self._server = None
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if checkpoint and self.session.store is not None:
            async with self._lock.write():
                await loop.run_in_executor(None, self.session.checkpoint)

    # -- connection handling -----------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        self.metrics.connection_opened()
        try:
            while not self._stop.is_set():
                try:
                    line = await reader.readline()
                except ValueError:
                    # line exceeded max_request_bytes: report and hang up
                    # (the rest of the oversized line is unrecoverable).
                    oversize = ProtocolError(
                        f"request exceeds {self.max_request_bytes} bytes"
                    )
                    writer.write(
                        protocol.encode_message(
                            protocol.error_response(None, oversize)
                        )
                    )
                    await writer.drain()
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                # the request counts as in flight until its response is
                # drained, so graceful shutdown never closes a writer
                # between computing an answer and delivering it.
                with self.track_request():
                    response = await self._handle_line(line)
                    writer.write(protocol.encode_message(response))
                    await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-conversation; nothing to answer
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            self.metrics.connection_closed()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    @contextmanager
    def track_request(self):
        """Count one request as in flight for graceful-drain purposes.

        Callers (the line protocol and the HTTP gateway) hold this from
        dispatch until the response bytes are drained to the socket.
        """
        self._active_requests += 1
        try:
            yield
        finally:
            self._active_requests -= 1

    async def _handle_line(self, line: bytes) -> dict:
        try:
            request = protocol.decode_request(line)
        except ProtocolError as exc:
            return protocol.error_response(None, exc)
        return await self.handle_request(request)

    async def handle_request(self, request: dict) -> dict:
        """Dispatch one decoded request; shared by every transport."""
        op = request["op"]
        self.metrics.request_started(op)
        start = time.perf_counter()
        try:
            response = await self._dispatch(op, request)
        except asyncio.TimeoutError:
            response = protocol.error_response(
                request,
                TimeoutError(
                    f"{op} exceeded the {self.request_timeout}s request timeout"
                ),
            )
        except Exception as exc:  # noqa: BLE001 - becomes the error response
            response = protocol.error_response(request, exc)
        self.metrics.request_finished(
            op, time.perf_counter() - start, ok=response.get("ok", False)
        )
        return response

    async def _dispatch(self, op: str, request: dict) -> dict:
        if op in WRITE_OPS:
            return await self._dispatch_write(op, request)
        # reads are side-effect free: cancelling one mid-executor merely
        # abandons a thread whose result is discarded, so the whole
        # read — lock wait included — runs under the request budget.
        return await asyncio.wait_for(
            self._dispatch_read(op, request), self.request_timeout
        )

    async def _dispatch_read(self, op: str, request: dict) -> dict:
        async with self._lock.read():
            return await self._run_op(op, request)

    async def _dispatch_write(self, op: str, request: dict) -> dict:
        """Run a mutation with torn-state-free timeout semantics.

        The request budget bounds *waiting for the write lock*.  Once
        the blocking session call is handed to an executor thread,
        cancellation cannot stop it — the thread would keep mutating
        after the lock was released, and readers could observe a
        half-applied batch while the client was told the write timed
        out.  So past that point the lock is simply held until the
        mutation finishes, and the response reports what actually
        happened (see the regression tests in tests/test_server.py).
        """
        try:
            await asyncio.wait_for(
                self._lock.acquire_write(), self.request_timeout
            )
        except asyncio.TimeoutError:
            raise TimeoutError(
                f"{op} waited longer than the {self.request_timeout}s "
                "request timeout for the write lock; nothing was applied"
            ) from None
        mutation = asyncio.ensure_future(self._run_op(op, request))
        try:
            return await asyncio.shield(mutation)
        except asyncio.CancelledError:
            # this request's coroutine was cancelled (connection
            # teardown): the mutation is already running and must still
            # complete before the lock can be released.
            mutation.add_done_callback(
                lambda t: t.cancelled() or t.exception()
            )
            if not mutation.done():
                await asyncio.wait([mutation])
            raise
        finally:
            await self._lock.release_write()

    async def _run_op(self, op: str, request: dict) -> dict:
        loop = asyncio.get_running_loop()

        def run(func, *args):
            fut = loop.run_in_executor(None, partial(func, *args))

            async def wait():
                try:
                    return await fut
                except asyncio.CancelledError:
                    # a timed-out read abandons its executor thread;
                    # consume the eventual result so its exception is
                    # never logged as unretrieved.
                    fut.add_done_callback(lambda f: f.exception())
                    raise

            return wait()

        if op == "ping":
            return protocol.ok_response(request, pong=True)
        if op == "query":
            text = request.get("q")
            if not isinstance(text, str):
                raise ProtocolError("query needs a 'q' string")
            strategy = request.get("strategy", "seminaive")
            use_cache = bool(request.get("cache", True))
            bindings, served_by = await run(
                self._query_terms, text, strategy, use_cache
            )
            return protocol.ok_response(
                request,
                answers=[protocol.encode_binding(b) for b in bindings],
                count=len(bindings),
                cache=served_by,
            )
        if op == "explain":
            fact = request.get("fact")
            if not isinstance(fact, str):
                raise ProtocolError("explain needs a 'fact' string")
            derivation = await run(partial(self.session.explain, fact))
            return protocol.ok_response(
                request,
                derivation=None if derivation is None else derivation.format(),
            )
        if op == "stats":
            return protocol.ok_response(request, stats=await run(self._stats))
        if op == "add_facts":
            atoms = protocol.atoms_of_request(request)
            await run(partial(self.session.add_atoms, atoms))
            return protocol.ok_response(request, count=len(atoms))
        if op == "remove_facts":
            atoms = protocol.atoms_of_request(request)
            await run(partial(self.session.remove_atoms, atoms))
            return protocol.ok_response(request, count=len(atoms))
        if op == "checkpoint":
            nbytes = await run(self.session.checkpoint)
            return protocol.ok_response(request, bytes=nbytes)
        raise ProtocolError(f"unknown op {op!r}")  # unreachable after decode

    # -- blocking helpers (run in executor threads) ------------------------

    def _on_invalidation(self, invalidation) -> None:
        """Session delta listener: invalidate the cache, count it."""
        dropped = self.cache.apply_invalidation(invalidation)
        self.metrics.record_cache("invalidation_events")
        if dropped:
            self.metrics.record_cache("invalidated", dropped)

    def _query_terms(
        self, text: str, strategy: str, use_cache: bool = True
    ) -> tuple[list[dict], str]:
        """Answer a query as term-valued bindings (wire-encodable).

        Returns ``(bindings, how)`` where ``how`` reports the cache
        outcome (``hit``/``hit-subsumed``/``miss``/``unsatisfiable``)
        or ``"off"`` when the cache was absent or bypassed — cached or
        not, the bindings are identical (property-tested).
        """
        from repro.parser.parser import parse_query

        query = parse_query(text)
        if self.cache is not None and use_cache:
            bindings, served = self.cache.answers(query)
            self.metrics.record_cache(served)
            return bindings, served
        if strategy == "magic":
            return self.session.query_magic(query).answers(), "off"
        return self.session.model(strategy).answers(query), "off"

    def _stats(self) -> dict:
        session = self.session
        store = session.store
        out = {
            "server": self.metrics.report(),
            "answer_cache": None if self.cache is None else self.cache.report(),
            "session": {
                "rules": len(session.program),
                "edb_facts": session.edb_size,
                "model_facts": len(session.database()),
                "durable": store is not None,
            },
        }
        if store is not None:
            out["session"]["store"] = {
                "path": store.path,
                "restore_mode": store.stats.restore_mode,
                "wal_records_replayed": store.stats.wal_records_replayed,
                "compactions": store.stats.compactions,
            }
            out["session"]["maintenance"] = store.model.maintenance.report()
        return out


async def _serve_session(session: LDL, **kwargs) -> LDLServer:
    server = LDLServer(session, **kwargs)
    await server.start()
    await server.serve()
    return server


def serve(
    session: LDL,
    host: str = "127.0.0.1",
    port: int = protocol.DEFAULT_PORT,
    **kwargs,
) -> None:
    """Blocking convenience entry point: serve until SIGTERM/SIGINT."""
    asyncio.run(_serve_session(session, host=host, port=port, **kwargs))
