"""The wire protocol: newline-delimited JSON over TCP.

Every message — request or response — is one JSON object on one line,
UTF-8, terminated by ``\\n``.  Term and atom payloads reuse the
versioned tagged-tree codec that the durable store persists with
(:mod:`repro.storage.codec`), so a value round-trips bit-identically
through the wire, the WAL, and the snapshot.

Requests carry an ``op`` plus op-specific fields, and an optional
``id`` the server echoes back (clients pipeline by matching ids)::

    {"op": "query",        "q": "? anc(ann, X).", "strategy": "seminaive"}
    {"op": "add_facts",    "pred": "parent", "rows": [[["s","ann"], ["s","bob"]]]}
    {"op": "remove_facts", "facts": [["parent", [["s","ann"], ["s","bob"]]]]}
    {"op": "explain",      "fact": "anc(ann, bob)"}
    {"op": "checkpoint"}
    {"op": "stats"}
    {"op": "ping"}

Responses are ``{"ok": true, ...payload}`` on success and
``{"ok": false, "error": message, "etype": exception class name}`` on
failure; the connection survives request-level failures.  Query answers
are ``[{variable: tagged-term}]`` — decode with
:func:`decode_binding`.

``add_facts``/``remove_facts`` accept either ``pred`` + ``rows`` (rows
of tagged terms for one predicate) or ``facts`` (full tagged atoms,
mixed predicates).

``query`` additionally accepts ``"cache": false`` to bypass the
server's answer cache for that one request; query responses carry a
``cache`` field reporting how they were served (``hit``,
``hit-subsumed``, ``miss``, ``unsatisfiable``, or ``off``).  The same
requests travel verbatim as JSON bodies of the HTTP gateway
(:mod:`repro.server.gateway`).
"""

from __future__ import annotations

import json

from repro.errors import ProtocolError, StorageError
from repro.program.rule import Atom
from repro.storage.codec import decode_atom, decode_term, encode_term

#: Default TCP port (`ldl1` has no IANA registration; this is arbitrary
#: but stable so docs, tests, and deployments agree).
DEFAULT_PORT = 8737

#: Default per-line request ceiling.  A request larger than this is
#: rejected and the connection closed: a reasonable client never sends
#: it, and an unbounded line is a memory-exhaustion vector.
MAX_REQUEST_BYTES = 1 << 20

#: Operations the server dispatches; anything else is a protocol error.
OPS = (
    "query",
    "add_facts",
    "remove_facts",
    "explain",
    "checkpoint",
    "stats",
    "ping",
)


def encode_message(payload: dict) -> bytes:
    """One message as a JSON line (newline included)."""
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def decode_message(line: bytes) -> dict:
    """Parse one received line; raises :class:`ProtocolError`."""
    try:
        obj = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(obj).__name__}"
        )
    return obj


def decode_request(line: bytes) -> dict:
    """Parse and validate one request line (shape only, not payloads)."""
    obj = decode_message(line)
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r} (expected one of {OPS})")
    return obj


def atoms_of_request(request: dict) -> list[Atom]:
    """The ground atoms an ``add_facts``/``remove_facts`` request names."""
    try:
        if "facts" in request:
            facts = request["facts"]
            if not isinstance(facts, list):
                raise ProtocolError("'facts' must be a list of tagged atoms")
            return [decode_atom(f) for f in facts]
        if "pred" in request:
            pred, rows = request["pred"], request.get("rows", [])
            if not isinstance(pred, str):
                raise ProtocolError("'pred' must be a predicate name")
            if not isinstance(rows, list):
                raise ProtocolError("'rows' must be a list of term rows")
            return [
                Atom(pred, tuple(decode_term(t) for t in row)) for row in rows
            ]
    except StorageError as exc:  # codec-level malformation
        raise ProtocolError(str(exc)) from exc
    raise ProtocolError(f"{request.get('op')} needs 'facts' or 'pred'+'rows'")


def encode_binding(binding: dict) -> dict:
    """One query answer ``{variable: term}`` as tagged trees."""
    return {name: encode_term(term) for name, term in binding.items()}


def decode_binding(payload: dict) -> dict:
    """Inverse of :func:`encode_binding`, back to term objects."""
    try:
        return {name: decode_term(obj) for name, obj in payload.items()}
    except StorageError as exc:
        raise ProtocolError(str(exc)) from exc


def ok_response(request: dict, **payload) -> dict:
    out = {"ok": True, **payload}
    if "id" in request:
        out["id"] = request["id"]
    return out


def error_response(request: dict | None, exc: BaseException) -> dict:
    out = {"ok": False, "error": str(exc), "etype": type(exc).__name__}
    if request and "id" in request:
        out["id"] = request["id"]
    return out
