"""An asyncio reader-writer lock (writer-preferring).

Queries against a consistent model can safely overlap, but an update
must see no readers mid-flight and no reader may observe a half-applied
update.  The classic answer is a reader-writer lock: any number of
readers *or* one writer.  Writers are preferred — once a writer is
waiting, new readers queue behind it — so a steady stream of queries
cannot starve updates (U-Datalog treats updates as first-class; so do
we).

This lock is purely cooperative (single event loop, no threads): the
server acquires it on the loop and performs the guarded blocking work
in executor threads while holding it.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager


class ReadWriteLock:
    """Any number of concurrent readers, or exactly one writer."""

    def __init__(self) -> None:
        self._cond = asyncio.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0

    # -- introspection (for tests and the stats op) ------------------------

    @property
    def readers(self) -> int:
        """Readers currently holding the lock."""
        return self._readers

    @property
    def writer_active(self) -> bool:
        return self._writer_active

    # -- acquisition -------------------------------------------------------

    async def acquire_read(self) -> None:
        async with self._cond:
            while self._writer_active or self._writers_waiting:
                await self._cond.wait()
            self._readers += 1

    async def release_read(self) -> None:
        async with self._cond:
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    async def acquire_write(self) -> None:
        async with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    await self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True

    async def release_write(self) -> None:
        async with self._cond:
            self._writer_active = False
            self._cond.notify_all()

    @asynccontextmanager
    async def read(self):
        """``async with lock.read():`` — shared acquisition."""
        await self.acquire_read()
        try:
            yield self
        finally:
            await self.release_read()

    @asynccontextmanager
    async def write(self):
        """``async with lock.write():`` — exclusive acquisition."""
        await self.acquire_write()
        try:
            yield self
        finally:
            await self.release_write()

    def __repr__(self) -> str:
        return (
            f"ReadWriteLock(readers={self._readers}, "
            f"writer={self._writer_active}, "
            f"writers_waiting={self._writers_waiting})"
        )
