"""A small blocking client for the LDL1 server protocol.

Used by the test suite, the load-generator benchmark (E19), and the CI
smoke script; it is also a reasonable starting point for real callers.
One :class:`Client` owns one TCP connection and issues one request at a
time (the protocol itself allows pipelining by ``id``; this client
keeps it simple and synchronous)::

    with Client("127.0.0.1", 8737) as client:
        client.add_facts("parent", [("ann", "bob"), ("bob", "carl")])
        client.query("? ancestor(ann, X).")   # [{'X': 'bob'}, {'X': 'carl'}]

Values cross the wire through the same tagged-tree codec the durable
store uses, so whatever :func:`repro.api.to_term` accepts round-trips.
"""

from __future__ import annotations

import socket
from typing import Iterable, Sequence

from repro.api import from_term, to_term
from repro.errors import ProtocolError, ServerError
from repro.program.rule import Atom
from repro.server import protocol
from repro.storage.codec import encode_atom, encode_term


class Client:
    """A blocking connection to an :class:`~repro.server.LDLServer`."""

    def __init__(
        self, host: str = "127.0.0.1", port: int = protocol.DEFAULT_PORT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0
        self._poisoned = False

    # -- plumbing ----------------------------------------------------------

    def _poison(self) -> None:
        """Mark the connection unusable and close it.

        Once a request times out (or a response id mismatches), the
        stream may still carry the late reply — reading on would match
        it against the *next* request.  There is no way to resync a
        one-at-a-time connection, so it is closed and every later call
        fails fast.
        """
        self._poisoned = True
        self.close()

    def call(self, op: str, **payload) -> dict:
        """Issue one request and return the decoded success response.

        Raises :class:`ServerError` when the server reports a failure
        and :class:`ProtocolError` on a malformed exchange.  A socket
        timeout poisons the connection (see :meth:`_poison`) and raises
        :class:`ProtocolError`; open a new client to continue.
        """
        if self._poisoned:
            raise ProtocolError(
                "connection was poisoned by an earlier timeout or "
                "desync; open a new Client"
            )
        self._next_id += 1
        request = {"op": op, "id": self._next_id, **payload}
        try:
            self._file.write(protocol.encode_message(request))
            self._file.flush()
            line = self._file.readline()
        except socket.timeout as exc:
            self._poison()
            raise ProtocolError(
                f"{op} timed out after {self.timeout}s waiting for the "
                "server; connection closed (a late reply cannot be told "
                "apart from the next response)"
            ) from exc
        if not line:
            raise ProtocolError("server closed the connection mid-request")
        response = protocol.decode_message(line)
        # strict id match: an id-less response here means the server
        # answered something other than the request we just sent (e.g.
        # a line it could not parse) — the stream is not trustworthy.
        if response.get("id") != self._next_id:
            self._poison()
            raise ProtocolError(
                f"response id {response.get('id')!r} does not match "
                f"request id {self._next_id}; connection closed"
            )
        if not response.get("ok"):
            raise ServerError(
                response.get("error", "unknown server error"),
                etype=response.get("etype", "ServerError"),
            )
        return response

    # -- operations --------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.call("ping").get("pong"))

    def query(
        self,
        text: str,
        strategy: str | None = None,
        cache: bool | None = None,
    ) -> list[dict]:
        """Answer a query; one dict of Python values per answer.

        ``cache=False`` asks the server to bypass its answer cache for
        this one query (useful for differential testing).
        """
        payload = {"q": text}
        if strategy is not None:
            payload["strategy"] = strategy
        if cache is not None:
            payload["cache"] = cache
        response = self.call("query", **payload)
        return [
            {
                name: from_term(term)
                for name, term in protocol.decode_binding(answer).items()
            }
            for answer in response["answers"]
        ]

    def add_facts(self, pred: str, rows: Iterable[Sequence]) -> int:
        """Insert facts from Python value rows; returns atoms accepted."""
        encoded = [
            [encode_term(to_term(v)) for v in row] for row in rows
        ]
        return self.call("add_facts", pred=pred, rows=encoded)["count"]

    def add_atoms(self, atoms: Iterable[Atom]) -> int:
        """Insert pre-built ground atoms (mixed predicates allowed)."""
        return self.call(
            "add_facts", facts=[encode_atom(a) for a in atoms]
        )["count"]

    def remove_facts(self, pred: str, rows: Iterable[Sequence]) -> int:
        """Delete base facts by Python value rows."""
        encoded = [
            [encode_term(to_term(v)) for v in row] for row in rows
        ]
        return self.call("remove_facts", pred=pred, rows=encoded)["count"]

    def explain(self, fact: str) -> str | None:
        """A formatted derivation tree for a model fact, or None."""
        return self.call("explain", fact=fact)["derivation"]

    def checkpoint(self) -> int:
        """Snapshot the server's durable session; returns bytes written."""
        return self.call("checkpoint")["bytes"]

    def stats(self) -> dict:
        """The server's metrics/session snapshot (the ``stats`` op)."""
        return self.call("stats")["stats"]

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"Client({self.host}:{self.port})"
