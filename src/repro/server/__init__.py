"""Concurrent network serving for LDL1 sessions.

An :class:`LDLServer` exposes one shared :class:`repro.api.LDL` session
over TCP, speaking a newline-delimited JSON protocol (one request
object per line, one response object per line; see
:mod:`repro.server.protocol`).  Concurrent queries proceed in parallel
under a reader lock while updates serialize through the writer side of
a :class:`~repro.server.rwlock.ReadWriteLock`, so every response
reflects a consistent model.  :class:`Client` is the matching blocking
client used by the tests, the benchmarks, and the CLI smoke scripts.

    from repro import LDL
    from repro.server import LDLServer, Client

    server = LDLServer(LDL("anc(X, Y) <- parent(X, Y)."), port=0)
    # ... server.serve() in an asyncio loop / `repro serve` in a shell
    with Client("127.0.0.1", server.port) as client:
        client.add_facts("parent", [("ann", "bob")])
        client.query("? anc(ann, X).")   # [{'X': 'bob'}]

Queries are answered through a subsumption-aware, LSN-invalidated
:class:`AnswerCache` by default (``REPRO_ANSWER_CACHE=off`` disables
it), and :class:`HttpGateway` puts an HTTP/JSON facade — with
connection limits, admission control, and backpressure — in front of
the same server core (``repro serve --http``).
"""

from repro.server.cache import AnswerCache, cache_enabled
from repro.server.client import Client
from repro.server.gateway import HttpGateway
from repro.server.protocol import (
    DEFAULT_PORT,
    MAX_REQUEST_BYTES,
    decode_request,
    encode_message,
)
from repro.server.rwlock import ReadWriteLock
from repro.server.server import LDLServer, serve

__all__ = [
    "AnswerCache",
    "Client",
    "DEFAULT_PORT",
    "HttpGateway",
    "LDLServer",
    "MAX_REQUEST_BYTES",
    "ReadWriteLock",
    "cache_enabled",
    "decode_request",
    "encode_message",
    "serve",
]
