"""Command-line interface: run LDL1 programs from files.

Usage::

    python -m repro program.ldl                 # run file, answer its queries
    python -m repro program.ldl -q '? p(X).'    # ad-hoc query
    python -m repro program.ldl --strategy magic
    python -m repro program.ldl --dump anc      # print a predicate's extension
    python -m repro --check program.ldl         # parse/check/stratify only
    python -m repro serve program.ldl --db DIR  # serve the session over TCP

A program file contains rules, facts, and optional queries in concrete
LDL1 syntax (``%`` comments).  Queries in the file are answered in
order; ``-q`` adds more.

The ``serve`` subcommand starts the concurrent query server
(:mod:`repro.server`): it loads the program (restoring durable state
when ``--db`` is given), prints the bound address, and serves until
SIGTERM/SIGINT, checkpointing a durable session on the way out.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.api import LDL
from repro.errors import LDLError
from repro.parser import parse_query
from repro.program.stratify import stratify
from repro.program.wellformed import check_program
from repro.terms.pretty import format_atom, format_query


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LDL1: logic database language with sets and negation",
    )
    parser.add_argument("file", help="program file (LDL1 concrete syntax)")
    parser.add_argument(
        "-q",
        "--query",
        action="append",
        default=[],
        metavar="QUERY",
        help="ad-hoc query, e.g. '? anc(a, X).' (repeatable)",
    )
    parser.add_argument(
        "-s",
        "--strategy",
        choices=("naive", "seminaive", "magic"),
        default="seminaive",
        help="evaluation strategy (default: seminaive)",
    )
    parser.add_argument(
        "--dump",
        action="append",
        default=[],
        metavar="PRED",
        help="print the full extension of a predicate (repeatable)",
    )
    parser.add_argument(
        "--edb",
        action="append",
        default=[],
        metavar="PRED=FILE",
        help="load base facts for PRED from a CSV/TSV file (repeatable)",
    )
    parser.add_argument(
        "--explain",
        action="append",
        default=[],
        metavar="FACT",
        help="print a derivation tree for a ground fact (repeatable)",
    )
    parser.add_argument(
        "--ldl15",
        action="store_true",
        help="accept LDL1.5 constructs and compile them to base LDL1",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="only parse, well-formedness-check, and show the layering",
    )
    parser.add_argument(
        "--repl",
        action="store_true",
        help="after loading, read queries/rules interactively from stdin",
    )
    parser.add_argument(
        "--db",
        metavar="PATH",
        help="durable database directory: restore state from it on start, "
        "write-ahead-log every fact added through the session",
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "batch", "never"),
        default="always",
        help="WAL durability policy for --db (default: always)",
    )
    parser.add_argument(
        "--magic-plan",
        action="append",
        default=[],
        metavar="QUERY",
        help="print the magic-sets rewrite for a query (repeatable)",
    )
    parser.add_argument(
        "--save",
        action="append",
        default=[],
        metavar="PRED=FILE",
        help="write a computed predicate's extension to CSV/TSV (repeatable)",
    )
    parser.add_argument(
        "--stats",
        action="store_true",
        help="print evaluation statistics",
    )
    parser.add_argument(
        "--vector",
        choices=("on", "off"),
        help="vector-kernel layer (default: on unless REPRO_VECTOR=off)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record engine events and print a per-layer trace summary",
    )
    parser.add_argument(
        "--workers",
        type=int,
        metavar="N",
        help="partitioned-evaluation worker processes "
        "(default: REPRO_WORKERS or 1 — serial)",
    )
    return parser


def _print_answers(query, answers, echo) -> None:
    echo(format_query(query))
    if not answers:
        echo("  no")
        return
    if not query.atom.variables():
        echo("  yes")
        return
    for binding in answers:
        rendered = ", ".join(
            f"{name} = {value!r}" for name, value in sorted(binding.items())
        )
        echo(f"  {rendered}")


def run(argv: list[str] | None = None, out=None, stdin=None) -> int:
    """Entry point; returns a process exit code.

    ``out`` and ``stdin`` allow tests to capture/feed the interaction.
    """
    if out is not None:
        # allow tests to capture output without patching sys.stdout
        def echo(*args):
            print(*args, file=out, flush=True)
    else:
        def echo(*args):
            print(*args, flush=True)

    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        return run_serve(argv[1:], echo)

    args = build_arg_parser().parse_args(argv)
    if args.vector:
        from repro.engine.exec import set_vectorization

        set_vectorization(args.vector)
    if args.workers is not None:
        from repro.engine.shard import set_default_workers

        try:
            set_default_workers(args.workers)
        except ValueError as exc:
            echo(f"error: {exc}")
            return 2
    try:
        source = Path(args.file).read_text()
    except OSError as exc:
        echo(f"error: cannot read {args.file}: {exc}")
        return 2

    session = None
    try:
        session = LDL(
            source,
            ldl15=args.ldl15,
            trace=args.trace,
            path=args.db,
            fsync=args.fsync,
        )
        if args.db:
            stats = session.store.stats
            echo(
                f"% durable store {args.db}: {stats.restore_mode} start, "
                f"{stats.wal_records_replayed} WAL records replayed"
            )
        for spec in args.edb:
            pred, _, filename = spec.partition("=")
            if not filename:
                echo(f"error: --edb expects PRED=FILE, got {spec!r}")
                return 2
            from repro.data import load_delimited

            session.add_atoms(load_delimited(filename, pred))
        program = session.program
        if args.check:
            from repro.program.analyze import analyze

            check_program(program)
            report = analyze(program)
            echo("ok: " + report.format())
            return 0
        for query_text in args.magic_plan:
            from repro.terms.pretty import format_rule

            mp = session.query_magic(parse_query(query_text)).magic_program
            echo(f"% magic plan for {query_text}")
            for rule in mp.magic_rules:
                echo(f"  [magic]    {format_rule(rule)}")
            for rule in mp.modified_rules:
                echo(f"  [modified] {format_rule(rule)}")
            for rule in mp.deferred_rules:
                echo(f"  [deferred] {format_rule(rule)}")
            echo(f"  [seed]     {format_atom(mp.seed)}")

        queries = list(session.pending_queries)
        queries.extend(parse_query(text) for text in args.query)
        for query in queries:
            answers = session.query(query, strategy=args.strategy)
            _print_answers(query, answers, echo)
        for pred in args.dump:
            db = session.database(
                "seminaive" if args.strategy == "magic" else args.strategy
            )
            echo(f"% extension of {pred}:")
            for atom in db.sorted_atoms(pred):
                echo(f"  {format_atom(atom)}.")
        for fact_text in args.explain:
            derivation = session.explain(fact_text)
            if derivation is None:
                echo(f"% {fact_text}: not in the model")
            else:
                echo(derivation.format())
        for spec in args.save:
            pred, _, filename = spec.partition("=")
            if not filename:
                echo(f"error: --save expects PRED=FILE, got {spec!r}")
                return 2
            from repro.data import dump_delimited

            db = session.database(
                "seminaive" if args.strategy == "magic" else args.strategy
            )
            count = dump_delimited(db.sorted_atoms(pred), filename)
            echo(f"% wrote {count} {pred} rows to {filename}")
        if args.repl:
            repl(session, stdin or sys.stdin, echo, strategy=args.strategy)
            return 0
        if (
            not queries
            and not args.dump
            and not args.explain
            and not args.magic_plan
            and not args.save
        ):
            db = session.database(
                "seminaive" if args.strategy == "magic" else args.strategy
            )
            echo(f"% computed model: {len(db)} facts")
            for atom in db.sorted_atoms():
                echo(f"  {format_atom(atom)}.")
        if args.stats and args.strategy != "magic":
            result = session.model(
                "seminaive" if args.strategy == "magic" else args.strategy
            )
            echo(
                f"% stats: {result.total_facts} facts, "
                f"{result.total_iterations} iterations, "
                f"{result.total_firings} rule firings, "
                f"{len(result.layering)} layers"
            )
        if args.trace:
            if args.strategy != "magic":
                # make sure at least one evaluation happened to record
                session.model(args.strategy)
            echo(session.trace.format_summary())
    except LDLError as exc:
        echo(f"error: {exc}")
        return 1
    finally:
        if session is not None:
            if session.store is not None:
                # persist the computed model so the next start restores
                # it from the snapshot instead of re-running the fixpoint
                session.checkpoint()
            session.close()
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    from repro.server.protocol import DEFAULT_PORT, MAX_REQUEST_BYTES

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="serve an LDL1 session over TCP "
        "(newline-delimited JSON protocol)",
    )
    parser.add_argument(
        "file",
        nargs="?",
        help="program file loaded into the served session (optional)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default: 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=DEFAULT_PORT,
        help=f"TCP port; 0 picks an ephemeral port, printed on start "
        f"(default: {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--db",
        metavar="PATH",
        help="durable database directory backing the served session",
    )
    parser.add_argument(
        "--fsync",
        choices=("always", "batch", "never"),
        default="always",
        help="WAL durability policy for --db (default: always)",
    )
    parser.add_argument(
        "--ldl15",
        action="store_true",
        help="accept LDL1.5 constructs in the program file",
    )
    parser.add_argument(
        "--request-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-request processing budget (default: 30)",
    )
    parser.add_argument(
        "--http",
        type=int,
        nargs="?",
        const=0,
        default=None,
        metavar="PORT",
        help="also serve an HTTP/JSON gateway on PORT (no PORT picks "
        "an ephemeral one, printed on start)",
    )
    parser.add_argument(
        "--http-max-connections",
        type=int,
        default=128,
        metavar="N",
        help="gateway connection limit; over-limit connections get one "
        "503 and are closed (default: 128)",
    )
    parser.add_argument(
        "--http-max-inflight",
        type=int,
        default=64,
        metavar="N",
        help="gateway admission limit on dispatched requests; the rest "
        "get 503 + Retry-After (default: 64)",
    )
    parser.add_argument(
        "--cache",
        choices=("on", "off"),
        default=None,
        help="answer caching (default: on unless REPRO_ANSWER_CACHE=off)",
    )
    parser.add_argument(
        "--cache-capacity",
        type=int,
        default=256,
        metavar="N",
        help="answer-cache entry budget, evicted LRU (default: 256)",
    )
    parser.add_argument(
        "--max-request-bytes",
        type=int,
        default=MAX_REQUEST_BYTES,
        metavar="BYTES",
        help=f"largest accepted request line (default: {MAX_REQUEST_BYTES})",
    )
    return parser


def run_serve(argv: list[str], echo) -> int:
    """The ``serve`` subcommand: run the TCP server until a signal."""
    import asyncio

    from repro.server.cache import AnswerCache, cache_enabled
    from repro.server.gateway import HttpGateway
    from repro.server.server import LDLServer

    args = build_serve_parser().parse_args(argv)
    source = ""
    if args.file:
        try:
            source = Path(args.file).read_text()
        except OSError as exc:
            echo(f"error: cannot read {args.file}: {exc}")
            return 2

    session = None
    try:
        session = LDL(source, ldl15=args.ldl15, path=args.db, fsync=args.fsync)
        if args.db:
            stats = session.store.stats
            echo(
                f"% durable store {args.db}: {stats.restore_mode} start, "
                f"{stats.wal_records_replayed} WAL records replayed"
            )
        if args.cache is None:
            caching = cache_enabled()
        else:
            caching = args.cache == "on"
        server = LDLServer(
            session,
            host=args.host,
            port=args.port,
            request_timeout=args.request_timeout,
            max_request_bytes=args.max_request_bytes,
            cache=AnswerCache(args.cache_capacity) if caching else None,
        )

        async def main() -> None:
            await server.start()
            echo(f"% serving on {server.host}:{server.port} (pid {os.getpid()})")
            gateway = None
            if args.http is not None:
                gateway = HttpGateway(
                    server,
                    host=args.host,
                    port=args.http,
                    max_connections=args.http_max_connections,
                    max_inflight=args.http_max_inflight,
                )
                await gateway.start()
                echo(f"% http gateway on {gateway.host}:{gateway.port}")
            try:
                await server.serve()
            finally:
                if gateway is not None:
                    await gateway.stop()

        asyncio.run(main())
        if args.db:
            echo("% shutdown: durable session checkpointed")
        echo("% server stopped")
    except LDLError as exc:
        echo(f"error: {exc}")
        return 1
    finally:
        if session is not None:
            session.close()
    return 0


REPL_HELP = """\
?  <atom>.          answer a query
<rule>.             add a rule or fact
:dump <pred>        print a predicate's extension
:explain <fact>     print a derivation tree
:strategy <name>    naive | seminaive | magic
:layers             show the current layering
:save               checkpoint the durable store (--db; alias .save)
:compact            snapshot + truncate the WAL (--db; alias .compact)
:help               this text
:quit               leave"""


def repl(session: LDL, stream, echo, strategy: str = "seminaive") -> None:
    """A line-oriented interactive loop over a loaded session."""
    echo("% LDL1 repl — :help for commands")
    for raw in stream:
        line = raw.strip()
        if not line or line.startswith("%"):
            continue
        try:
            if line in (":quit", ":q", ":exit"):
                break
            if line in (":help", ":h"):
                echo(REPL_HELP)
            elif line.startswith(":dump"):
                pred = line.split(None, 1)[1].strip()
                db = session.database(
                    "seminaive" if strategy == "magic" else strategy
                )
                for atom in db.sorted_atoms(pred):
                    echo(f"  {format_atom(atom)}.")
            elif line.startswith(":explain"):
                fact_text = line.split(None, 1)[1].strip()
                derivation = session.explain(fact_text)
                echo(
                    derivation.format()
                    if derivation is not None
                    else f"% {fact_text}: not in the model"
                )
            elif line.startswith(":strategy"):
                candidate = line.split(None, 1)[1].strip()
                if candidate not in ("naive", "seminaive", "magic"):
                    echo(f"% unknown strategy {candidate!r}")
                else:
                    strategy = candidate
                    echo(f"% strategy = {strategy}")
            elif line in (":save", ".save", ":compact", ".compact"):
                if session.store is None:
                    echo("% no durable store (start with --db PATH)")
                else:
                    nbytes = session.checkpoint()
                    echo(
                        f"% checkpoint: {nbytes} snapshot bytes, WAL reset "
                        f"({len(session.database())} facts)"
                    )
            elif line == ":layers":
                layering = stratify(session.program)
                for i, layer in enumerate(layering):
                    echo(f"  layer {i}: {', '.join(sorted(layer)) or '(empty)'}")
            elif line.startswith(":"):
                echo(f"% unknown command {line.split()[0]!r} (:help)")
            elif line.startswith("?"):
                query = parse_query(line)
                _print_answers(query, session.query(query, strategy=strategy), echo)
            else:
                session.load(line if line.endswith(".") else line + ".")
                echo("% ok")
        except LDLError as exc:
            echo(f"error: {exc}")


def main() -> None:  # pragma: no cover - thin wrapper
    sys.exit(run())
