"""LDL1: a logic database language with finite sets and stratified negation.

Reproduction of Beeri, Naqvi, Ramakrishnan, Shmueli, Tsur,
"Sets and Negation in a Logic Database Language (LDL1)", PODS 1987.

Quickstart::

    from repro import LDL

    db = LDL('''
        ancestor(X, Y) <- parent(X, Y).
        ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
    ''')
    db.facts("parent", [("ann", "bob"), ("bob", "carl")])
    db.query("? ancestor(ann, X).")
"""

from repro.api import LDL, from_term, to_term
from repro.engine import (
    Database,
    IncrementalModel,
    TopDownEvaluator,
    evaluate,
    evaluate_topdown,
    explain,
)
from repro.errors import LDLError
from repro.magic import evaluate_magic, magic_rewrite
from repro.parser import parse_program, parse_query, parse_rules
from repro.program import Program, Query, Rule, analyze, stratify
from repro.semantics import is_model, wellfounded
from repro.server import Client, LDLServer
from repro.storage import DurableStore

__version__ = "1.0.0"

__all__ = [
    "Client",
    "Database",
    "DurableStore",
    "IncrementalModel",
    "LDL",
    "LDLServer",
    "TopDownEvaluator",
    "analyze",
    "LDLError",
    "Program",
    "Query",
    "Rule",
    "evaluate",
    "evaluate_magic",
    "evaluate_topdown",
    "explain",
    "is_model",
    "from_term",
    "magic_rewrite",
    "parse_program",
    "parse_query",
    "parse_rules",
    "stratify",
    "to_term",
    "wellfounded",
]
