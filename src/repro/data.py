"""Loading extensional data from delimited files.

A deductive database is only useful if base relations can come from
somewhere; this module reads CSV/TSV files into ground atoms.  Cell
values are typed by shape: integers and floats become numeric
constants, everything else a symbol.  A cell of the form
``{a; b; c}`` becomes a set of such scalars (empty: ``{}``).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable

from repro.errors import EvaluationError
from repro.program.rule import Atom
from repro.terms.term import Const, SetVal, Term


def _scalar(text: str) -> Term:
    text = text.strip()
    if not text:
        raise EvaluationError("empty cell in data file")
    try:
        return Const(int(text))
    except ValueError:
        pass
    try:
        return Const(float(text))
    except ValueError:
        pass
    return Const(text)


def parse_cell(text: str) -> Term:
    """Convert one cell to a ground term (scalar or ``{a; b}`` set)."""
    stripped = text.strip()
    if stripped.startswith("{") and stripped.endswith("}"):
        inner = stripped[1:-1].strip()
        if not inner:
            return SetVal()
        return SetVal(_scalar(part) for part in inner.split(";"))
    return _scalar(stripped)


def load_delimited(
    path: str | Path, pred: str, delimiter: str | None = None
) -> list[Atom]:
    """Read ``path`` into ``pred`` facts, one per row.

    ``delimiter`` defaults by extension: tab for ``.tsv``, comma
    otherwise.  All rows must have the same width (the predicate's
    arity).  Blank lines and ``#`` comment lines are skipped.
    """
    path = Path(path)
    if delimiter is None:
        delimiter = "\t" if path.suffix.lower() == ".tsv" else ","
    atoms: list[Atom] = []
    arity: int | None = None
    with path.open(newline="") as handle:
        for row_number, row in enumerate(csv.reader(handle, delimiter=delimiter), 1):
            if not row or (row[0].lstrip().startswith("#")):
                continue
            if all(not cell.strip() for cell in row):
                continue
            if arity is None:
                arity = len(row)
            elif len(row) != arity:
                raise EvaluationError(
                    f"{path}:{row_number}: expected {arity} columns, got {len(row)}"
                )
            atoms.append(Atom(pred, tuple(parse_cell(cell) for cell in row)))
    return atoms


def dump_delimited(
    atoms: Iterable[Atom], path: str | Path, delimiter: str | None = None
) -> int:
    """Write ground atoms (one predicate) back to a delimited file.

    Sets serialize as ``{a; b}``.  Returns the row count.
    """
    path = Path(path)
    if delimiter is None:
        delimiter = "\t" if path.suffix.lower() == ".tsv" else ","
    count = 0
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        for atom in atoms:
            writer.writerow([_cell_text(arg) for arg in atom.args])
            count += 1
    return count


def _cell_text(term: Term) -> str:
    if isinstance(term, Const):
        return str(term.value)
    if isinstance(term, SetVal):
        return "{" + "; ".join(_cell_text(e) for e in term) + "}"
    from repro.terms.pretty import format_term

    return format_term(term)
