"""Engine-wide observability: hooks, structured tracing, and metrics.

The evaluation engine reports its progress through an
:class:`EngineHooks` implementation attached to the
:class:`~repro.engine.context.EvalContext`.  Three implementations ship
here:

* :data:`NULL_HOOKS` — the no-op default.  Hot paths test
  ``context.observing`` (a plain attribute) before dispatching, so the
  default adds no measurable overhead;
* :class:`TraceRecorder` — records every event as a structured
  :class:`TraceEvent` and can summarize a run (rule firings per layer,
  plans built, facts derived).  The CLI's ``--trace`` flag uses it;
* :class:`MetricsCollector` — wall-clock time per engine phase
  (``plan``, ``match``, ``grouping``) and per layer, feeding the
  benchmark harness' phase-attribution tables.

Several hooks can be active at once via :func:`compose_hooks`.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Protocol, Sequence, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.engine.plan import RulePlan
    from repro.program.rule import Atom, Rule


@runtime_checkable
class EngineHooks(Protocol):
    """Observation points raised by every evaluation strategy.

    Implementations may ignore any subset; all methods return None and
    must not mutate engine state.  ``on_plan_built`` fires once per
    compiled :class:`~repro.engine.plan.RulePlan` (so a counter on it
    verifies plan caching); the remaining hooks follow the Theorem 1
    pipeline: layers, fixpoint iterations, rule firings, derived facts.
    """

    def on_plan_built(self, plan: "RulePlan") -> None: ...

    def on_layer_start(self, layer: int, rules: Sequence["Rule"]) -> None: ...

    def on_layer_end(self, layer: int, new_facts: int) -> None: ...

    def on_iteration(self, iteration: int, new_facts: int) -> None: ...

    def on_rule_fired(self, rule: "Rule", derived: int) -> None: ...

    def on_fact_derived(self, fact: "Atom", rule: "Rule | None") -> None: ...


#: Storage observation points (:mod:`repro.storage`).  These are *not*
#: part of the :class:`EngineHooks` protocol so hook implementations
#: written before the storage engine keep working; the storage layer
#: dispatches them through :func:`emit_storage_event`, which silently
#: skips hooks that do not implement a method.
#:
#: * ``on_wal_append(op=..., facts=..., nbytes=...)`` — one batch framed
#:   and written to the write-ahead log;
#: * ``on_wal_replay(records=..., facts=...)`` — recovery replayed the
#:   log through the incremental engine;
#: * ``on_snapshot_write(path=..., facts=..., nbytes=...)`` — a snapshot
#:   was atomically published;
#: * ``on_snapshot_load(path=..., facts=..., restored=...)`` — a
#:   snapshot was read; ``restored`` is True when the materialized model
#:   was adopted wholesale (fixpoint skipped).
STORAGE_EVENTS = (
    "on_wal_append",
    "on_wal_replay",
    "on_snapshot_write",
    "on_snapshot_load",
)

#: SCC-scheduler observation points (:mod:`repro.engine.evaluator`).
#: Dispatched tolerantly like storage events, so hook implementations
#: written before SCC condensation keep working:
#:
#: * ``on_scc_start(layer=..., preds=..., recursive=...)`` — one
#:   component of the stratum's condensation is about to run; ``layer``
#:   is None outside layered evaluation (magic saturation);
#: * ``on_scc_end(layer=..., preds=..., new_facts=..., seconds=...)`` —
#:   the component reached its (single-pass or fixpoint) end.
SCC_EVENTS = (
    "on_scc_start",
    "on_scc_end",
)

#: Differential-maintenance observation points
#: (:mod:`repro.engine.maintain`).  Dispatched tolerantly like storage
#: events, so hook implementations written before delta maintenance
#: keep working:
#:
#: * ``on_delta_batch(lsn=..., mode=..., inserted=..., deleted=...)`` —
#:   one maintained update published its net model delta; ``lsn`` is
#:   the WAL LSN of the producing mutation (None outside the durable
#:   store), ``inserted``/``deleted`` are net fact counts.
MAINTENANCE_EVENTS = (
    "on_delta_batch",
)

#: Events dispatched via :func:`emit_event` (tolerant getattr dispatch).
OPTIONAL_EVENTS = STORAGE_EVENTS + SCC_EVENTS + MAINTENANCE_EVENTS


def emit_event(hooks, name: str, **payload) -> None:
    """Dispatch an optional event to ``hooks`` if it implements ``name``."""
    if hooks is None:
        return
    method = getattr(hooks, name, None)
    if method is not None:
        method(**payload)


#: Back-compat alias — the storage layer predates the generic dispatcher.
emit_storage_event = emit_event


class NullHooks:
    """The do-nothing default hook implementation."""

    __slots__ = ()

    def on_plan_built(self, plan) -> None:
        pass

    def on_layer_start(self, layer, rules) -> None:
        pass

    def on_layer_end(self, layer, new_facts) -> None:
        pass

    def on_iteration(self, iteration, new_facts) -> None:
        pass

    def on_rule_fired(self, rule, derived) -> None:
        pass

    def on_fact_derived(self, fact, rule) -> None:
        pass

    def on_wal_append(self, op, facts, nbytes) -> None:
        pass

    def on_wal_replay(self, records, facts) -> None:
        pass

    def on_snapshot_write(self, path, facts, nbytes) -> None:
        pass

    def on_snapshot_load(self, path, facts, restored) -> None:
        pass

    def on_scc_start(self, layer, preds, recursive) -> None:
        pass

    def on_scc_end(self, layer, preds, new_facts, seconds) -> None:
        pass

    def on_delta_batch(self, lsn, mode, inserted, deleted) -> None:
        pass


#: Shared no-op instance; contexts compare against it to skip dispatch.
NULL_HOOKS = NullHooks()


class CompositeHooks:
    """Fan one event stream out to several hook implementations."""

    __slots__ = ("hooks",)

    def __init__(self, hooks: Sequence[EngineHooks]) -> None:
        self.hooks = tuple(hooks)

    def on_plan_built(self, plan) -> None:
        for hook in self.hooks:
            hook.on_plan_built(plan)

    def on_layer_start(self, layer, rules) -> None:
        for hook in self.hooks:
            hook.on_layer_start(layer, rules)

    def on_layer_end(self, layer, new_facts) -> None:
        for hook in self.hooks:
            hook.on_layer_end(layer, new_facts)

    def on_iteration(self, iteration, new_facts) -> None:
        for hook in self.hooks:
            hook.on_iteration(iteration, new_facts)

    def on_rule_fired(self, rule, derived) -> None:
        for hook in self.hooks:
            hook.on_rule_fired(rule, derived)

    def on_fact_derived(self, fact, rule) -> None:
        for hook in self.hooks:
            hook.on_fact_derived(fact, rule)

    def __getattr__(self, name: str):
        # storage and SCC events fan out too, tolerating member hooks
        # that predate them (see OPTIONAL_EVENTS).
        if name in OPTIONAL_EVENTS:
            def dispatch(**payload) -> None:
                for hook in self.hooks:
                    emit_event(hook, name, **payload)

            return dispatch
        raise AttributeError(name)


def compose_hooks(*hooks: EngineHooks | None) -> EngineHooks:
    """Combine hooks, dropping Nones and no-ops; NULL_HOOKS when empty."""
    active = [h for h in hooks if h is not None and h is not NULL_HOOKS]
    if not active:
        return NULL_HOOKS
    if len(active) == 1:
        return active[0]
    return CompositeHooks(active)


@dataclass(frozen=True)
class TraceEvent:
    """One structured engine event: a kind tag plus its payload."""

    kind: str
    payload: dict


class TraceRecorder:
    """Hook implementation that records every event for inspection.

    The recorded stream is available as :attr:`events`; convenience
    accessors aggregate the common questions (how many plans were
    built, which rules fired per layer).  ``format_summary`` renders
    the per-layer firing table the CLI prints under ``--trace``.
    """

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []
        self._layer: int | None = None

    # -- hook protocol -----------------------------------------------------

    def on_plan_built(self, plan) -> None:
        self.events.append(
            TraceEvent(
                "plan_built",
                {
                    "rule": plan.rule,
                    "order": plan.order,
                    "planner": plan.planner,
                    "first": plan.first,
                },
            )
        )

    def on_layer_start(self, layer, rules) -> None:
        self._layer = layer
        self.events.append(
            TraceEvent("layer_start", {"layer": layer, "rules": tuple(rules)})
        )

    def on_layer_end(self, layer, new_facts) -> None:
        self.events.append(
            TraceEvent("layer_end", {"layer": layer, "new_facts": new_facts})
        )
        self._layer = None

    def on_iteration(self, iteration, new_facts) -> None:
        self.events.append(
            TraceEvent(
                "iteration",
                {
                    "layer": self._layer,
                    "iteration": iteration,
                    "new_facts": new_facts,
                },
            )
        )

    def on_rule_fired(self, rule, derived) -> None:
        self.events.append(
            TraceEvent(
                "rule_fired",
                {"layer": self._layer, "rule": rule, "derived": derived},
            )
        )

    def on_fact_derived(self, fact, rule) -> None:
        self.events.append(
            TraceEvent(
                "fact_derived",
                {"layer": self._layer, "fact": fact, "rule": rule},
            )
        )

    # -- storage events (see STORAGE_EVENTS) -------------------------------

    def on_wal_append(self, op, facts, nbytes) -> None:
        self.events.append(
            TraceEvent("wal_append", {"op": op, "facts": facts, "nbytes": nbytes})
        )

    def on_wal_replay(self, records, facts) -> None:
        self.events.append(
            TraceEvent("wal_replay", {"records": records, "facts": facts})
        )

    def on_snapshot_write(self, path, facts, nbytes) -> None:
        self.events.append(
            TraceEvent(
                "snapshot_write",
                {"path": path, "facts": facts, "nbytes": nbytes},
            )
        )

    def on_snapshot_load(self, path, facts, restored) -> None:
        self.events.append(
            TraceEvent(
                "snapshot_load",
                {"path": path, "facts": facts, "restored": restored},
            )
        )

    # -- SCC scheduler events (see SCC_EVENTS) ------------------------------

    def on_scc_start(self, layer, preds, recursive) -> None:
        self.events.append(
            TraceEvent(
                "scc_start",
                {"layer": layer, "preds": preds, "recursive": recursive},
            )
        )

    def on_scc_end(self, layer, preds, new_facts, seconds) -> None:
        self.events.append(
            TraceEvent(
                "scc_end",
                {
                    "layer": layer,
                    "preds": preds,
                    "new_facts": new_facts,
                    "seconds": seconds,
                },
            )
        )

    # -- maintenance events (see MAINTENANCE_EVENTS) ------------------------

    def on_delta_batch(self, lsn, mode, inserted, deleted) -> None:
        self.events.append(
            TraceEvent(
                "delta_batch",
                {
                    "lsn": lsn,
                    "mode": mode,
                    "inserted": inserted,
                    "deleted": deleted,
                },
            )
        )

    # -- aggregation -------------------------------------------------------

    def count(self, kind: str) -> int:
        return sum(1 for e in self.events if e.kind == kind)

    @property
    def plans_built(self) -> int:
        return self.count("plan_built")

    def firings_per_layer(self) -> dict[int | None, int]:
        """Rule applications keyed by layer (None: outside layers).

        Counts ``rule_fired`` events — the same unit as
        :attr:`~repro.engine.fixpoint.FixpointStats.rule_firings` — not
        the tuples each firing produced (those are in the event's
        ``derived`` payload and in :meth:`facts_per_layer`).
        """
        out: dict[int | None, int] = {}
        for event in self.events:
            if event.kind == "rule_fired":
                layer = event.payload["layer"]
                out[layer] = out.get(layer, 0) + 1
        return out

    def facts_per_layer(self) -> dict[int | None, int]:
        out: dict[int | None, int] = {}
        for event in self.events:
            if event.kind == "fact_derived":
                layer = event.payload["layer"]
                out[layer] = out.get(layer, 0) + 1
        return out

    def format_summary(self) -> str:
        """A per-layer firing/fact table, e.g. for the CLI's --trace."""
        firings = self.firings_per_layer()
        facts = self.facts_per_layer()
        lines = [
            f"% trace: {len(self.events)} events, {self.plans_built} plans built"
        ]
        for layer in sorted(
            set(firings) | set(facts), key=lambda x: (x is None, x)
        ):
            label = f"layer {layer}" if layer is not None else "unlayered"
            lines.append(
                f"%   {label}: {firings.get(layer, 0)} rule firings, "
                f"{facts.get(layer, 0)} new facts"
            )
        return "\n".join(lines)


@dataclass
class MetricsCollector:
    """Wall-clock attribution per engine phase and per layer.

    ``phases`` accumulates seconds under free-form names — the engine
    uses ``plan`` (RulePlan compilation), ``match`` (body enumeration +
    head instantiation) and ``grouping`` (the R1 step); ``layers`` holds
    ``(layer, seconds)`` pairs in evaluation order.  ``counters`` holds
    integer tallies (``plans_built``, ``plan_cache_hits``, the
    batch-executor tallies ``batch_steps``/``batch_bindings``/
    ``batch_peak``, the vector-kernel tallies ``kernel_calls``/
    ``kernel_rows`` — with ``rows_per_dispatch`` derived in
    :meth:`report` — and the intern table's ``id_table_size``
    high-water mark).  ``join_orders`` records the chosen per-rule join
    order for every plan compiled under this collector.
    """

    phases: dict[str, float] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    layers: list[tuple[int, float]] = field(default_factory=list)
    sccs: list[dict] = field(default_factory=list)
    join_orders: list[dict] = field(default_factory=list)
    workers: list[dict] = field(default_factory=list)

    def add_time(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def incr(self, counter: str, amount: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def add_layer_time(self, layer: int, seconds: float) -> None:
        self.layers.append((layer, seconds))

    def add_scc_time(
        self, layer: int | None, preds, recursive: bool, seconds: float
    ) -> None:
        """One SCC finished: record its predicates, kind, and wall time."""
        self.sccs.append(
            {
                "layer": layer,
                "preds": sorted(preds),
                "recursive": recursive,
                "seconds": seconds,
            }
        )

    def record_storage(
        self, bytes_written: int = 0, fsyncs: int = 0, replayed: int = 0
    ) -> None:
        """Tally storage I/O: bytes framed to disk, fsync calls, and WAL
        records replayed during recovery."""
        if bytes_written:
            self.incr("storage_bytes_written", bytes_written)
        if fsyncs:
            self.incr("storage_fsyncs", fsyncs)
        if replayed:
            self.incr("wal_records_replayed", replayed)

    def record_join_order(self, plan) -> None:
        """One plan compiled: record the join order the planner chose."""
        from repro.program.rule import format_rule

        rule = getattr(plan, "rule", None)
        self.join_orders.append(
            {
                "rule": format_rule(rule) if rule is not None else None,
                "order": list(plan.order),
                "planner": plan.planner,
                "first": plan.first,
            }
        )

    def record_batch(self, size: int) -> None:
        """One batch-executor step finished with ``size`` live bindings."""
        counters = self.counters
        counters["batch_steps"] = counters.get("batch_steps", 0) + 1
        counters["batch_bindings"] = counters.get("batch_bindings", 0) + size
        if size > counters.get("batch_peak", 0):
            counters["batch_peak"] = size

    def record_kernel(self, rows: int, calls: int = 1) -> None:
        """Vector-kernel dispatches: ``calls`` whole-column kernel
        invocations processed ``rows`` rows in total.  The derived
        ``rows_per_dispatch`` in :meth:`report` quantifies how much
        interpreter dispatch the vectorized lane amortizes — higher is
        better (one Python-level call covering more rows)."""
        counters = self.counters
        counters["kernel_calls"] = counters.get("kernel_calls", 0) + calls
        counters["kernel_rows"] = counters.get("kernel_rows", 0) + rows

    def record_shuffle(self, rows: int, nbytes: int) -> None:
        """Exchange traffic: ``rows`` ID rows framed for the wire in
        ``nbytes`` payload bytes (counted on the sending side)."""
        counters = self.counters
        counters["shuffle_rows"] = counters.get("shuffle_rows", 0) + rows
        counters["shuffle_bytes"] = counters.get("shuffle_bytes", 0) + nbytes

    def record_maintain_dispatch(self, rows: int) -> None:
        """One maintenance delta dispatched as a row batch (``rows``
        rows); :meth:`report` derives ``maintain_rows_per_dispatch``."""
        counters = self.counters
        counters["maintain_dispatches"] = (
            counters.get("maintain_dispatches", 0) + 1
        )
        counters["maintain_rows"] = counters.get("maintain_rows", 0) + rows

    def record_worker(self, wid: int, seconds: float, counters: dict) -> None:
        """One worker's lifetime tallies, folded into the run's counter
        families — a parallel run reports ONE ``kernel_calls`` /
        ``shuffle_rows`` total, not one line per worker — with the
        per-worker breakdown kept under ``workers`` for drill-down.
        High-water-mark counters (``id_table_size``, ``batch_peak``)
        fold by max, everything else by sum."""
        self.workers.append(
            {
                "worker": wid,
                "seconds": round(seconds, 6),
                "counters": dict(counters),
            }
        )
        own = self.counters
        for name, value in counters.items():
            if name in ("id_table_size", "batch_peak"):
                if value > own.get(name, 0):
                    own[name] = value
            else:
                own[name] = own.get(name, 0) + value

    def record_id_table(self, size: int) -> None:
        """Snapshot the dense term-ID table size (distinct interned
        ground terms process-wide).  The high-water mark is kept: the
        table only grows between ``clear_intern_table`` calls, so the
        max over snapshots is the run's dictionary footprint."""
        if size > self.counters.get("id_table_size", 0):
            self.counters["id_table_size"] = size

    def now(self) -> float:
        return time.perf_counter()

    def report(self) -> dict:
        """A JSON-friendly snapshot for benchmark output."""
        counters = dict(self.counters)
        calls = counters.get("kernel_calls", 0)
        if calls:
            counters["rows_per_dispatch"] = round(
                counters.get("kernel_rows", 0) / calls, 1
            )
        dispatches = counters.get("maintain_dispatches", 0)
        if dispatches:
            counters["maintain_rows_per_dispatch"] = round(
                counters.get("maintain_rows", 0) / dispatches, 1
            )
        report = {
            "phases": dict(self.phases),
            "counters": counters,
            "layers": [
                {"layer": layer, "seconds": seconds}
                for layer, seconds in self.layers
            ],
            "sccs": [dict(entry) for entry in self.sccs],
            "join_orders": [dict(entry) for entry in self.join_orders],
        }
        if self.workers:
            report["workers"] = [dict(entry) for entry in self.workers]
        return report

    def format(self) -> str:
        parts = [
            f"{name}={seconds * 1000:.2f}ms"
            for name, seconds in sorted(self.phases.items())
        ]
        parts.extend(
            f"{name}={value}" for name, value in sorted(self.counters.items())
        )
        return " ".join(parts)


#: Upper bounds (seconds) of the server latency histogram buckets; one
#: implicit +inf bucket follows.  Prometheus-style cumulative counts.
SERVER_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)


class ServerMetrics:
    """Request-level counters for :class:`repro.server.LDLServer`.

    Tracks per-op request and error counts, an in-flight gauge (with
    high-water mark), connection totals, and a fixed-bucket latency
    histogram.  Updated from executor threads and the event loop alike,
    so every mutation takes an internal mutex; :meth:`report` returns
    the JSON-friendly snapshot the ``stats`` op serves.
    """

    def __init__(self, buckets: Sequence[float] = SERVER_LATENCY_BUCKETS) -> None:
        self._mutex = threading.Lock()
        self.buckets = tuple(buckets)
        self.requests: dict[str, int] = {}
        self.errors: dict[str, int] = {}
        self.in_flight = 0
        self.peak_in_flight = 0
        self.connections_opened = 0
        self.connections_closed = 0
        self._bucket_counts = [0] * (len(self.buckets) + 1)
        self._latency_sum = 0.0
        self._latency_count = 0
        # answer-cache outcomes ("hit"/"hit-subsumed"/"miss"/
        # "invalidation_events"/"invalidated") and gateway admission
        # rejections ("connections"/"admission"/"body"), by kind.
        self.cache_events: dict[str, int] = {}
        self.rejections: dict[str, int] = {}

    # -- recording ---------------------------------------------------------

    def record_cache(self, kind: str, n: int = 1) -> None:
        """Count ``n`` answer-cache outcomes of ``kind``."""
        with self._mutex:
            self.cache_events[kind] = self.cache_events.get(kind, 0) + n

    def record_rejection(self, reason: str) -> None:
        """Count one admission-control rejection (gateway 503/413)."""
        with self._mutex:
            self.rejections[reason] = self.rejections.get(reason, 0) + 1

    def connection_opened(self) -> None:
        with self._mutex:
            self.connections_opened += 1

    def connection_closed(self) -> None:
        with self._mutex:
            self.connections_closed += 1

    def request_started(self, op: str) -> None:
        with self._mutex:
            self.requests[op] = self.requests.get(op, 0) + 1
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def request_finished(self, op: str, seconds: float, ok: bool = True) -> None:
        with self._mutex:
            self.in_flight -= 1
            if not ok:
                self.errors[op] = self.errors.get(op, 0) + 1
            self._latency_sum += seconds
            self._latency_count += 1
            for i, bound in enumerate(self.buckets):
                if seconds <= bound:
                    self._bucket_counts[i] += 1
                    return
            self._bucket_counts[-1] += 1

    # -- reporting ---------------------------------------------------------

    def latency_histogram(self) -> dict[str, int]:
        """Cumulative counts keyed by upper bound (``"inf"`` closes it)."""
        with self._mutex:
            out: dict[str, int] = {}
            running = 0
            for bound, count in zip(self.buckets, self._bucket_counts):
                running += count
                out[repr(bound)] = running
            out["inf"] = running + self._bucket_counts[-1]
            return out

    def report(self) -> dict:
        histogram = self.latency_histogram()
        with self._mutex:
            total = sum(self.requests.values())
            return {
                "requests": dict(self.requests),
                "errors": dict(self.errors),
                "requests_total": total,
                "errors_total": sum(self.errors.values()),
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "connections_opened": self.connections_opened,
                "connections_closed": self.connections_closed,
                "cache": dict(self.cache_events),
                "rejections": dict(self.rejections),
                "latency": {
                    "count": self._latency_count,
                    "sum_seconds": self._latency_sum,
                    "mean_seconds": (
                        self._latency_sum / self._latency_count
                        if self._latency_count
                        else 0.0
                    ),
                    "buckets": histogram,
                },
            }

    def format(self) -> str:
        report = self.report()
        ops = " ".join(
            f"{op}={count}" for op, count in sorted(report["requests"].items())
        )
        return (
            f"requests={report['requests_total']} ({ops}) "
            f"errors={report['errors_total']} "
            f"in_flight={report['in_flight']} "
            f"peak={report['peak_in_flight']} "
            f"mean_latency={report['latency']['mean_seconds'] * 1000:.2f}ms"
        )
