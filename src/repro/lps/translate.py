"""Theorem 3: translating LPS into LDL1 (paper Section 5).

For an LPS rule ``head <- (∀x1∈X1)..(∀xn∈Xn)[B1..Bm]`` the paper
builds:

* an **a**-rule collecting, per binding of the set variables, the
  g-tuples of element combinations for which the body holds;
* a **b**-rule collecting *all* g-tuples of element combinations;
* **c**/**d** grouping rules turning those into sets;
* a final rule deriving ``head`` when the two sets are equal —
  "this equality is tantamount to satisfying the ∀ condition".

The paper's sketch leaves the set variables unconstrained (its b-rule
is not range-restricted) and defers empty ranges ("a straight-forward
task").  The executable translation closes both gaps:

* a reserved unary predicate ``lps_set`` supplies the active sets
  (``D ∪ P(D)``'s set part) as the range of every set variable, and
* per quantifier, an extra rule derives ``head`` outright when that
  range set is empty (the ∀ is then vacuously true).
"""

from __future__ import annotations

from typing import Iterable

from repro.engine.database import Database
from repro.engine.evaluator import evaluate
from repro.lps.interpreter import active_domain
from repro.lps.syntax import LPSProgram, LPSRule
from repro.names import FreshNames
from repro.program.rule import Atom, Literal, Program, Rule
from repro.terms.term import Func, GroupTerm, SetVal, Term, Var

#: Predicate supplying the set part of the LPS active domain.
LPS_SET = "lps_set"


def _g_tuple(element_vars: tuple[str, ...]) -> Term:
    if not element_vars:
        return Func("g", (Var("_unit"),))
    if len(element_vars) == 1:
        return Func("g", (Var(element_vars[0]),))
    return Func("g", tuple(Var(v) for v in element_vars))


def translate_rule(rule: LPSRule, fresh: FreshNames) -> list[Rule]:
    """Translate one LPS rule into LDL1 rules per Theorem 3."""
    if not rule.quantifiers:
        # plain rule: already LDL1 (range-restrict via lps_set for free
        # set vars appearing only in the head).
        return [Rule(rule.head, rule.body)]

    element_vars = tuple(q.element_var for q in rule.quantifiers)
    free_vars = tuple(sorted(rule.free_variables()))
    set_range_vars = rule.typed_set_variables()
    g_term = _g_tuple(element_vars)
    xbar = tuple(Var(v) for v in free_vars)

    a = fresh.fresh("lps_a")
    b = fresh.fresh("lps_b")
    c = fresh.fresh("lps_c")
    d = fresh.fresh("lps_d")

    domain_literals = [
        Literal(Atom(LPS_SET, (Var(v),))) for v in set_range_vars
    ]
    member_literals = [
        Literal(Atom("member", (Var(q.element_var), Var(q.set_var))))
        for q in rule.quantifiers
    ]

    out: list[Rule] = []
    # a(X̄, g(x̄)) <- B1..Bm, member(xi, Xi)...
    out.append(
        Rule(
            Atom(a, xbar + (g_term,)),
            tuple(domain_literals) + tuple(rule.body) + tuple(member_literals),
        )
    )
    # b(X̄, g(x̄)) <- member(xi, Xi)...
    out.append(
        Rule(
            Atom(b, xbar + (g_term,)),
            tuple(domain_literals) + tuple(member_literals),
        )
    )
    # c(X̄, <S>) <- a(X̄, S);  d(X̄, <S>) <- b(X̄, S).
    s = Var("_S")
    out.append(
        Rule(Atom(c, xbar + (GroupTerm(s),)), [Literal(Atom(a, xbar + (s,)))])
    )
    out.append(
        Rule(Atom(d, xbar + (GroupTerm(s),)), [Literal(Atom(b, xbar + (s,)))])
    )
    # head <- c(X̄, S), d(X̄, S).
    out.append(
        Rule(
            rule.head,
            [Literal(Atom(c, xbar + (s,))), Literal(Atom(d, xbar + (s,)))],
        )
    )
    # empty ranges: ∀x∈{} is vacuously true.
    for q in rule.quantifiers:
        body = list(domain_literals) + [
            Literal(Atom("=", (Var(q.set_var), SetVal())))
        ]
        out.append(Rule(rule.head, body))
    return out


def translate(program: LPSProgram) -> Program:
    """Translate an LPS program into an equivalent LDL1 program.

    Theorem 3: the unique minimal model of the result, restricted to
    the predicates of ``program``, is a model for ``program``.
    """
    fresh = FreshNames(program.predicates() | {LPS_SET})
    rules: list[Rule] = []
    for rule in program.rules:
        rules.extend(translate_rule(rule, fresh))
    return Program(rules)


def lps_set_facts(facts: Iterable[Atom], extra_sets: Iterable[SetVal] = ()):
    """The ``lps_set`` relation for a database: its active sets."""
    _, sets = active_domain(Database(facts))
    pool = sorted(set(sets) | set(extra_sets), key=lambda t: t.sort_key())
    return [Atom(LPS_SET, (s,)) for s in pool]


def evaluate_translated(
    program: LPSProgram,
    facts: Iterable[Atom] = (),
    extra_sets: Iterable[SetVal] = (),
):
    """Translate and run under the LDL1 engine, with the LPS set domain
    installed; returns the LDL1 EvaluationResult."""
    fact_list = list(facts)
    edb = fact_list + lps_set_facts(fact_list, extra_sets)
    return evaluate(translate(program), edb=edb)
