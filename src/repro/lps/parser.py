"""Concrete syntax for LPS rules (paper Section 5).

The paper writes LPS rules as::

    head <- (∀x1 ∈ X1) ... (∀xn ∈ Xn) [B1, ..., Bm]

This parser accepts the ASCII transliteration::

    disj(X, Y) <- forall Ex in X, forall Ey in Y : Ex != Ey.
    subs(X, Y) [set Y] <- forall Ex in X : member(Ex, Y).
    ground_fact(a).

* quantifiers come first, comma-separated, ``:`` starts the body;
* ``[set V1, V2]`` after the head declares free set-typed variables
  (quantifier ranges are set-typed implicitly);
* rules without quantifiers omit the ``:`` — the body is plain.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lps.syntax import LPSProgram, LPSRule, Quantifier
from repro.parser.parser import _Parser


class _LPSParser(_Parser):
    def parse_lps_program(self) -> LPSProgram:
        rules: list[LPSRule] = []
        while self._peek().kind != "EOF":
            rules.append(self.parse_lps_rule())
        return LPSProgram(rules)

    def parse_lps_rule(self) -> LPSRule:
        head = self.parse_atom()
        set_typed: list[str] = []
        # optional [set V1, V2] annotation
        if self._peek().kind == "IDENT" and self._peek().value == "set":
            raise ParseError(
                "set annotation must be bracketed: [set V]",
                self._peek().line,
                self._peek().column,
            )
        if self._peek().text == "[":  # pragma: no cover - lexer has no '['
            raise ParseError("unexpected '['", self._peek().line, 0)
        quantifiers: list[Quantifier] = []
        body = []
        if self._accept("ARROW"):
            # leading 'set V, ...' declarations via keyword
            while (
                self._peek().kind == "IDENT" and self._peek().value == "set"
            ):
                self._next()
                set_typed.append(self._expect("VAR").value)
                while self._accept("COMMA"):
                    if (
                        self._peek().kind == "IDENT"
                        and self._peek().value in ("forall", "set")
                    ):
                        break
                    set_typed.append(self._expect("VAR").value)
            while (
                self._peek().kind == "IDENT"
                and self._peek().value == "forall"
            ):
                self._next()
                element = self._expect("VAR").value
                marker = self._expect("IDENT")
                if marker.value != "in":
                    raise ParseError(
                        f"expected 'in', found {marker.value!r}",
                        marker.line,
                        marker.column,
                    )
                range_var = self._expect("VAR").value
                quantifiers.append(Quantifier(element, range_var))
                if not self._accept("COMMA"):
                    break
            if quantifiers:
                colon = self._peek()
                if colon.kind == "IDENT" and colon.value == "where":
                    self._next()
                else:
                    # ':' is not a lexer token; accept '|' as separator
                    self._expect("BAR")
            body.append(self.parse_literal())
            while self._accept("COMMA"):
                body.append(self.parse_literal())
        self._expect("DOT")
        return LPSRule(head, quantifiers, body, set_typed=set_typed)


def parse_lps(text: str) -> LPSProgram:
    """Parse LPS concrete syntax into an :class:`LPSProgram`.

    Grammar::

        rule := atom [ '<-' [setdecl] quants ('|' | 'where') body ] '.'
              | atom [ '<-' body ] '.'
        setdecl := 'set' VAR (',' VAR)*  ','
        quants  := 'forall' VAR 'in' VAR (',' quants)?
        body    := literal (',' literal)*
    """
    return _LPSParser(text).parse_lps_program()
