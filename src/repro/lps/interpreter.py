"""A direct bottom-up interpreter for LPS (paper Section 5).

LPS models are based on ``D ∪ P(D)``: the active elements of the
database and the sets over them.  The interpreter binds a rule's free
variables over that active domain, expands the universal quantifiers
over the bound sets, and checks the bracketed body for *every*
combination — deriving the head when all pass (vacuously when some
range set is empty).

This is deliberately the naive semantics-first evaluation; experiment
E9 compares it against the Theorem-3 translation into LDL1.
"""

from __future__ import annotations

from itertools import product
from typing import Iterable

from repro.engine.builtins import solve_builtin
from repro.engine.database import Database
from repro.engine.match import ground_atom
from repro.errors import EvaluationError
from repro.lps.syntax import LPSProgram, LPSRule
from repro.names import is_builtin_predicate
from repro.program.rule import Atom, Literal
from repro.terms.term import SetVal, Term


def active_domain(db: Database) -> tuple[list[Term], list[SetVal]]:
    """Elements and sets of the database's active domain.

    Elements: every non-set argument and every member of a set
    argument; sets: every set argument.  (LPS's ``D ∪ P(D)``.)
    """
    elements: set[Term] = set()
    sets: set[SetVal] = set()
    for atom in db.atoms():
        for arg in atom.args:
            if isinstance(arg, SetVal):
                sets.add(arg)
                elements |= arg.elements
            else:
                elements.add(arg)
    ordered_elements = sorted(elements, key=lambda t: t.sort_key())
    ordered_sets = sorted(sets, key=lambda t: t.sort_key())
    return ordered_elements, ordered_sets


def _literal_holds(db: Database, lit: Literal, binding: dict[str, Term]) -> bool:
    atom = lit.atom.substitute(binding)
    if is_builtin_predicate(atom.pred):
        try:
            satisfied = any(True for _ in solve_builtin(atom.pred, atom.args, {}))
        except EvaluationError:
            return False
        return satisfied if lit.positive else not satisfied
    fact = ground_atom(lit.atom, binding)
    if fact is None:
        return False
    return (fact in db) if lit.positive else (fact not in db)


def _rule_fires(db: Database, rule: LPSRule, binding: dict[str, Term]) -> bool:
    """Check the universally quantified body under a free-var binding."""
    ranges: list[list[Term]] = []
    for quantifier in rule.quantifiers:
        the_set = binding.get(quantifier.set_var)
        if not isinstance(the_set, SetVal):
            return False
        ranges.append(list(the_set))
    element_vars = [q.element_var for q in rule.quantifiers]
    for combo in product(*ranges):
        extended = dict(binding)
        extended.update(zip(element_vars, combo))
        if not all(_literal_holds(db, lit, extended) for lit in rule.body):
            return False
    return True


def evaluate_lps(
    program: LPSProgram,
    facts: Iterable[Atom] = (),
    extra_sets: Iterable[SetVal] = (),
) -> Database:
    """Compute the bottom-up fixpoint of an LPS program.

    Free variables range over the active domain of the current database
    (plus ``extra_sets``); set-typed positions try sets, others try
    elements and sets alike.  Derivation is monotone (negation inside
    the brackets is not supported against derived predicates), so the
    fixpoint exists.
    """
    db = Database(facts)
    for rule in program.rules:
        for lit in rule.body:
            if lit.negative and not is_builtin_predicate(lit.atom.pred):
                raise EvaluationError(
                    "LPS interpreter supports negation only on built-ins"
                )
    extra = list(extra_sets)
    changed = True
    while changed:
        changed = False
        elements, sets = active_domain(db)
        sets = sorted(set(sets) | set(extra), key=lambda t: t.sort_key())
        pool: list[Term] = list(elements) + list(sets)
        for rule in program.rules:
            set_vars = set(rule.typed_set_variables())
            free = sorted(rule.free_variables())
            domains = [
                list(sets) if name in set_vars else pool for name in free
            ]
            for combo in product(*domains):
                binding = dict(zip(free, combo))
                if not _rule_fires(db, rule, binding):
                    continue
                fact = ground_atom(rule.head, binding)
                if fact is not None and db.add(fact):
                    changed = True
    return db
