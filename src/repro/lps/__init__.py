"""LPS (Kuper's logic programming with sets) and its LDL1 translation."""

from repro.lps.interpreter import active_domain, evaluate_lps
from repro.lps.parser import parse_lps
from repro.lps.syntax import LPSProgram, LPSRule, Quantifier
from repro.lps.translate import (
    LPS_SET,
    evaluate_translated,
    lps_set_facts,
    translate,
    translate_rule,
)

__all__ = [
    "LPSProgram",
    "LPSRule",
    "LPS_SET",
    "Quantifier",
    "active_domain",
    "parse_lps",
    "evaluate_lps",
    "evaluate_translated",
    "lps_set_facts",
    "translate",
    "translate_rule",
]
