"""Syntax for Kuper's LPS (paper Section 5, [KUPE86]).

An LPS rule has the form::

    head <- (forall x1 in X1) ... (forall xn in Xn) [B1, ..., Bm]

where the ``xi`` are element-typed variables, the ``Xi`` set-typed
variables, and the bracketed body must hold *for every combination* of
elements drawn from the respective sets.  All sets are finite, and LPS
models live over ``D ∪ P(D)`` — elements and sets of elements, with no
deeper nesting (the Proposition at the end of Section 5 exploits
exactly this).
"""

from __future__ import annotations

from typing import Iterable, NamedTuple

from repro.program.rule import Atom, Literal
from repro.terms.pretty import format_atom, format_literal


class Quantifier(NamedTuple):
    """``forall element_var in set_var``."""

    element_var: str
    set_var: str


class LPSRule:
    """One LPS rule; a fact when both quantifiers and body are empty."""

    __slots__ = ("head", "quantifiers", "body", "set_typed")

    def __init__(
        self,
        head: Atom,
        quantifiers: Iterable[Quantifier] = (),
        body: Iterable[Literal] = (),
        set_typed: Iterable[str] = (),
    ) -> None:
        self.head = head
        self.quantifiers = tuple(
            q if isinstance(q, Quantifier) else Quantifier(*q)
            for q in quantifiers
        )
        self.body = tuple(body)
        # free variables declared to be of type set (LPS is typed);
        # quantifier range variables are set-typed implicitly.
        self.set_typed = frozenset(set_typed)
        element_vars = {q.element_var for q in self.quantifiers}
        if len(element_vars) != len(self.quantifiers):
            raise ValueError("duplicate quantified element variable")
        head_vars = head.variables()
        if head_vars & element_vars:
            raise ValueError(
                "quantified element variables may not occur in the head"
            )

    def free_variables(self) -> frozenset[str]:
        """Variables to be bound from the database: everything except
        the quantified element variables."""
        element_vars = {q.element_var for q in self.quantifiers}
        out = set(self.head.variables())
        for lit in self.body:
            out |= lit.variables()
        for q in self.quantifiers:
            out.add(q.set_var)
        return frozenset(out - element_vars)

    def set_variables(self) -> tuple[str, ...]:
        """Quantifier range variables, in order, without duplicates."""
        seen: list[str] = []
        for q in self.quantifiers:
            if q.set_var not in seen:
                seen.append(q.set_var)
        return tuple(seen)

    def typed_set_variables(self) -> tuple[str, ...]:
        """All set-typed free variables: quantifier ranges first, then
        declared set-typed variables, deterministically ordered."""
        out = list(self.set_variables())
        for name in sorted(self.set_typed):
            if name not in out:
                out.append(name)
        return tuple(out)

    def __repr__(self) -> str:
        quants = "".join(
            f"(forall {q.element_var} in {q.set_var}) " for q in self.quantifiers
        )
        body = ", ".join(format_literal(lit) for lit in self.body)
        return f"LPSRule({format_atom(self.head)} <- {quants}[{body}])"


class LPSProgram:
    """A finite set of LPS rules."""

    __slots__ = ("rules",)

    def __init__(self, rules: Iterable[LPSRule] = ()) -> None:
        self.rules = tuple(rules)

    def __iter__(self):
        return iter(self.rules)

    def __len__(self) -> int:
        return len(self.rules)

    def predicates(self) -> frozenset[str]:
        out: set[str] = set()
        for rule in self.rules:
            out.add(rule.head.pred)
            for lit in rule.body:
                out.add(lit.atom.pred)
        return frozenset(out)

    def __repr__(self) -> str:
        return f"LPSProgram({len(self.rules)} rules)"
