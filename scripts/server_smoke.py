#!/usr/bin/env python
"""End-to-end smoke test for ``repro serve`` (used by CI).

Starts the server as a real subprocess on a temp durable store, runs a
scripted client session (updates, queries under every strategy, an
explain, stats), SIGTERMs it, and then restarts to assert the graceful
shutdown checkpointed: the second start must restore from the snapshot
with zero WAL records replayed and still answer the same queries.

Exit code 0 on success; prints the failing step otherwise.

Run:  PYTHONPATH=src python scripts/server_smoke.py
"""

from __future__ import annotations

import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.server import Client  # noqa: E402

PROGRAM = """
% transitive closure over a base relation
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
"""


def start_server(program: Path, db: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(program),
            "--port", "0", "--db", str(db),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    banner: list[str] = []
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        match = re.search(r"% serving on [^:]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise SystemExit(f"FAIL: server did not start:\n{''.join(banner)}")


def stop_server(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: server exited {proc.returncode}:\n{out}")
    return out


def check(label: str, condition: bool) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {label}")
    print(f"ok: {label}")


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ldl1-server-smoke-"))
    try:
        program = workdir / "prog.ldl"
        program.write_text(PROGRAM)
        db = workdir / "db"

        proc, port = start_server(program, db)
        try:
            with Client("127.0.0.1", port) as client:
                check("ping", client.ping())
                check(
                    "add_facts",
                    client.add_facts("e", [(1, 2), (2, 3), (3, 4)]) == 3,
                )
                expected = [{"X": 2}, {"X": 3}, {"X": 4}]
                check("query", client.query("? t(1, X).") == expected)
                check(
                    "magic query",
                    client.query("? t(1, X).", strategy="magic") == expected,
                )
                check("remove_facts", client.remove_facts("e", [(3, 4)]) == 1)
                check(
                    "query after removal",
                    client.query("? t(1, X).") == expected[:2],
                )
                check(
                    "explain",
                    "t(1, 3)" in (client.explain("t(1, 3)") or ""),
                )
                stats = client.stats()
                check(
                    "stats",
                    stats["server"]["errors_total"] == 0
                    and stats["session"]["durable"],
                )
        finally:
            out = stop_server(proc)
        check(
            "graceful shutdown checkpointed",
            "% shutdown: durable session checkpointed" in out,
        )

        # restart: must come back from the snapshot, no WAL replay
        proc, port = start_server(program, db)
        try:
            with Client("127.0.0.1", port) as client:
                check(
                    "restart answers",
                    client.query("? t(1, X).") == [{"X": 2}, {"X": 3}],
                )
                store = client.stats()["session"]["store"]
                check(
                    "snapshot restore",
                    store["restore_mode"] == "snapshot"
                    and store["wal_records_replayed"] == 0,
                )
        finally:
            stop_server(proc)
        print("server smoke test passed")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
