#!/usr/bin/env python
"""End-to-end smoke test for ``repro serve`` (used by CI).

Starts the server as a real subprocess on a temp durable store — line
protocol plus HTTP gateway (``--http 0``) — runs a scripted client
session (updates, queries under every strategy, an explain, stats),
drives the answer cache through a full hit/invalidate/hit cycle over
both protocols, SIGTERMs it, and then restarts to assert the graceful
shutdown checkpointed: the second start must restore from the snapshot
with zero WAL records replayed and still answer the same queries.

Exit code 0 on success; prints the failing step otherwise.

Run:  PYTHONPATH=src python scripts/server_smoke.py
"""

from __future__ import annotations

import http.client
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(ROOT / "src"))

from repro.server import Client  # noqa: E402

PROGRAM = """
% transitive closure over a base relation
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
"""


def start_server(
    program: Path, db: Path, http_port: bool = False
) -> tuple[subprocess.Popen, int, int | None]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    argv = [
        sys.executable, "-m", "repro", "serve", str(program),
        "--port", "0", "--db", str(db),
    ]
    if http_port:
        argv += ["--http", "0"]
    proc = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=str(ROOT),
    )
    banner: list[str] = []
    port = None
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        banner.append(line)
        match = re.search(r"% serving on [^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            if not http_port:
                return proc, port, None
            continue
        match = re.search(r"% http gateway on [^:]+:(\d+)", line)
        if match and port is not None:
            return proc, port, int(match.group(1))
    proc.kill()
    raise SystemExit(f"FAIL: server did not start:\n{''.join(banner)}")


def stop_server(proc: subprocess.Popen) -> str:
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    if proc.returncode != 0:
        raise SystemExit(f"FAIL: server exited {proc.returncode}:\n{out}")
    return out


def check(label: str, condition: bool) -> None:
    if not condition:
        raise SystemExit(f"FAIL: {label}")
    print(f"ok: {label}")


def http_call(port: int, method: str, path: str, body: dict | None = None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    try:
        payload = None if body is None else json.dumps(body)
        headers = {"Content-Type": "application/json"} if payload else {}
        conn.request(method, path, payload, headers)
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ldl1-server-smoke-"))
    try:
        program = workdir / "prog.ldl"
        program.write_text(PROGRAM)
        db = workdir / "db"

        proc, port, http_port = start_server(program, db, http_port=True)
        try:
            with Client("127.0.0.1", port) as client:
                check("ping", client.ping())
                check(
                    "add_facts",
                    client.add_facts("e", [(1, 2), (2, 3), (3, 4)]) == 3,
                )
                expected = [{"X": 2}, {"X": 3}, {"X": 4}]
                check("query", client.query("? t(1, X).") == expected)
                check(
                    "magic query",
                    client.query("? t(1, X).", strategy="magic") == expected,
                )
                check("remove_facts", client.remove_facts("e", [(3, 4)]) == 1)
                check(
                    "query after removal",
                    client.query("? t(1, X).") == expected[:2],
                )
                check(
                    "explain",
                    "t(1, 3)" in (client.explain("t(1, 3)") or ""),
                )
                stats = client.stats()
                check(
                    "stats",
                    stats["server"]["errors_total"] == 0
                    and stats["session"]["durable"],
                )

                # HTTP gateway: same session over HTTP/1.1
                status, body = http_call(http_port, "GET", "/v1/ping")
                check("http ping", status == 200 and body["ok"])
                status, body = http_call(
                    http_port, "POST", "/v1/query", {"q": "? t(1, X)."}
                )
                check("http query", status == 200 and body["count"] == 2)
                status, body = http_call(http_port, "GET", "/v1/nope")
                check("http 404", status == 404 and not body["ok"])

                # answer cache: hit, precise invalidate, hit again
                ask = {"q": "? t(1, X)."}
                first = client.call("query", **ask)["cache"]
                second = client.call("query", **ask)["cache"]
                check(
                    "cache hit cycle",
                    first in ("miss", "hit") and second == "hit",
                )
                client.add_facts("e", [(3, 4)])
                status, body = http_call(
                    http_port, "POST", "/v1/query", ask
                )
                check(
                    "cache invalidated by write",
                    status == 200
                    and body["cache"] == "miss"
                    and body["count"] == 3,
                )
                check(
                    "cache refill hit over http",
                    http_call(http_port, "POST", "/v1/query", ask)[1]["cache"]
                    == "hit",
                )
                client.remove_facts("e", [(3, 4)])
                cache_stats = client.stats()["answer_cache"]
                check(
                    "cache stats",
                    cache_stats["hits"] >= 2
                    and cache_stats["entries_invalidated"] >= 1,
                )
        finally:
            out = stop_server(proc)
        check(
            "graceful shutdown checkpointed",
            "% shutdown: durable session checkpointed" in out,
        )

        # restart: must come back from the snapshot, no WAL replay
        proc, port, _ = start_server(program, db)
        try:
            with Client("127.0.0.1", port) as client:
                check(
                    "restart answers",
                    client.query("? t(1, X).") == [{"X": 2}, {"X": 3}],
                )
                store = client.stats()["session"]["store"]
                check(
                    "snapshot restore",
                    store["restore_mode"] == "snapshot"
                    and store["wal_records_replayed"] == 0,
                )
        finally:
            stop_server(proc)
        print("server smoke test passed")
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
