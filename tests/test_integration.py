"""Kitchen-sink integration tests combining every language feature.

Each scenario exercises multiple subsystems at once — parsing,
stratification, grouping, negation, set built-ins, arithmetic — and
cross-checks all evaluation strategies where applicable.
"""


from repro import LDL
from repro.engine import evaluate
from repro.engine.topdown import evaluate_topdown
from repro.magic import evaluate_magic, supplementary_rewrite
from repro.parser import parse_program, parse_query

from tests.helpers import facts_of, run


class TestCourseworkScenario:
    """A registrar database: prerequisites, transcripts, graduation."""

    SRC = """
    % course prerequisites (recursive)
    prereq(calc2, calc1). prereq(calc3, calc2).
    prereq(algo, discrete). prereq(ml, calc3). prereq(ml, algo).
    requires(C, P) <- prereq(C, P).
    requires(C, P) <- prereq(C, Q), requires(Q, P).

    % transcripts
    took(ann, calc1). took(ann, calc2). took(ann, calc3).
    took(ann, discrete). took(ann, algo).
    took(bob, calc1). took(bob, discrete).

    % a student is blocked from a course if some requirement is missing
    student(S) <- took(S, _).
    course(C) <- prereq(C, _).
    course(P) <- prereq(_, P).
    missing(S, C, P) <- student(S), requires(C, P), ~took(S, P).
    blocked(S, C) <- missing(S, C, _).
    eligible(S, C) <- student(S), course(C), ~blocked(S, C), ~took(S, C).

    % per-student sets of taken courses, with cardinality
    transcript(S, <C>) <- took(S, C).
    credits(S, N) <- transcript(S, T), card(T, N).
    """

    def test_eligibility(self):
        result = run(self.SRC)
        eligible = facts_of(result, "eligible")
        assert "eligible(ann, ml)" in eligible
        assert "eligible(bob, ml)" not in eligible
        assert "eligible(bob, calc2)" in eligible

    def test_transcript_sets(self):
        result = run(self.SRC)
        credits = facts_of(result, "credits")
        assert "credits(ann, 5)" in credits
        assert "credits(bob, 2)" in credits

    def test_strategies_agree(self):
        program, _ = parse_program(self.SRC)
        query = parse_query("? eligible(X, ml).")
        full = evaluate(program).answer_atoms(query)
        magic = evaluate_magic(program, query).answer_atoms()
        sup = evaluate_magic(
            program, query, rewrite=supplementary_rewrite
        ).answer_atoms()
        topdown, _ = evaluate_topdown(program, query)
        assert magic == full
        assert sup == full
        assert topdown == full

    def test_naive_seminaive_agree(self):
        a = run(self.SRC, strategy="naive")
        b = run(self.SRC, strategy="seminaive")
        assert a.database == b.database


class TestInventoryScenario:
    """Warehouses with set-valued stock and set algebra."""

    SRC = """
    stock(east, {bolts, nuts, washers}).
    stock(west, {nuts, screws}).
    stock(north, {}).

    combined(A, B, S) <- stock(A, SA), stock(B, SB), A != B,
                         union(SA, SB, S).
    covers(A, B) <- stock(A, SA), stock(B, SB), subset(SB, SA).
    item_at(W, I) <- stock(W, S), member(I, S).
    where_is(I, <W>) <- item_at(W, I).
    """

    def test_union_and_subset(self):
        result = run(self.SRC)
        combined = facts_of(result, "combined")
        assert "combined(east, west, {bolts, nuts, screws, washers})" in combined
        covers = facts_of(result, "covers")
        # the empty stock is covered by everyone; nothing covers east
        assert "covers(east, north)" in covers
        assert "covers(west, east)" not in covers

    def test_inverted_index(self):
        result = run(self.SRC)
        where = facts_of(result, "where_is")
        assert "where_is(nuts, {east, west})" in where
        assert "where_is(screws, {west})" in where

    def test_magic_on_set_query(self):
        program, _ = parse_program(self.SRC)
        query = parse_query("? where_is(nuts, W).")
        full = evaluate(program).answer_atoms(query)
        magic = evaluate_magic(program, query).answer_atoms()
        assert magic == full


class TestThreeLayerPipeline:
    """Grouping over grouping over negation: three genuine strata."""

    SRC = """
    raw(a, 1). raw(a, 2). raw(b, 2). raw(b, 3). raw(c, 9).
    noisy(9).
    clean(K, V) <- raw(K, V), ~noisy(V).
    bucket(K, <V>) <- clean(K, V).
    profile(<S>) <- bucket(K, S).
    singleton_key(K) <- bucket(K, S), card(S, N), N = 1.
    """

    def test_layering_depth(self):
        from repro.program.stratify import stratify

        program, _ = parse_program(self.SRC)
        layering = stratify(program)
        assert layering.index("profile") > layering.index("bucket")
        assert layering.index("bucket") > layering.index("clean")
        assert layering.index("clean") > layering.index("noisy")

    def test_pipeline_output(self):
        result = run(self.SRC)
        assert facts_of(result, "bucket") == {
            "bucket(a, {1, 2})",
            "bucket(b, {2, 3})",
        }
        assert facts_of(result, "profile") == {"profile({{1, 2}, {2, 3}})"}
        assert facts_of(result, "singleton_key") == set()

    def test_c_disappears_entirely(self):
        # c's only value is noisy: no clean facts, empty group, no bucket
        result = run(self.SRC)
        keys = {atom.args[0].value for atom in result.database.atoms("bucket")}
        assert "c" not in keys


class TestFunctionSymbolsWithSets:
    SRC = """
    point(p(1, 2)). point(p(3, 4)).
    cloud(<P>) <- point(P).
    boxed(K, b(K, S)) <- cloud(S), tag(K).
    tag(t1). tag(t2).
    """

    def test_structured_terms_containing_sets(self):
        result = run(self.SRC)
        boxed = facts_of(result, "boxed")
        assert "boxed(t1, b(t1, {p(1, 2), p(3, 4)}))" in boxed
        assert len(boxed) == 2


class TestSessionRoundtrip:
    def test_python_values_through_everything(self):
        db = LDL(
            """
            merged(A, B, U) <- bag(A, SA), bag(B, SB), A < B, union(SA, SB, U).
            big(A) <- bag(A, S), card(S, N), N >= 3.
            """
        )
        db.fact("bag", "x", frozenset({1, 2}))
        db.fact("bag", "y", frozenset({2, 3}))
        db.fact("bag", "z", frozenset({1, 2, 3}))
        merged = dict(
            ((a, b), u) for a, b, u in db.extension("merged")
        )
        assert merged[("x", "y")] == frozenset({1, 2, 3})
        assert db.extension("big") == [("z",)]
