"""Tests for the tabled top-down evaluator (repro.engine.topdown)."""

import pytest

from repro.engine import evaluate
from repro.engine.topdown import TopDownEvaluator, evaluate_topdown
from repro.errors import NotAdmissibleError
from repro.parser import parse_program, parse_query, parse_rules
from repro.terms.pretty import format_atom

ANCESTOR = """
parent(a, b). parent(b, c). parent(c, d). parent(e, f).
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
"""

YOUNG = """
p(adam, john). p(adam, mary). p(eve, john). p(eve, mary). p(john, bob).
siblings(john, mary). siblings(mary, john).
a(X, Y) <- p(X, Y).
a(X, Y) <- a(X, Z), a(Z, Y).
sg(X, Y) <- siblings(X, Y).
sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
has_desc(X) <- a(X, _).
young(X, <Y>) <- sg(X, Y), ~has_desc(X).
"""


def check(src, query_text):
    program, _ = parse_program(src)
    query = parse_query(query_text)
    topdown, stats = evaluate_topdown(program, query)
    full = evaluate(program).answer_atoms(query)
    assert topdown == full
    return topdown, stats


class TestBasicQueries:
    def test_bound_free(self):
        answers, _ = check(ANCESTOR, "? anc(a, X).")
        assert [format_atom(a) for a in answers] == [
            "anc(a, b)",
            "anc(a, c)",
            "anc(a, d)",
        ]

    def test_free_bound(self):
        check(ANCESTOR, "? anc(X, d).")

    def test_bound_bound_yes_no(self):
        yes, _ = check(ANCESTOR, "? anc(a, d).")
        assert yes
        no, _ = check(ANCESTOR, "? anc(a, f).")
        assert not no

    def test_free_free(self):
        answers, _ = check(ANCESTOR, "? anc(X, Y).")
        assert len(answers) == 7

    def test_goal_directedness(self):
        # the e-f chain must not be explored for a query rooted at a.
        program, _ = parse_program(ANCESTOR)
        evaluator = TopDownEvaluator(program)
        answers = evaluator.query(parse_query("? anc(a, X)."))
        assert len(answers) == 3
        touched = {pred for (pred, _key) in evaluator._tables}
        assert touched == {"anc"}
        assert all(
            key[0] is None or key[0].value != "e"
            for (_p, key) in evaluator._tables
        )


class TestNegationAndGrouping:
    @pytest.mark.parametrize(
        "query",
        [
            "? young(mary, S).",
            "? young(john, S).",
            "? young(bob, S).",
            "? young(X, S).",
            "? has_desc(adam).",
            "? sg(john, Y).",
        ],
    )
    def test_young_program(self, query):
        check(YOUNG, query)

    def test_grouping_with_bound_set(self):
        answers, _ = check(YOUNG, "? young(mary, {john}).")
        assert answers

    def test_grouping_with_wrong_bound_set(self):
        answers, _ = check(YOUNG, "? young(mary, {bob}).")
        assert not answers

    def test_stratified_negation_chain(self):
        src = """
        b(1). b(2). b(3). r(1).
        p(X) <- b(X), ~r(X).
        q(X) <- b(X), ~p(X).
        """
        answers, _ = check(src, "? q(X).")
        assert [format_atom(a) for a in answers] == ["q(1)"]

    def test_inadmissible_rejected(self):
        program = parse_rules("p(X) <- b(X), ~p(X). b(1).")
        with pytest.raises(NotAdmissibleError):
            TopDownEvaluator(program)


class TestSetsTopDown:
    def test_parts_explosion_goal_directed(self):
        src = """
        p(1,2). p(1,7). p(2,3). p(2,4). p(3,5). p(3,6).
        q(4,20). q(5,10). q(6,15). q(7,200).
        part(P, <S>) <- p(P, S).
        tc({X}, C) <- q(X, C).
        tc({X}, C) <- part(X, S), tc(S, C).
        tc(S, C) <- part(P, SS), subset(S, SS), partition(S, S1, S2),
                    S1 != {}, S2 != {}, tc(S1, C1), tc(S2, C2), C = C1 + C2.
        result(X, C) <- tc({X}, C).
        """
        answers, stats = check(src, "? result(1, C).")
        assert [format_atom(a) for a in answers] == ["result(1, 245)"]
        # goal-directed: far fewer subgoals than the full model's facts
        assert stats.subgoals < 15

    def test_set_valued_query_argument(self):
        src = "g(K, <V>) <- e(K, V). e(a, 1). e(a, 2). e(b, 3)."
        answers, _ = check(src, "? g(a, S).")
        assert [format_atom(a) for a in answers] == ["g(a, {1, 2})"]


class TestStats:
    def test_stats_populated(self):
        program, _ = parse_program(ANCESTOR)
        _, stats = evaluate_topdown(program, parse_query("? anc(a, X)."))
        assert stats.subgoals >= 1
        assert stats.answers >= 3
        assert stats.driver_rounds >= 1

    def test_memoization_shares_subgoals(self):
        # diamond: d reachable from a two ways; the sub-query for the
        # shared suffix must be tabled once.
        src = """
        e(a, b1). e(a, b2). e(b1, c). e(b2, c). e(c, d).
        t(X, Y) <- e(X, Y).
        t(X, Y) <- e(X, Z), t(Z, Y).
        """
        program, _ = parse_program(src)
        _, stats = evaluate_topdown(program, parse_query("? t(a, X)."))
        # subgoals: a, b1, b2, c, d at most
        assert stats.subgoals <= 5
