"""Round-trip tests for the pretty-printer (repro.terms.pretty)."""

import pytest

from repro.parser import parse_program, parse_rule, parse_term
from repro.terms.pretty import format_program, format_rule, format_term


TERMS = [
    "x",
    "X",
    "42",
    "-7",
    "3.5",
    "'hello world'",
    "f(a, X)",
    "{}",
    "{1, 2, 3}",
    "{{1}, {2, 3}}",
    "{X, Y | R}",
    "<X>",
    "<h(Y, <Z>)>",
    "(X + Y)",
    "(X mod 2)",
    "f(g(X), {a, b})",
]


@pytest.mark.parametrize("src", TERMS)
def test_term_roundtrip(src):
    term = parse_term(src)
    assert parse_term(format_term(term)) == term


RULES = [
    "parent(a, b).",
    "p(X) <- q(X), ~r(X).",
    "part(P, <S>) <- p(P, S).",
    "tc(S, C) <- partition(S, S1, S2), tc(S1, C1), tc(S2, C2), C = (C1 + C2).",
    "deal({X, Y}) <- book(X, P1), book(Y, P2), P1 + P2 < 100.",
    "q({1, 2, {3}}).",
    "p(X) <- X = {1 | R}, member(2, R).",
    "zero_arity <- other.",
]


@pytest.mark.parametrize("src", RULES)
def test_rule_roundtrip(src):
    rule = parse_rule(src)
    assert parse_rule(format_rule(rule)) == rule


def test_program_roundtrip():
    src = """
    parent(a, b). parent(b, c).
    ancestor(X, Y) <- parent(X, Y).
    ancestor(X, Y) <- parent(X, Z), ancestor(Z, Y).
    young(X, <Y>) <- ~a(X, Z), sg(X, Y).
    """
    program, _ = parse_program(src)
    reparsed, _ = parse_program(format_program(program))
    assert reparsed == program


def test_quoted_symbols_stay_quoted():
    term = parse_term("'Weird Symbol!'")
    text = format_term(term)
    assert text.startswith("'") and parse_term(text) == term


def test_symbol_needing_quotes_roundtrips():
    # a constant built programmatically with spaces must print quoted
    from repro.terms.term import Const

    term = Const("two words")
    assert parse_term(format_term(term)) == term


def test_infix_comparison_printing():
    rule = parse_rule("p(X) <- q(X), X < 3.")
    assert "X < 3" in format_rule(rule)


def test_negative_literal_printing():
    rule = parse_rule("p(X) <- q(X), not r(X).")
    assert "~r(X)" in format_rule(rule)
