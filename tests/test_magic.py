"""Tests for adornment, magic rewriting, and constrained evaluation (§6)."""

import pytest

from repro.engine import evaluate
from repro.errors import MagicRewriteError
from repro.magic import adorn, evaluate_magic, magic_rewrite
from repro.parser import parse_program, parse_query, parse_rules
from repro.terms.pretty import format_atom, format_rule

ANCESTOR = """
parent(a, b). parent(b, c). parent(c, d). parent(e, f).
anc(X, Y) <- parent(X, Y).
anc(X, Y) <- parent(X, Z), anc(Z, Y).
"""

SAME_GENERATION = """
p(adam, john). p(adam, mary). p(eve, john). p(eve, mary). p(john, bob).
siblings(john, mary). siblings(mary, john).
sg(X, Y) <- siblings(X, Y).
sg(X, Y) <- p(Z1, X), sg(Z1, Z2), p(Z2, Y).
"""

YOUNG = SAME_GENERATION + """
a(X, Y) <- p(X, Y).
a(X, Y) <- a(X, Z), a(Z, Y).
has_desc(X) <- a(X, _).
young(X, <Y>) <- sg(X, Y), ~has_desc(X).
"""


def answers_match(src, query_text):
    """Magic answers must equal full-model answers (Theorem 4)."""
    program, _ = parse_program(src)
    query = parse_query(query_text)
    magic = evaluate_magic(program, query)
    full = evaluate(program)
    assert magic.answer_atoms() == full.answer_atoms(query)
    return magic, full


class TestAdornment:
    def test_query_adornment_bound_first(self):
        program = parse_rules(ANCESTOR)
        adorned = adorn(program, parse_query("? anc(a, X)."))
        assert adorned.query_pred == "anc__bf"
        heads = {r.rule.head.pred for r in adorned.rules}
        assert heads == {"anc__bf"}

    def test_free_query(self):
        program = parse_rules(ANCESTOR)
        adorned = adorn(program, parse_query("? anc(X, Y)."))
        assert adorned.query_pred == "anc__ff"

    def test_bound_second_argument(self):
        program = parse_rules(ANCESTOR)
        adorned = adorn(program, parse_query("? anc(X, d)."))
        assert adorned.query_pred == "anc__fb"

    def test_edb_predicates_not_adorned(self):
        program = parse_rules(ANCESTOR)
        adorned = adorn(program, parse_query("? anc(a, X)."))
        for ar in adorned.rules:
            for lit in ar.rule.body:
                if lit.atom.pred.startswith("parent"):
                    assert lit.atom.pred == "parent"

    def test_sip_threads_bindings_left_to_right(self):
        # in rule 4 of the paper, Z1 becomes bound through p(Z1, X).
        program = parse_rules(SAME_GENERATION)
        adorned = adorn(program, parse_query("? sg(john, Y)."))
        recursive = [
            ar
            for ar in adorned.rules
            if any(l.atom.pred.startswith("sg") for l in ar.rule.body)
        ]
        assert recursive
        for ar in recursive:
            sg_literals = [
                (lit, adn)
                for lit, adn in zip(ar.rule.body, ar.body_adornments)
                if lit.atom.pred.startswith("sg")
            ]
            assert sg_literals[0][1] == "bf"  # paper: sg stays bf

    def test_grouped_head_argument_never_bound(self):
        # footnote 6: a bound argument appearing only as <X> cannot
        # restrict X.
        program, _ = parse_program(YOUNG)
        adorned = adorn(program, parse_query("? young(mary, S)."))
        young_rules = [
            ar for ar in adorned.rules if ar.rule.head.pred.startswith("young")
        ]
        assert all(ar.head_adornment == "bf" for ar in young_rules)

    def test_negative_literal_produces_no_bindings(self):
        program = parse_rules(
            """
            b(1). b(2). r(1). s(1, 10). s(2, 20).
            p(X, Y) <- b(X), ~r(X), s(X, Y).
            """
        )
        adorned = adorn(program, parse_query("? p(1, Y)."))
        [ar] = adorned.rules
        # after ~r(X), X stays bound but nothing new is added.
        assert ar.body_adornments == ("b", "b", "bf")

    def test_builtin_query_rejected(self):
        with pytest.raises(MagicRewriteError):
            adorn(parse_rules(ANCESTOR), parse_query("? member(X, {1})."))


class TestRewrite:
    def test_textbook_magic_ancestor(self):
        program = parse_rules(ANCESTOR)
        mp = magic_rewrite(program, parse_query("? anc(a, X)."))
        rules = {format_rule(r) for r in mp.magic_rules + mp.modified_rules}
        assert "m_anc__bf(Z) <- m_anc__bf(X), parent(X, Z)." in rules
        assert "anc__bf(X, Y) <- m_anc__bf(X), parent(X, Y)." in rules
        assert format_atom(mp.seed) == "m_anc__bf(a)"

    def test_grouping_rule_deferred(self):
        program, _ = parse_program(YOUNG)
        mp = magic_rewrite(program, parse_query("? young(mary, S)."))
        assert any(r.is_grouping() for r in mp.deferred_rules)
        assert not any(r.is_grouping() for r in mp.modified_rules)

    def test_negation_demands_full_predicate(self):
        # "if a rule contains ~p, we must evaluate p fully for the
        # bound arguments": a magic rule must exist for the negated
        # predicate.
        program, _ = parse_program(YOUNG)
        mp = magic_rewrite(program, parse_query("? young(mary, S)."))
        magic_heads = {r.head.pred for r in mp.magic_rules}
        assert "m_has_desc__b" in magic_heads

    def test_edb_query_rejected(self):
        program = parse_rules(ANCESTOR)
        with pytest.raises(MagicRewriteError):
            magic_rewrite(program, parse_query("? parent(a, X)."))

    def test_zero_ary_magic_for_free_query(self):
        program = parse_rules(ANCESTOR)
        mp = magic_rewrite(program, parse_query("? anc(X, Y)."))
        assert mp.seed.arity == 0


class TestEquivalence:
    """Theorem 4: (P^mg ∪ seed) computes the paper's answer set."""

    def test_ancestor_bound_free(self):
        answers_match(ANCESTOR, "? anc(a, X).")

    def test_ancestor_free_bound(self):
        answers_match(ANCESTOR, "? anc(X, d).")

    def test_ancestor_bound_bound(self):
        answers_match(ANCESTOR, "? anc(a, d).")
        answers_match(ANCESTOR, "? anc(a, f).")  # no answer

    def test_ancestor_free_free(self):
        answers_match(ANCESTOR, "? anc(X, Y).")

    def test_same_generation(self):
        answers_match(SAME_GENERATION, "? sg(john, Y).")
        answers_match(SAME_GENERATION, "? sg(mary, Y).")
        answers_match(SAME_GENERATION, "? sg(bob, Y).")

    def test_young_all_constants(self):
        for person in ("adam", "eve", "john", "mary", "bob"):
            answers_match(YOUNG, f"? young({person}, S).")

    def test_query_on_grouped_set_constant(self):
        answers_match(YOUNG, "? young(mary, {john}).")

    def test_negation_on_edb(self):
        src = """
        b(1). b(2). bad(1).
        ok(X) <- b(X), ~bad(X).
        good(X) <- ok(X).
        """
        answers_match(src, "? good(X).")
        answers_match(src, "? good(2).")

    def test_multi_layer_grouping(self):
        src = """
        e(a, 1). e(a, 2). e(b, 3).
        g1(K, <V>) <- e(K, V).
        size(K, N) <- g1(K, S), card(S, N).
        """
        answers_match(src, "? size(a, N).")
        answers_match(src, "? size(X, N).")

    def test_set_arguments_in_query(self):
        src = """
        item(a, {1, 2}). item(b, {3}).
        pick(K, S) <- item(K, S).
        bigger(K) <- pick(K, S), card(S, N), N > 1.
        """
        answers_match(src, "? bigger(X).")
        answers_match(src, "? bigger(a).")


class TestRelevanceRestriction:
    def test_magic_computes_fewer_facts_on_chains(self):
        # two disconnected chains: magic must not explore the second.
        chain1 = "".join(f"parent(a{i}, a{i + 1}). " for i in range(20))
        chain2 = "".join(f"parent(b{i}, b{i + 1}). " for i in range(20))
        src = chain1 + chain2 + """
        anc(X, Y) <- parent(X, Y).
        anc(X, Y) <- parent(X, Z), anc(Z, Y).
        """
        program, _ = parse_program(src)
        query = parse_query("? anc(a0, X).")
        magic = evaluate_magic(program, query)
        full = evaluate(program)
        assert magic.answer_atoms() == full.answer_atoms(query)
        derived_by_magic = magic.database.count("anc__bf")
        derived_by_full = full.database.count("anc")
        # the right-linear rule still demands every suffix of chain 1,
        # but chain 2 must be untouched: about half the work.
        assert derived_by_magic <= derived_by_full / 2
        from repro.parser import parse_atom

        assert parse_atom("m_anc__bf(b0)") not in magic.database

    def test_stats_reported(self):
        program, _ = parse_program(YOUNG)
        result = evaluate_magic(program, parse_query("? young(mary, S)."))
        assert result.stats.phases >= 2
        assert result.stats.saturation.facts_derived > 0
        assert result.stats.deferred_facts >= 1

    def test_max_phases_guard(self):
        from repro.errors import UnstableMagicEvaluationError

        program, _ = parse_program(YOUNG)
        with pytest.raises(UnstableMagicEvaluationError):
            evaluate_magic(
                program, parse_query("? young(mary, S)."), max_phases=0
            )
