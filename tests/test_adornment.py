"""Dedicated unit tests for the adornment pass (repro.magic.adornment)."""

import pytest

from repro.magic import adorn, adorned_name, atom_adornment
from repro.parser import parse_atom, parse_query, parse_rules
from repro.terms.term import GroupTerm, Var


class TestAtomAdornment:
    def test_constants_are_bound(self):
        assert atom_adornment(parse_atom("p(a, X)"), set()) == "bf"

    def test_bound_variables(self):
        assert atom_adornment(parse_atom("p(X, Y)"), {"X"}) == "bf"
        assert atom_adornment(parse_atom("p(X, Y)"), {"X", "Y"}) == "bb"

    def test_compound_argument_bound_when_all_vars_bound(self):
        assert atom_adornment(parse_atom("p(f(X, Y))"), {"X"}) == "f"
        assert atom_adornment(parse_atom("p(f(X, Y))"), {"X", "Y"}) == "b"

    def test_group_terms_always_free(self):
        from repro.program.rule import Atom

        atom = Atom("p", (Var("X"), GroupTerm(Var("Y"))))
        assert atom_adornment(atom, {"X", "Y"}) == "bf"

    def test_zero_arity(self):
        assert atom_adornment(parse_atom("halt"), set()) == ""


class TestAdornedNames:
    def test_naming_scheme(self):
        assert adorned_name("anc", "bf") == "anc__bf"

    def test_name_clash_detected(self):
        from repro.errors import MagicRewriteError

        program = parse_rules("p__bf(X) <- q(X). q(1).")
        with pytest.raises(MagicRewriteError):
            adorn(program, parse_query("? p__bf(1)."))


class TestDemandPropagation:
    def test_multiple_adornments_of_one_predicate(self):
        # anc is demanded both bf (outer) and bb (via the join below)
        program = parse_rules(
            """
            anc(X, Y) <- e(X, Y).
            anc(X, Y) <- e(X, Z), anc(Z, Y).
            twice(X, Y) <- anc(X, Y), anc(Y, X).
            """
        )
        adorned = adorn(program, parse_query("? twice(a, Y)."))
        heads = {ar.rule.head.pred for ar in adorned.rules}
        assert "anc__bf" in heads
        assert "anc__bb" in heads

    def test_unreachable_rules_dropped(self):
        program = parse_rules(
            """
            anc(X, Y) <- e(X, Y).
            unrelated(X) <- f(X).
            """
        )
        adorned = adorn(program, parse_query("? anc(a, Y)."))
        heads = {ar.rule.head.pred for ar in adorned.rules}
        assert heads == {"anc__bf"}

    def test_facts_of_idb_predicates_adorned(self):
        program = parse_rules(
            """
            anc(seed, root).
            anc(X, Y) <- e(X, Y).
            """
        )
        adorned = adorn(program, parse_query("? anc(seed, Y)."))
        fact_rules = [ar for ar in adorned.rules if not ar.rule.body]
        assert fact_rules
        assert fact_rules[0].rule.head.pred == "anc__bf"

    def test_builtin_modes_propagate_bindings(self):
        program = parse_rules(
            """
            cost(X, C) <- base(X, B), C = B + 1, ref(C, X).
            ref(C, X) <- limits(C, X).
            """
        )
        adorned = adorn(program, parse_query("? cost(a, C)."))
        cost_rules = [
            ar for ar in adorned.rules if ar.rule.head.pred.startswith("cost")
        ]
        [rule] = cost_rules
        # after `C = B + 1`, C is bound; ref is demanded as bb.
        ref_index = next(
            i
            for i, lit in enumerate(rule.rule.body)
            if lit.atom.pred.startswith("ref")
        )
        assert rule.body_adornments[ref_index] == "bb"

    def test_prefix_bound_recorded(self):
        program = parse_rules("p(X, Y) <- e(X, Z), f(Z, Y).")
        adorned = adorn(program, parse_query("? p(a, Y)."))
        [ar] = adorned.rules
        assert ar.prefix_bound[0] == frozenset({"X"})
        assert ar.prefix_bound[1] == frozenset({"X", "Z"})

    def test_query_adornment_field(self):
        program = parse_rules("g(K, <V>) <- e(K, V).")
        adorned = adorn(program, parse_query("? g(a, {1})."))
        # the grouped position is forced free even though {1} is ground
        assert adorned.query_adornment == "bf"
