"""Property-based oracle tests for the LDL1.5 head-term compiler."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.parser import parse_rules
from repro.program.rule import Atom
from repro.program.wellformed import check_program
from repro.terms.term import Const, Func, SetVal
from repro.transform import compile_head_terms

triples = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 4)),
    min_size=1,
    max_size=15,
    unique=True,
)


def edb(rows):
    return [
        Atom("e3", (Const(k), Const(a), Const(b))) for k, a, b in rows
    ]


def extension(result, pred):
    return set(result.database.atoms(pred))


@given(triples)
@settings(max_examples=40, deadline=None)
def test_distribution_matches_python_groupby(rows):
    program = compile_head_terms(
        parse_rules("out(K, <A>, <B>) <- e3(K, A, B).")
    )
    check_program(program)
    result = evaluate(program, edb=edb(rows))

    expected = set()
    by_key: dict[int, tuple[set, set]] = {}
    for k, a, b in rows:
        slot = by_key.setdefault(k, (set(), set()))
        slot[0].add(a)
        slot[1].add(b)
    for k, (aset, bset) in by_key.items():
        expected.add(
            Atom(
                "out",
                (
                    Const(k),
                    SetVal(Const(v) for v in aset),
                    SetVal(Const(v) for v in bset),
                ),
            )
        )
    assert extension(result, "out") == expected


@given(triples)
@settings(max_examples=40, deadline=None)
def test_nested_grouping_matches_paper_semantics(rows):
    # out(K, <h(A, <B>)>): the inner B-set is keyed by A *alone*
    # (paper §4.2: "not necessarily with this teacher").
    program = compile_head_terms(
        parse_rules("out(K, <h(A, <B>)>) <- e3(K, A, B).")
    )
    check_program(program)
    result = evaluate(program, edb=edb(rows))

    b_by_a: dict[int, set[int]] = {}
    for _k, a, b in rows:
        b_by_a.setdefault(a, set()).add(b)
    expected = set()
    by_key: dict[int, set] = {}
    for k, a, _b in rows:
        by_key.setdefault(k, set()).add(a)
    for k, aset in by_key.items():
        h_tuples = {
            Func("h", (Const(a), SetVal(Const(v) for v in b_by_a[a])))
            for a in aset
        }
        expected.add(Atom("out", (Const(k), SetVal(h_tuples))))
    assert extension(result, "out") == expected


@given(triples)
@settings(max_examples=30, deadline=None)
def test_alternative_semantics_keys_inner_by_outer_too(rows):
    # (ii)': the inner B-set is keyed by (K, A).
    program = compile_head_terms(
        parse_rules("out(K, <h(A, <B>)>) <- e3(K, A, B)."),
        alternative=True,
    )
    check_program(program)
    result = evaluate(program, edb=edb(rows))

    b_by_ka: dict[tuple[int, int], set[int]] = {}
    for k, a, b in rows:
        b_by_ka.setdefault((k, a), set()).add(b)
    expected = set()
    by_key: dict[int, set] = {}
    for k, a, _b in rows:
        by_key.setdefault(k, set()).add(a)
    for k, aset in by_key.items():
        h_tuples = {
            Func("h", (Const(a), SetVal(Const(v) for v in b_by_ka[(k, a)])))
            for a in aset
        }
        expected.add(Atom("out", (Const(k), SetVal(h_tuples))))
    assert extension(result, "out") == expected


@given(triples)
@settings(max_examples=30, deadline=None)
def test_nesting_transformation_oracle(rows):
    # out(K, g(A, <B>)): one fact per (K, A) with B grouped by... the
    # paper's (iii) keys q1 on Z = all head vars outside <>, i.e. (K, A).
    program = compile_head_terms(
        parse_rules("out(K, g(A, <B>)) <- e3(K, A, B).")
    )
    check_program(program)
    result = evaluate(program, edb=edb(rows))

    b_by_ka: dict[tuple[int, int], set[int]] = {}
    for k, a, b in rows:
        b_by_ka.setdefault((k, a), set()).add(b)
    expected = {
        Atom(
            "out",
            (
                Const(k),
                Func("g", (Const(a), SetVal(Const(v) for v in bs))),
            ),
        )
        for (k, a), bs in b_by_ka.items()
    }
    assert extension(result, "out") == expected
