"""Property-based tests for layering (Lemma 3.1, Theorem 2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.parser import parse_rules
from repro.program.dependency import is_admissible
from repro.program.rule import Atom
from repro.program.stratify import linear_layerings, stratify, validate_layering
from repro.terms.term import Const


def _program_source(layers: int, with_grouping: bool) -> str:
    """A chain of strata: each layer filters the previous by negation,
    optionally topped with a grouping layer."""
    rules = ["keep0(X, Y) <- e(X, Y)."]
    for i in range(1, layers):
        rules.append(f"drop{i}(X) <- keep{i - 1}(X, Y), Y < {i}.")
        rules.append(
            f"keep{i}(X, Y) <- keep{i - 1}(X, Y), ~drop{i}(X)."
        )
    if with_grouping:
        rules.append(f"grouped(X, <Y>) <- keep{layers - 1}(X, Y).")
    return "\n".join(rules)


edges = st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6)),
    min_size=1,
    max_size=15,
    unique=True,
)


@given(st.integers(2, 5), st.booleans())
@settings(max_examples=25, deadline=None)
def test_canonical_layering_validates(layers, with_grouping):
    program = parse_rules(_program_source(layers, with_grouping))
    assert is_admissible(program)
    layering = stratify(program)
    assert validate_layering(program, layering)


@given(st.integers(2, 4), st.booleans(), edges)
@settings(max_examples=20, deadline=None)
def test_theorem2_all_layerings_same_model(layers, with_grouping, pairs):
    program = parse_rules(_program_source(layers, with_grouping))
    edb = [Atom("e", (Const(a), Const(b))) for a, b in pairs]
    reference = evaluate(program, edb=edb)
    for layering in linear_layerings(program, limit=5):
        result = evaluate(program, edb=edb, layering=layering)
        assert result.database == reference.database


@given(st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_layer_indices_respect_strictness(layers):
    program = parse_rules(_program_source(layers, with_grouping=True))
    layering = stratify(program)
    for i in range(1, layers):
        # negation forces drop_i strictly below keep_i
        assert layering.index(f"drop{i}") < layering.index(f"keep{i}")
        assert layering.index(f"keep{i - 1}") <= layering.index(f"drop{i}")
    assert layering.index("grouped") > layering.index(f"keep{layers - 1}")


@given(st.integers(2, 4), st.booleans())
@settings(max_examples=15, deadline=None)
def test_strategies_agree_on_stratified_programs(layers, with_grouping):
    program = parse_rules(_program_source(layers, with_grouping))
    edb = [Atom("e", (Const(i), Const(i + 1))) for i in range(5)]
    naive = evaluate(program, edb=edb, strategy="naive")
    semi = evaluate(program, edb=edb, strategy="seminaive")
    assert naive.database == semi.database
