"""Tests for the differential maintenance engine (repro.engine.maintain).

Unit coverage for the mode knob, the published :class:`DeltaBatch`,
LSN stamping through the durable store, and the trace event — plus a
hypothesis differential: random interleaved insert/delete scripts
(deletion-heavy, through grouping and negation cones) must leave the
delta-maintained model, the recompute-maintained model, and a
from-scratch evaluation in exact agreement.
"""

import pytest

from hypothesis import given, settings

from repro.engine import evaluate
from repro.engine.incremental import IncrementalModel
from repro.engine.maintain import (
    MAINTAIN_MODES,
    maintain_mode,
    set_maintain_mode,
)
from repro.errors import EvaluationError
from repro.observe import TraceRecorder
from repro.parser import parse_atom, parse_rules
from repro.storage.store import DurableStore
from tests.strategies import update_scripts

ANCESTOR = parse_rules(
    """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    """
)

STRATIFIED = parse_rules(
    """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    person(X) <- parent(X, _).
    person(Y) <- parent(_, Y).
    has_kid(X) <- parent(X, _).
    childless(X) <- person(X), ~has_kid(X).
    kids(P, <C>) <- parent(P, C).
    """
)


def atoms(*sources):
    return [parse_atom(s) for s in sources]


def scratch_set(program, edb):
    return evaluate(program, edb=list(edb)).database.as_set()


class TestModeKnob:
    def test_modes_are_closed(self):
        assert maintain_mode() in MAINTAIN_MODES

    def test_set_mode_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown maintenance mode"):
            set_maintain_mode("bogus")

    def test_model_pin_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown maintenance mode"):
            IncrementalModel(ANCESTOR, maintain="bogus")

    def test_process_default_round_trips(self):
        before = maintain_mode()
        try:
            set_maintain_mode("recompute")
            assert maintain_mode() == "recompute"
            model = IncrementalModel(ANCESTOR, atoms("parent(a, b)"))
            stats = model.remove_facts(atoms("parent(a, b)"))
            assert stats.mode == "recompute"
        finally:
            set_maintain_mode(before)

    def test_model_pin_beats_process_default(self):
        before = maintain_mode()
        try:
            set_maintain_mode("recompute")
            model = IncrementalModel(
                ANCESTOR, atoms("parent(a, b)"), maintain="delta"
            )
            stats = model.remove_facts(atoms("parent(a, b)"))
            assert stats.mode == "maintain"
        finally:
            set_maintain_mode(before)

    def test_mode_switch_mid_stream_stays_correct(self):
        # flipping the process default between updates must invalidate
        # the maintainer's counts (the legacy paths mutate the model
        # behind its back) and rebuild them on the next delta update.
        before = maintain_mode()
        edb = atoms(
            "parent(a, b)", "parent(b, c)", "parent(c, d)", "parent(a, d)"
        )
        try:
            set_maintain_mode("delta")
            model = IncrementalModel(STRATIFIED, edb[:2])
            model.add_facts([edb[2]])
            assert model._maintainer is not None
            set_maintain_mode("recompute")
            model.remove_facts([edb[1]])
            assert model._maintainer is None  # invalidated, not stale
            set_maintain_mode("delta")
            stats = model.add_facts([edb[3]])
            assert stats.mode == "maintain"
            expected = scratch_set(STRATIFIED, [edb[0], edb[2], edb[3]])
            assert model.as_set() == expected
        finally:
            set_maintain_mode(before)


class TestDeltaBatch:
    def test_insert_publishes_net_insertions(self):
        model = IncrementalModel(
            ANCESTOR, atoms("parent(a, b)"), maintain="delta"
        )
        model.add_facts(atoms("parent(b, c)"))
        batch = model.last_delta
        assert batch is not None
        assert batch.mode == "delta"
        assert batch.lsn is None  # not a durable-store mutation
        inserted = {
            pred: set(facts) for pred, facts in batch.inserted.items()
        }
        assert inserted == {
            "parent": {parse_atom("parent(b, c)")},
            "anc": {parse_atom("anc(b, c)"), parse_atom("anc(a, c)")},
        }
        assert batch.deleted == {}
        assert len(batch) == 3

    def test_delete_publishes_net_deletions(self):
        model = IncrementalModel(
            ANCESTOR,
            atoms("parent(a, b)", "parent(b, c)", "parent(a, c)"),
            maintain="delta",
        )
        model.remove_facts(atoms("parent(b, c)"))
        batch = model.last_delta
        deleted = {pred: set(facts) for pred, facts in batch.deleted.items()}
        # anc(a, c) survives via the direct edge: a *net* batch never
        # mentions an overdeleted-then-rederived fact.
        assert deleted == {
            "parent": {parse_atom("parent(b, c)")},
            "anc": {parse_atom("anc(b, c)")},
        }
        assert batch.inserted == {}

    def test_negation_flip_spans_both_sides(self):
        model = IncrementalModel(
            STRATIFIED, atoms("parent(a, b)", "parent(b, c)"),
            maintain="delta",
        )
        model.remove_facts(atoms("parent(b, c)"))
        batch = model.last_delta
        # deleting below the negation inserts above it
        assert parse_atom("childless(b)") in batch.inserted["childless"]
        assert parse_atom("childless(c)") in batch.deleted["childless"]

    def test_trace_event_emitted(self):
        recorder = TraceRecorder()
        model = IncrementalModel(
            ANCESTOR, atoms("parent(a, b)"),
            hooks=recorder, maintain="delta",
        )
        model.add_facts(atoms("parent(b, c)"))
        events = [e for e in recorder.events if e.kind == "delta_batch"]
        assert len(events) == 1
        payload = events[0].payload
        assert payload["mode"] == "delta"
        assert payload["lsn"] is None
        assert payload["inserted"] == 3
        assert payload["deleted"] == 0

    def test_idb_insert_still_rejected(self):
        model = IncrementalModel(
            ANCESTOR, atoms("parent(a, b)"), maintain="delta"
        )
        with pytest.raises(EvaluationError):
            model.add_facts(atoms("anc(x, y)"))


class TestDurableLSN:
    def test_mutations_stamp_wal_lsn(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path, maintain="delta") as store:
            first = store.add_facts(atoms("parent(a, b)"))
            second = store.add_facts(atoms("parent(b, c)"))
            assert first.lsn is not None
            assert second.lsn is not None
            assert second.lsn > first.lsn  # log offsets grow
            assert store.model.last_delta.lsn == second.lsn
            removal = store.remove_facts(atoms("parent(b, c)"))
            assert removal.lsn > second.lsn
            last_lsn = removal.lsn
        # replayed updates carry the original records' LSNs
        with DurableStore(ANCESTOR, tmp_path, maintain="delta") as store:
            assert store.stats.wal_records_replayed == 3
            assert store.model.last_update.lsn == last_lsn
            assert store.model.maintenance.last_lsn == last_lsn

    def test_recompute_mode_stamps_lsn_too(self, tmp_path):
        with DurableStore(ANCESTOR, tmp_path, maintain="recompute") as store:
            store.add_facts(atoms("parent(a, b)", "parent(b, c)"))
            stats = store.remove_facts(atoms("parent(b, c)"))
            assert stats.mode == "recompute"
            assert stats.lsn is not None


@given(update_scripts())
@settings(max_examples=15, deadline=None)
def test_property_delta_recompute_and_scratch_agree(script):
    generated, initial, ops = script
    delta = IncrementalModel(generated.program, initial, maintain="delta")
    oracle = IncrementalModel(
        generated.program, initial, maintain="recompute"
    )
    current = dict.fromkeys(initial)
    for op, batch in ops:
        if op == "add":
            delta.add_facts(batch)
            oracle.add_facts(batch)
            current.update(dict.fromkeys(batch))
        else:
            delta.remove_facts(batch)
            oracle.remove_facts(batch)
            for atom in batch:
                current.pop(atom, None)
        expected = scratch_set(generated.program, current)
        assert delta.as_set() == expected
        assert oracle.as_set() == expected
