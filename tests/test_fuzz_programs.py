"""Differential fuzzing over randomly generated admissible programs.

Every generated program must pass the static checks, and every
evaluation strategy must agree on its model / query answers.
"""

import pytest

from repro.engine import evaluate
from repro.engine.incremental import IncrementalModel
from repro.engine.topdown import evaluate_topdown
from repro.magic import evaluate_magic, supplementary_rewrite
from repro.program.dependency import is_admissible
from repro.program.rule import Atom, Query
from repro.program.stratify import linear_layerings, validate_layering
from repro.program.wellformed import check_program
from repro.terms.term import Const, Var
from repro.workloads.generator import GeneratorConfig, random_program

SEEDS = list(range(20))


@pytest.mark.parametrize("seed", SEEDS)
def test_generated_programs_are_admissible_and_safe(seed):
    generated = random_program(seed)
    check_program(generated.program)
    assert is_admissible(generated.program)


@pytest.mark.parametrize("seed", SEEDS)
def test_naive_equals_seminaive(seed):
    generated = random_program(seed)
    naive = evaluate(generated.program, edb=generated.edb, strategy="naive")
    semi = evaluate(generated.program, edb=generated.edb, strategy="seminaive")
    assert naive.database == semi.database


@pytest.mark.parametrize("seed", SEEDS)
def test_sized_planner_equals_static(seed):
    generated = random_program(seed)
    static = evaluate(generated.program, edb=generated.edb, planner="static")
    sized = evaluate(generated.program, edb=generated.edb, planner="sized")
    assert static.database == sized.database


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_alternative_layerings_agree(seed):
    generated = random_program(seed)
    reference = evaluate(generated.program, edb=generated.edb)
    for layering in linear_layerings(generated.program, limit=3):
        assert validate_layering(generated.program, layering)
        result = evaluate(generated.program, edb=generated.edb, layering=layering)
        assert result.database == reference.database


def _queries_for(generated):
    """Bound and free queries over every derived predicate."""
    program = generated.program
    full = evaluate(program, edb=generated.edb)
    queries = []
    for pred in sorted(program.idb_predicates()):
        rule = program.rules_for(pred)[0]
        if rule.is_grouping():
            args = (Const(0), Var("S"))
        else:
            args = (Const(0), Var("Y"))
        queries.append(Query(Atom(pred, args)))
    return full, queries


@pytest.mark.parametrize("seed", SEEDS[:12])
def test_magic_and_topdown_agree_with_bottom_up(seed):
    generated = random_program(seed)
    full, queries = _queries_for(generated)
    for query in queries:
        expected = full.answer_atoms(query)
        magic = evaluate_magic(generated.program, query, edb=generated.edb)
        assert magic.answer_atoms() == expected, query
        sup = evaluate_magic(
            generated.program,
            query,
            edb=generated.edb,
            rewrite=supplementary_rewrite,
        )
        assert sup.answer_atoms() == expected, query
        topdown, _ = evaluate_topdown(generated.program, query, edb=generated.edb)
        assert topdown == expected, query


@pytest.mark.parametrize("seed", SEEDS[:8])
def test_incremental_updates_agree_with_scratch(seed):
    generated = random_program(seed)
    edb = list(dict.fromkeys(generated.edb))  # random draws may repeat
    half = len(edb) // 2
    model = IncrementalModel(generated.program, edb[:half])
    model.add_facts(edb[half:])
    scratch = evaluate(generated.program, edb=edb)
    assert model.as_set() == scratch.database.as_set()
    model.remove_facts(edb[:3])
    scratch2 = evaluate(generated.program, edb=edb[3:])
    assert model.as_set() == scratch2.database.as_set()


def test_generator_is_deterministic():
    a = random_program(7)
    b = random_program(7)
    assert a.program == b.program
    assert a.edb == b.edb


def test_generator_respects_config():
    cfg = GeneratorConfig(strata=1, grouping_probability=0.0)
    generated = random_program(3, cfg)
    assert not any(r.is_grouping() for r in generated.program)
    assert all(lit.positive for r in generated.program for lit in r.body)


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_negation_elimination_on_generated_programs(seed):
    from repro.errors import NotAdmissibleError
    from repro.transform import eliminate_negation

    generated = random_program(seed)
    if all(lit.positive for r in generated.program for lit in r.body):
        pytest.skip("no negation generated for this seed")
    try:
        positive = eliminate_negation(generated.program)
    except NotAdmissibleError:
        pytest.skip("negation bound only by same-layer context")
    assert positive.is_positive()
    assert is_admissible(positive)
    original = evaluate(generated.program, edb=generated.edb)
    transformed = evaluate(positive, edb=generated.edb)
    for pred in generated.program.predicates():
        assert set(original.database.atoms(pred)) == set(
            transformed.database.atoms(pred)
        ), pred


@pytest.mark.parametrize("seed", SEEDS[:8])
def test_every_model_fact_is_explainable(seed):
    from repro.engine.explain import explain

    generated = random_program(seed)
    edb = list(dict.fromkeys(generated.edb))
    result = evaluate(generated.program, edb=edb)
    for fact in result.database.sorted_atoms():
        derivation = explain(generated.program, result.database, fact)
        assert derivation is not None, fact
