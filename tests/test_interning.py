"""Invariants of the ground-term intern table.

Interning is an identity fast path layered over structural equality:
every canonicalization entry point (ground evaluation, the storage
codec, and therefore the wire protocol, which reuses the codec) must
hand back the one canonical representative, and nothing about a term's
cached state may leak through serialization boundaries.
"""

import pickle

from repro.storage.codec import decode_atom, decode_term, encode_atom, encode_term
from repro.terms.term import (
    Const,
    Func,
    SetPattern,
    SetVal,
    evaluate_ground,
    intern_const,
    intern_term,
)


def test_evaluate_ground_returns_interned_representative():
    first = evaluate_ground(Func("f", (Const(1), Const("a"))))
    second = evaluate_ground(Func("f", (Const(1), Const("a"))))
    assert first is second
    assert first._interned


def test_evaluate_ground_is_identity_on_canonical_terms():
    term = evaluate_ground(SetPattern((Const(1), Const(2))))
    assert isinstance(term, SetVal)
    assert evaluate_ground(term) is term


def test_arithmetic_folds_to_interned_constant():
    folded = evaluate_ground(Func("+", (Const(2), Const(3))))
    assert folded is intern_const(5)
    assert folded is evaluate_ground(Func("+", (Const(4), Const(1))))


def test_codec_decode_reinterns():
    original = evaluate_ground(Func("g", (Const("x"), SetVal((Const(1),)))))
    decoded = decode_term(encode_term(original))
    assert decoded is original


def test_codec_decode_reinterns_atom_args():
    from repro.program.rule import Atom, canonical_atom

    atom = canonical_atom(Atom("p", (Const(1), SetVal((Const("a"),)))))
    decoded = decode_atom(encode_atom(atom))
    assert decoded == atom
    for arg, original in zip(decoded.args, atom.args):
        assert arg is original


def test_hash_survives_pickle_round_trip():
    original = evaluate_ground(Func("f", (Const(1), SetVal((Const(2),)))))
    hash(original)  # populate the cache
    clone = pickle.loads(pickle.dumps(original))
    assert clone == original
    assert hash(clone) == hash(original)
    # cached state must not travel: the clone is a fresh object that
    # re-interns to the canonical representative rather than claiming
    # to already be one.
    assert clone is not original
    assert not clone._interned
    assert intern_term(clone) is original


def test_hash_survives_codec_round_trip():
    original = evaluate_ground(SetPattern((Const(1), Const("a"))))
    hash(original)
    decoded = decode_term(encode_term(original))
    assert hash(decoded) == hash(original)


def test_interning_preserves_quoted_const_distinction():
    plain = intern_term(Const("sym"))
    quoted = intern_term(Const("sym", quoted=True))
    # Const.__eq__ ignores quoting (it only affects printing), but the
    # codec tags the variants differently, so interning must keep them
    # as separate representatives.
    assert plain == quoted
    assert plain is not quoted
    assert intern_term(Const("sym")) is plain
    assert intern_term(Const("sym", quoted=True)) is quoted


def test_intern_const_matches_intern_term():
    assert intern_const(7) is intern_term(Const(7))
    assert intern_const("a", quoted=True) is intern_term(
        Const("a", quoted=True)
    )
