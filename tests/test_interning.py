"""Invariants of the ground-term intern table.

Interning is an identity fast path layered over structural equality:
every canonicalization entry point (ground evaluation, the storage
codec, and therefore the wire protocol, which reuses the codec) must
hand back the one canonical representative, and nothing about a term's
cached state may leak through serialization boundaries.
"""

import pickle

from repro.storage.codec import decode_atom, decode_term, encode_atom, encode_term
from repro.terms.term import (
    Const,
    Func,
    SetPattern,
    SetVal,
    evaluate_ground,
    id_table_size,
    intern_const,
    intern_term,
    row_id,
    term_id,
    term_of_id,
)


def test_evaluate_ground_returns_interned_representative():
    first = evaluate_ground(Func("f", (Const(1), Const("a"))))
    second = evaluate_ground(Func("f", (Const(1), Const("a"))))
    assert first is second
    assert first._interned


def test_evaluate_ground_is_identity_on_canonical_terms():
    term = evaluate_ground(SetPattern((Const(1), Const(2))))
    assert isinstance(term, SetVal)
    assert evaluate_ground(term) is term


def test_arithmetic_folds_to_interned_constant():
    folded = evaluate_ground(Func("+", (Const(2), Const(3))))
    assert folded is intern_const(5)
    assert folded is evaluate_ground(Func("+", (Const(4), Const(1))))


def test_codec_decode_reinterns():
    original = evaluate_ground(Func("g", (Const("x"), SetVal((Const(1),)))))
    decoded = decode_term(encode_term(original))
    assert decoded is original


def test_codec_decode_reinterns_atom_args():
    from repro.program.rule import Atom, canonical_atom

    atom = canonical_atom(Atom("p", (Const(1), SetVal((Const("a"),)))))
    decoded = decode_atom(encode_atom(atom))
    assert decoded == atom
    for arg, original in zip(decoded.args, atom.args):
        assert arg is original


def test_hash_survives_pickle_round_trip():
    original = evaluate_ground(Func("f", (Const(1), SetVal((Const(2),)))))
    hash(original)  # populate the cache
    clone = pickle.loads(pickle.dumps(original))
    assert clone == original
    assert hash(clone) == hash(original)
    # cached state must not travel: the clone is a fresh object that
    # re-interns to the canonical representative rather than claiming
    # to already be one.
    assert clone is not original
    assert not clone._interned
    assert intern_term(clone) is original


def test_hash_survives_codec_round_trip():
    original = evaluate_ground(SetPattern((Const(1), Const("a"))))
    hash(original)
    decoded = decode_term(encode_term(original))
    assert hash(decoded) == hash(original)


def test_interning_preserves_quoted_const_distinction():
    plain = intern_term(Const("sym"))
    quoted = intern_term(Const("sym", quoted=True))
    # Const.__eq__ ignores quoting (it only affects printing), but the
    # codec tags the variants differently, so interning must keep them
    # as separate representatives.
    assert plain == quoted
    assert plain is not quoted
    assert intern_term(Const("sym")) is plain
    assert intern_term(Const("sym", quoted=True)) is quoted


def test_intern_const_matches_intern_term():
    assert intern_const(7) is intern_term(Const(7))
    assert intern_const("a", quoted=True) is intern_term(
        Const("a", quoted=True)
    )


def test_term_id_is_stable_and_reversible():
    term = Func("f", (Const(1), SetVal((Const("a"),))))
    tid = term_id(term)
    assert term_id(term) == tid  # idempotent
    assert term_id(intern_term(term)) == tid  # same equality class
    assert term_of_id(tid) is intern_term(term)
    assert 0 <= tid < id_table_size()


def test_term_id_distinguishes_quoted_but_row_id_collapses():
    plain = intern_term(Const("qdense"))
    quoted = intern_term(Const("qdense", quoted=True))
    # faithful IDs keep the codec-visible distinction apart ...
    assert term_id(plain) != term_id(quoted)
    # ... while equality-class IDs agree exactly when the terms do
    assert row_id(plain) == row_id(quoted)
    assert term_of_id(row_id(quoted)) == quoted


def test_class_representative_is_unquoted_regardless_of_order():
    # intern the QUOTED spelling first: the class representative (what
    # ID rows decode to) must still be the unquoted variant, so output
    # spelling never depends on process-wide intern order.
    quoted = intern_term(Const("rep_order_probe", quoted=True))
    rep = term_of_id(row_id(quoted))
    assert rep == quoted and not rep.quoted
    assert rep is intern_term(Const("rep_order_probe"))


def test_row_id_equality_coincides_with_term_equality():
    a = Func("g", (Const(1), Const(2)))
    b = Func("g", (Const(1), Const(2)))
    c = Func("g", (Const(1), Const(3)))
    assert row_id(a) == row_id(b)
    assert row_id(a) != row_id(c)


def test_id_table_grows_monotonically():
    before = id_table_size()
    term_id(Func("dense_id_growth_probe", (Const(1),)))
    after = id_table_size()
    assert after > before
    # re-interning the same term allocates nothing new
    term_id(Func("dense_id_growth_probe", (Const(1),)))
    assert id_table_size() == after


def test_id_assignment_covers_subterms():
    nested = intern_term(Func("outer", (SetVal((Const(11), Const(12))),)))
    # every subterm gets an ID reversible to its canonical
    # representative (the composite keeps its original children, so
    # identity is with the interned twin, not the embedded object)
    assert term_of_id(term_id(nested.args[0])) is intern_term(nested.args[0])
    for element in nested.args[0]:
        assert term_of_id(term_id(element)) is intern_term(element)
        assert term_of_id(term_id(element)) == element
