"""Round-trip and rejection tests for the storage codec."""

import json

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.program.rule import Atom
from repro.storage import codec
from repro.terms.term import Const, Func, GroupTerm, SetPattern, SetVal, Var

from tests.strategies import ground_sets, ground_terms


class TestTermRoundTrip:
    @given(ground_terms)
    def test_round_trip(self, term):
        assert codec.decode_term(codec.encode_term(term)) == term

    @given(ground_terms)
    def test_round_trip_through_json_bytes(self, term):
        wire = codec.dumps(codec.encode_term(term))
        assert codec.decode_term(codec.loads(wire)) == term

    @given(ground_sets)
    def test_nested_sets(self, s):
        assert codec.decode_term(codec.encode_term(SetVal([s, s]))) == SetVal([s])

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_large_negative_ints(self, n):
        assert codec.decode_term(codec.encode_term(Const(n))) == Const(n)

    def test_int_float_distinction_survives(self):
        two_int = codec.decode_term(codec.encode_term(Const(2)))
        two_float = codec.decode_term(codec.encode_term(Const(2.0)))
        assert isinstance(two_int.value, int)
        assert isinstance(two_float.value, float)
        assert two_int != two_float

    def test_symbol_vs_quoted_string(self):
        symbol = codec.decode_term(codec.encode_term(Const("john")))
        quoted = codec.decode_term(codec.encode_term(Const("john", quoted=True)))
        assert not symbol.quoted
        assert quoted.quoted

    def test_canonical_bytes_for_equal_sets(self):
        a = SetVal([Const(1), Const(2), Const("x")])
        b = SetVal([Const("x"), Const(2), Const(1)])
        assert codec.dumps(codec.encode_term(a)) == codec.dumps(codec.encode_term(b))

    def test_functor_nesting(self):
        term = Func("f", [Func("g", [Const(1), SetVal([Const("a")])])])
        assert codec.decode_term(codec.encode_term(term)) == term


class TestAtomRoundTrip:
    @given(st.lists(ground_terms, max_size=4))
    def test_round_trip(self, args):
        atom = Atom("p", args)
        assert codec.loads_atom(codec.dumps_atom(atom)) == atom

    def test_zero_arity(self):
        atom = Atom("flag")
        assert codec.loads_atom(codec.dumps_atom(atom)) == atom


class TestRejections:
    @pytest.mark.parametrize(
        "term",
        [Var("X"), GroupTerm(Var("X")), SetPattern([Const(1)], rest=Var("R"))],
    )
    def test_non_u_terms_rejected(self, term):
        with pytest.raises(StorageError):
            codec.encode_term(term)

    def test_non_ground_atom_rejected(self):
        with pytest.raises(StorageError):
            codec.encode_atom(Atom("p", [Var("X")]))

    @pytest.mark.parametrize(
        "obj",
        [
            [],
            ["z", 1],
            ["s", 1],
            ["n", True],
            ["n", "1"],
            ["f", "f"],
            ["f", 3, []],
            ["S", "not-a-list"],
            {"tag": "s"},
            "bare",
        ],
    )
    def test_malformed_terms_rejected(self, obj):
        with pytest.raises(StorageError):
            codec.decode_term(obj)

    @pytest.mark.parametrize("obj", [[], ["p"], [1, []], ["p", "x"], {"p": []}])
    def test_malformed_atoms_rejected(self, obj):
        with pytest.raises(StorageError):
            codec.decode_atom(obj)

    def test_corrupt_json_rejected(self):
        with pytest.raises(StorageError):
            codec.loads(b"{not json")

    def test_future_codec_version_rejected(self):
        with pytest.raises(StorageError):
            codec.check_version(codec.CODEC_VERSION + 1)
        with pytest.raises(StorageError):
            codec.check_version("1")
        codec.check_version(codec.CODEC_VERSION)  # current is fine

    def test_encoding_is_plain_json(self):
        # the wire format must stay language-neutral JSON
        term = Func("f", [SetVal([Const(1), Const("a", quoted=True)])])
        assert json.loads(codec.dumps_atom(Atom("p", [term]))) is not None
