"""Unit tests for the write-ahead log: framing, torn tails, fsync modes."""

import os

import pytest

from repro.errors import StorageError
from repro.parser import parse_atom
from repro.storage.wal import MAGIC, WalRecord, WriteAheadLog


def atoms(*sources):
    return tuple(parse_atom(s) for s in sources)


@pytest.fixture
def wal_path(tmp_path):
    return tmp_path / "wal.log"


def write_batches(path, batches, fsync="never"):
    with WriteAheadLog(path, fsync=fsync) as log:
        for op, facts in batches:
            log.append(op, facts)
        return list(log.replay())


BATCHES = [
    ("add", atoms("parent(a, b)", "parent(b, c)")),
    ("add", atoms("p({1, 2}, f(a, {}))",)),
    ("remove", atoms("parent(a, b)",)),
]


class TestAppendReplay:
    def test_round_trip(self, wal_path):
        write_batches(wal_path, BATCHES)
        log = WriteAheadLog(wal_path)
        replayed = [(r.op, r.facts) for r in log.replay()]
        assert replayed == BATCHES
        assert log.truncated_bytes == 0
        log.close()

    def test_empty_log(self, wal_path):
        log = WriteAheadLog(wal_path)
        log.close()
        log = WriteAheadLog(wal_path)
        assert log.record_count == 0
        log.close()

    def test_offsets_increase(self, wal_path):
        records = write_batches(wal_path, BATCHES)
        ends = [r.end_offset for r in records]
        assert ends == sorted(ends)
        assert ends[0] > len(MAGIC)
        assert ends[-1] == os.path.getsize(wal_path)

    def test_reset_drops_records(self, wal_path):
        with WriteAheadLog(wal_path) as log:
            log.append("add", atoms("p(1)"))
            log.reset()
            assert log.record_count == 0
            log.append("add", atoms("p(2)"))
        log = WriteAheadLog(wal_path)
        assert [r.facts for r in log.replay()] == [atoms("p(2)")]
        log.close()

    def test_bad_op_rejected(self, wal_path):
        with WriteAheadLog(wal_path) as log:
            with pytest.raises(StorageError):
                log.append("upsert", atoms("p(1)"))

    def test_append_after_close_rejected(self, wal_path):
        log = WriteAheadLog(wal_path)
        log.close()
        with pytest.raises(StorageError):
            log.append("add", atoms("p(1)"))


class TestTornTail:
    def test_truncated_mid_record(self, wal_path):
        records = write_batches(wal_path, BATCHES)
        # cut one byte into the last record's frame
        keep = records[-2].end_offset + 1
        with open(wal_path, "r+b") as fh:
            fh.truncate(keep)
        log = WriteAheadLog(wal_path)
        assert [r.facts for r in log.replay()] == [r.facts for r in records[:-1]]
        assert log.truncated_bytes == 1
        assert os.path.getsize(wal_path) == records[-2].end_offset
        log.close()

    @pytest.mark.parametrize("cut", range(1, 9))
    def test_truncated_inside_header(self, wal_path, cut):
        records = write_batches(wal_path, [BATCHES[0]])
        with open(wal_path, "r+b") as fh:
            fh.truncate(len(MAGIC) + cut)
        log = WriteAheadLog(wal_path)
        assert log.record_count == 0
        assert os.path.getsize(wal_path) == len(MAGIC)
        del records
        log.close()

    def test_flipped_payload_byte_truncates_from_there(self, wal_path):
        records = write_batches(wal_path, BATCHES)
        flip_at = records[0].end_offset + 12  # inside record 2's payload
        with open(wal_path, "r+b") as fh:
            fh.seek(flip_at)
            byte = fh.read(1)
            fh.seek(flip_at)
            fh.write(bytes([byte[0] ^ 0xFF]))
        log = WriteAheadLog(wal_path)
        # record 1 survives; record 2 fails its CRC, so it and every
        # later record are gone
        assert [r.facts for r in log.replay()] == [records[0].facts]
        log.close()

    def test_garbage_length_field_truncates(self, wal_path):
        records = write_batches(wal_path, [BATCHES[0]])
        with open(wal_path, "ab") as fh:
            fh.write(b"\xff\xff\xff\xff\x00\x00\x00\x00partial")
        log = WriteAheadLog(wal_path)
        assert log.record_count == 1
        assert os.path.getsize(wal_path) == records[0].end_offset
        log.close()

    def test_append_after_recovery_continues_cleanly(self, wal_path):
        records = write_batches(wal_path, BATCHES)
        with open(wal_path, "r+b") as fh:
            fh.truncate(records[-1].end_offset - 3)
        with WriteAheadLog(wal_path) as log:
            log.append("add", atoms("q(9)"))
        log = WriteAheadLog(wal_path)
        assert log.truncated_bytes == 0
        assert [r.facts for r in log.replay()] == [
            records[0].facts,
            records[1].facts,
            atoms("q(9)"),
        ]
        log.close()

    def test_bad_magic_raises(self, wal_path):
        wal_path.write_bytes(b"NOTAWAL!rest")
        with pytest.raises(StorageError):
            WriteAheadLog(wal_path)

    def test_short_magic_raises(self, wal_path):
        wal_path.write_bytes(MAGIC[:4])
        with pytest.raises(StorageError):
            WriteAheadLog(wal_path)


class TestFsyncPolicies:
    @pytest.mark.parametrize("fsync", ["always", "batch", "never"])
    def test_policies_round_trip(self, tmp_path, fsync):
        path = tmp_path / f"{fsync}.log"
        write_batches(path, BATCHES, fsync=fsync)
        log = WriteAheadLog(path)
        assert log.record_count == len(BATCHES)
        log.close()

    def test_unknown_policy_rejected(self, wal_path):
        with pytest.raises(StorageError):
            WriteAheadLog(wal_path, fsync="sometimes")

    def test_record_is_frozen(self):
        record = WalRecord("add", atoms("p(1)"))
        with pytest.raises(AttributeError):
            record.op = "remove"
