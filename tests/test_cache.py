"""Tests for the server answer cache (repro.server.cache)."""

from hypothesis import given, settings

from repro import LDL
from repro.engine.maintain import Invalidation
from repro.parser.parser import parse_query
from repro.program.rule import Atom, Query
from repro.server import LDLServer
from repro.server.cache import AnswerCache, cache_enabled
from repro.terms.term import Var
from repro.terms.pretty import format_program
from tests.strategies import update_scripts
from tests.test_server import ServerThread

TWO_FAMILIES = """
    t(X, Y) <- e(X, Y).
    t(X, Y) <- e(X, Z), t(Z, Y).
    s(X) <- f(X).
"""


def tc_session():
    db = LDL(TWO_FAMILIES)
    db.facts("e", [(1, 2), (2, 3)])
    db.facts("f", [(7,), (8,)])
    return db


class TestCacheBasics:
    def test_miss_then_hit(self):
        cache = AnswerCache().bind_session(tc_session())
        q = parse_query("? t(1, X).")
        first, how = cache.answers(q)
        assert how == "miss"
        assert [b["X"].value for b in first] == [2, 3]
        again, how = cache.answers(q)
        assert how == "hit"
        assert again == first

    def test_relaxed_patterns_share_one_entry(self):
        """``? t(X, Y)`` and ``? t(X, X)`` differ only in filtering."""
        db = tc_session()
        db.facts("e", [(5, 5)])
        cache = AnswerCache().bind_session(db)
        assert cache.answers(parse_query("? t(X, Y)."))[1] == "miss"
        diagonal, how = cache.answers(parse_query("? t(X, X)."))
        assert how == "hit"  # same key, different match pattern
        assert [b["X"].value for b in diagonal] == [5]

    def test_subsumption_serves_bound_from_free(self):
        cache = AnswerCache().bind_session(tc_session())
        assert cache.answers(parse_query("? t(X, Y)."))[1] == "miss"
        bound, how = cache.answers(parse_query("? t(1, X)."))
        assert how == "hit-subsumed"
        assert [b["X"].value for b in bound] == [2, 3]
        # the fully bound query is subsumed too, and answers by {} match
        check, how = cache.answers(parse_query("? t(1, 3)."))
        assert how == "hit-subsumed"
        assert check == [{}]
        assert cache.report()["subsumed"] == 2

    def test_no_false_subsumption_across_bound_values(self):
        cache = AnswerCache().bind_session(tc_session())
        assert cache.answers(parse_query("? t(1, X)."))[1] == "miss"
        # a differently-bound query cannot be served from that entry
        assert cache.answers(parse_query("? t(2, X)."))[1] == "miss"

    def test_lru_eviction(self):
        cache = AnswerCache(capacity=2).bind_session(tc_session())
        q1, q2, q3 = (
            parse_query("? t(1, X)."),
            parse_query("? t(2, X)."),
            parse_query("? s(X)."),
        )
        cache.answers(q1)
        cache.answers(q2)
        cache.answers(q1)  # refresh q1: q2 is now least recent
        cache.answers(q3)  # evicts q2
        assert cache.answers(q1)[1] == "hit"
        assert cache.answers(q2)[1] == "miss"

    def test_answers_match_uncached_strategies(self):
        db = tc_session()
        cache = AnswerCache().bind_session(db)
        for text in ("? t(1, X).", "? t(X, Y).", "? s(X).", "? e(1, X)."):
            q = parse_query(text)
            cached, _ = cache.answers(q)
            assert cached == db.model().answers(q)
            if q.atom.pred in db.program.idb_predicates():
                assert cached == db.query_magic(q).answers()

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_ANSWER_CACHE", "off")
        assert not cache_enabled()
        assert LDLServer(LDL(TWO_FAMILIES), port=0).cache is None
        monkeypatch.setenv("REPRO_ANSWER_CACHE", "on")
        assert cache_enabled()
        monkeypatch.delenv("REPRO_ANSWER_CACHE")
        assert cache_enabled()
        assert LDLServer(LDL(TWO_FAMILIES), port=0).cache is not None


class TestInvalidation:
    def test_writes_invalidate_only_affected_predicates(self):
        db = tc_session()
        cache = AnswerCache().bind_session(db)
        qt, qs = parse_query("? t(1, X)."), parse_query("? s(X).")
        cache.answers(qt)
        cache.answers(qs)
        db.facts("f", [(9,)])  # touches the s-family only
        assert cache.answers(qt)[1] == "hit"
        assert cache.answers(qs)[1] == "miss"
        answers, _ = cache.answers(qs)  # refill
        db.facts("e", [(3, 4)])  # touches the t-family only
        assert cache.answers(qs)[1] == "hit"
        assert cache.answers(qt)[1] == "miss"
        assert [b["X"].value for b in cache.answers(qt)[0]] == [2, 3, 4]

    def test_rule_load_clears_wholesale(self):
        db = tc_session()
        cache = AnswerCache().bind_session(db)
        cache.answers(parse_query("? t(1, X)."))
        cache.answers(parse_query("? s(X)."))
        db.load("s(X) <- e(X, _).")  # rules changed: everything suspect
        assert len(cache) == 0
        got, how = cache.answers(parse_query("? s(X)."))
        assert how == "miss"
        assert sorted(b["X"].value for b in got) == [1, 2, 7, 8]

    def test_removals_invalidate(self):
        db = tc_session()
        cache = AnswerCache().bind_session(db)
        q = parse_query("? t(1, X).")
        cache.answers(q)
        db.remove("e", 2, 3)
        got, how = cache.answers(q)
        assert how == "miss"
        assert [b["X"].value for b in got] == [2]

    def test_durable_delta_invalidation_is_precise(self, tmp_path):
        with LDL(TWO_FAMILIES, path=str(tmp_path / "db")) as db:
            db.facts("e", [(1, 2)])
            db.facts("f", [(7,)])
            cache = AnswerCache().bind_session(db)
            qt, qs = parse_query("? t(1, X)."), parse_query("? s(X).")
            cache.answers(qt)
            cache.answers(qs)
            db.facts("f", [(8,)])  # delta batch names f/s only
            assert cache.answers(qt)[1] == "hit"
            assert cache.answers(qs)[1] == "miss"

    def test_lsn_stamps_make_invalidation_precise_in_time(self, tmp_path):
        with LDL(TWO_FAMILIES, path=str(tmp_path / "db")) as db:
            db.facts("e", [(1, 2)])
            cache = AnswerCache().bind_session(db)
            q = parse_query("? t(1, X).")
            cache.answers(q)
            filled_at = db.store.model.maintenance.last_lsn
            assert filled_at is not None
            # a delta at (or before) the fill LSN is already reflected
            stale = Invalidation(lsn=filled_at, preds=frozenset({"e"}))
            assert cache.apply_invalidation(stale) == 0
            assert cache.answers(q)[1] == "hit"
            # a later mutation's delta drops the entry
            fresh = Invalidation(lsn=filled_at + 1, preds=frozenset({"e"}))
            assert cache.apply_invalidation(fresh) == 1
            assert cache.answers(q)[1] == "miss"

    def test_unstamped_entries_always_drop_on_intersection(self):
        cache = AnswerCache().bind_session(tc_session())
        cache.answers(parse_query("? t(1, X)."))
        event = Invalidation(lsn=10_000, preds=frozenset({"e"}))
        assert cache.apply_invalidation(event) == 1


class TestCachedServer:
    def test_hit_invalidate_hit_cycle_end_to_end(self):
        session = tc_session()
        cache = AnswerCache()
        with ServerThread(session, cache=cache) as st, st.client() as client:
            ask = {"q": "? t(1, X)."}
            assert client.call("query", **ask)["cache"] == "miss"
            assert client.call("query", **ask)["cache"] == "hit"
            client.add_facts("f", [(9,)])  # unrelated family
            assert client.call("query", **ask)["cache"] == "hit"
            client.add_facts("e", [(3, 4)])  # invalidates the t-family
            response = client.call("query", **ask)
            assert response["cache"] == "miss"
            assert response["count"] == 3
            # per-request bypass, and the uncached answers agree
            assert client.call("query", **ask, cache=False)["cache"] == "off"
            assert client.query("? t(1, X).") == client.query(
                "? t(1, X).", cache=False
            )
            stats = client.stats()
            assert stats["answer_cache"]["hits"] >= 2
            assert stats["answer_cache"]["entries_invalidated"] >= 1
            assert stats["server"]["cache"]["hit"] >= 2
            assert stats["server"]["cache"]["invalidation_events"] >= 2


def _query_pool(generated):
    """Deterministic queries covering the generated program's shapes."""
    arities: dict[str, int] = {}
    for rule in generated.program:
        for atom in [rule.head] + [lit.atom for lit in rule.body]:
            arities.setdefault(atom.pred, len(atom.args))
    for atom in generated.edb:
        arities.setdefault(atom.pred, len(atom.args))
    queries = []
    for pred, arity in sorted(arities.items())[:6]:
        queries.append(
            Query(Atom(pred, tuple(Var(f"Q{i}") for i in range(arity))))
        )
        if arity >= 2:  # a repeated-variable pattern
            queries.append(Query(Atom(pred, tuple(Var("Q") for _ in range(arity)))))
    for atom in list(dict.fromkeys(generated.edb))[:3]:
        queries.append(Query(atom))  # fully bound
        if len(atom.args) >= 2:  # partially bound
            queries.append(
                Query(
                    Atom(
                        atom.pred,
                        (atom.args[0],)
                        + tuple(Var(f"Q{i}") for i in range(1, len(atom.args))),
                    )
                )
            )
    return queries


@given(update_scripts())
@settings(max_examples=20, deadline=None)
def test_cached_answers_equal_uncached_oracle(script):
    """Random add/remove/query interleavings: a cached session must
    answer exactly like an uncached oracle at every step — any missed
    invalidation or over-broad subsumption shows up as a stale answer."""
    generated, initial, ops = script
    text = format_program(generated.program)
    cached_session = LDL(text).add_atoms(initial)
    oracle = LDL(text).add_atoms(initial)
    cache = AnswerCache().bind_session(cached_session)
    queries = _query_pool(generated)

    def check():
        for query in queries:
            got, _ = cache.answers(query)
            assert got == oracle.model().answers(query)

    check()
    for kind, atoms in ops:
        if kind == "add":
            cached_session.add_atoms(atoms)
            oracle.add_atoms(atoms)
        else:
            cached_session.remove_atoms(atoms)
            oracle.remove_atoms(atoms)
        check()
    # the workload must actually exercise the cache, not just miss
    report = cache.report()
    assert report["hits"] + report["misses"] > 0
