"""Tests for LDL1.5 complex body terms (paper §4.1)."""

import pytest

from repro.engine import evaluate
from repro.errors import WellFormednessError
from repro.parser import parse_rules
from repro.program.wellformed import check_program
from repro.transform import compile_body_sets
from repro.terms.pretty import format_atom


def run_compiled(src, pred):
    program = compile_body_sets(parse_rules(src))
    check_program(program)  # result must be valid base LDL1
    result = evaluate(program)
    return {format_atom(a) for a in result.database.atoms(pred)}


class TestSimpleBodyGroups:
    def test_element_ranging(self):
        # p(<X>) matches set-valued p tuples, X over elements.
        facts = run_compiled(
            "p({1, 2}). p(3). p({4}). q(X) <- p(<X>).", "q"
        )
        assert facts == {"q(1)", "q(2)", "q(4)"}

    def test_non_set_tuples_skipped(self):
        facts = run_compiled("p(3). q(X) <- p(<X>).", "q")
        assert facts == set()

    def test_empty_set_contributes_nothing(self):
        # t must be a member, so {} cannot match.
        facts = run_compiled("p({}). p({1}). q(X) <- p(<X>).", "q")
        assert facts == {"q(1)"}

    def test_group_at_non_first_position(self):
        facts = run_compiled(
            "p(a, {1, 2}). p(b, 7). q(K, X) <- p(K, <X>).", "q"
        )
        assert facts == {"q(a, 1)", "q(a, 2)"}

    def test_two_groups_in_one_literal(self):
        facts = run_compiled(
            "p({1}, {a, b}). q(X, Y) <- p(<X>, <Y>).", "q"
        )
        assert facts == {"q(1, a)", "q(1, b)"}

    def test_rewrite_is_identity_without_groups(self):
        program = parse_rules("p(1). q(X) <- p(X).")
        assert compile_body_sets(program) == program


class TestUniformStructure:
    def test_paper_nested_example(self):
        # the paper: p(<<X>>) does not match p({{1,2}, 3, {4,5}}) because
        # 3 is not a set; it does match p({{1,2}, {3}, {4,5}}).
        facts = run_compiled(
            """
            bad({{1, 2}, 3, {4, 5}}).
            q(X) <- bad(<<X>>).
            """,
            "q",
        )
        assert facts == set()
        facts = run_compiled(
            """
            good({{1, 2}, {3}, {4, 5}}).
            q(X) <- good(<<X>>).
            """,
            "q",
        )
        assert facts == {"q(1)", "q(2)", "q(3)", "q(4)", "q(5)"}

    def test_structured_elements(self):
        facts = run_compiled(
            """
            p({f(1, {a, b}), f(2, {c})}).
            p({f(1, {a}), g(2)}).
            q(X, Y) <- p(<f(X, <Y>)>).
            """,
            "q",
        )
        # the second p fact mixes f- and g-shaped elements: not uniform.
        assert facts == {"q(1, a)", "q(1, b)", "q(2, c)"}

    def test_inner_non_set_breaks_uniformity(self):
        facts = run_compiled(
            """
            p({f(1, {a}), f(2, b)}).
            q(X, Y) <- p(<f(X, <Y>)>).
            """,
            "q",
        )
        assert facts == set()

    def test_uniformity_is_per_tuple(self):
        # one malformed p tuple must not poison a well-formed one
        facts = run_compiled(
            """
            p({{1}, 2}).
            p({{3}}).
            q(X) <- p(<<X>>).
            """,
            "q",
        )
        assert facts == {"q(3)"}


class TestInteractionWithRuleContext:
    def test_join_with_other_literals(self):
        facts = run_compiled(
            """
            p({1, 2, 3}). odd(1). odd(3).
            q(X) <- p(<X>), odd(X).
            """,
            "q",
        )
        assert facts == {"q(1)", "q(3)"}

    def test_group_var_shared_with_head_function(self):
        facts = run_compiled(
            "p({1, 2}). q(f(X)) <- p(<X>).", "q"
        )
        assert facts == {"q(f(1))", "q(f(2))"}

    def test_negated_occurrence_rejected(self):
        program = parse_rules("p({1}). q(X) <- r(X), ~p(<X>). r(1).")
        with pytest.raises(WellFormednessError):
            compile_body_sets(program)

    def test_builtin_occurrence_rejected(self):
        program = parse_rules("q(X) <- r(X), member(<X>, {1}). r(1).")
        with pytest.raises(WellFormednessError):
            compile_body_sets(program)
