"""Crash-recovery fault injection, property-tested.

The contract under test is the store's whole reason to exist: for ANY
sequence of update batches, an optional checkpoint anywhere in the
sequence, and a crash that tears the WAL at ANY byte offset, reopening
the store must yield exactly the model a from-scratch evaluation over
the recovered EDB produces — and the recovered EDB must be the prefix
of acknowledged batches whose records survived intact (no partial
batches, no resurrection of torn ones).
"""

import os
import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.observe import TraceRecorder
from repro.parser import parse_atom, parse_rules
from repro.storage.store import DurableStore
from repro.storage.wal import MAGIC

PROGRAM = parse_rules(
    """
    anc(X, Y) <- parent(X, Y).
    anc(X, Y) <- parent(X, Z), anc(Z, Y).
    person(X) <- parent(X, _).
    person(Y) <- parent(_, Y).
    has_kid(X) <- parent(X, _).
    childless(X) <- person(X), ~has_kid(X).
    kids(P, <C>) <- parent(P, C).
    """
)

PEOPLE = [f"p{i}" for i in range(5)]

facts_st = st.tuples(
    st.sampled_from(PEOPLE), st.sampled_from(PEOPLE)
).map(lambda pair: parse_atom(f"parent({pair[0]}, {pair[1]})"))

batches_st = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.lists(facts_st, min_size=1, max_size=3, unique=True),
    ),
    min_size=1,
    max_size=6,
)


def apply_expected(batches):
    """The EDB a perfect database would hold after ``batches``."""
    edb = set()
    for op, facts in batches:
        if op == "add":
            edb |= set(facts)
        else:
            edb -= set(facts)
    return edb


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_crash_recovery_equals_from_scratch(data):
    batches = data.draw(batches_st)
    checkpoint_after = data.draw(
        st.none() | st.integers(min_value=0, max_value=len(batches) - 1),
        label="checkpoint_after",
    )
    workdir = tempfile.mkdtemp(prefix="ldl1-crash-")
    try:
        store = DurableStore(PROGRAM, workdir, fsync="never", compact_every=0)
        store.open()
        for i, (op, facts) in enumerate(batches):
            if op == "add":
                store.add_facts(facts)
            else:
                store.remove_facts(facts)
            if checkpoint_after == i:
                store.checkpoint()
        # batches the snapshot fully contains vs batches only in the WAL
        snapshotted = (
            batches[: checkpoint_after + 1] if checkpoint_after is not None else []
        )
        logged = batches[len(snapshotted):]
        record_ends = [r.end_offset for r in store.wal.replay()]
        assert len(record_ends) == len(logged)
        wal_path = store.wal_path
        store.close()

        # the crash: tear the log at an arbitrary byte offset
        kill = data.draw(
            st.integers(
                min_value=len(MAGIC), max_value=os.path.getsize(wal_path)
            ),
            label="kill_offset",
        )
        with open(wal_path, "r+b") as handle:
            handle.truncate(kill)

        surviving = sum(1 for end in record_ends if end <= kill)
        expected_edb = apply_expected(snapshotted + logged[:surviving])

        recorder = TraceRecorder()
        reopened = DurableStore(
            PROGRAM, workdir, fsync="never", compact_every=0, hooks=recorder
        ).open()
        try:
            assert reopened.stats.wal_records_replayed == surviving
            assert set(reopened.edb_facts) == expected_edb
            scratch = evaluate(PROGRAM, edb=sorted(expected_edb, key=lambda a: a.sort_key()))
            assert reopened.database.as_set() == scratch.database.as_set()
            if (
                checkpoint_after is not None
                and surviving == 0
                and reopened.stats.restore_mode == "snapshot"
            ):
                # nothing to replay and a usable snapshot: the layered
                # fixpoint must not have run at all
                assert recorder.count("layer_start") == 0
                assert recorder.count("iteration") == 0
        finally:
            reopened.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@settings(max_examples=25, deadline=None)
@given(batches=batches_st)
def test_clean_restart_equals_from_scratch(batches):
    """No crash at all: close/reopen is already a model-preserving cycle."""
    workdir = tempfile.mkdtemp(prefix="ldl1-restart-")
    try:
        store = DurableStore(PROGRAM, workdir, fsync="never", compact_every=0)
        store.open()
        for op, facts in batches:
            (store.add_facts if op == "add" else store.remove_facts)(facts)
        before = store.database.as_set()
        store.close()
        reopened = DurableStore(PROGRAM, workdir, fsync="never").open()
        try:
            assert reopened.database.as_set() == before
            assert reopened.database.as_set() == evaluate(
                PROGRAM, edb=sorted(reopened.edb_facts, key=lambda a: a.sort_key())
            ).database.as_set()
        finally:
            reopened.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


@settings(max_examples=25, deadline=None)
@given(batches=batches_st)
def test_snapshot_restore_never_runs_fixpoint(batches):
    """After a checkpoint, restart adopts the model without evaluation."""
    workdir = tempfile.mkdtemp(prefix="ldl1-snap-")
    try:
        store = DurableStore(PROGRAM, workdir, fsync="never", compact_every=0)
        store.open()
        for op, facts in batches:
            (store.add_facts if op == "add" else store.remove_facts)(facts)
        store.checkpoint()
        before = store.database.as_set()
        store.close()
        recorder = TraceRecorder()
        reopened = DurableStore(PROGRAM, workdir, hooks=recorder).open()
        try:
            assert reopened.stats.restore_mode == "snapshot"
            assert reopened.database.as_set() == before
            assert recorder.count("layer_start") == 0
            assert recorder.count("rule_fired") == 0
            assert recorder.count("fact_derived") == 0
        finally:
            reopened.close()
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
