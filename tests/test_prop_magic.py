"""Property-based equivalence tests for magic sets (Theorem 4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import evaluate
from repro.engine.topdown import evaluate_topdown
from repro.magic import evaluate_magic
from repro.parser import parse_rules
from repro.program.rule import Atom, Query
from repro.terms.term import Const, Var

TC_RULES = """
t(X, Y) <- e(X, Y).
t(X, Y) <- e(X, Z), t(Z, Y).
"""

LEFT_TC_RULES = """
t(X, Y) <- e(X, Y).
t(X, Y) <- t(X, Z), e(Z, Y).
"""

NEG_RULES = """
node(X) <- e(X, _).
node(Y) <- e(_, Y).
reach(X, X) <- node(X).
reach(X, Y) <- reach(X, Z), e(Z, Y).
blocked_pair(X, Y) <- node(X), node(Y), ~reach(X, Y).
"""

GROUP_RULES = """
node(X) <- e(X, _).
node(Y) <- e(_, Y).
reach(X, X) <- node(X).
reach(X, Y) <- reach(X, Z), e(Z, Y).
reachset(X, <Y>) <- reach(X, Y).
"""

edges = st.lists(
    st.tuples(st.integers(0, 8), st.integers(0, 8)),
    min_size=1,
    max_size=18,
    unique=True,
)


def edge_atoms(pairs):
    return [Atom("e", (Const(a), Const(b))) for a, b in pairs]


def check(rules: str, pairs, query: Query):
    program = parse_rules(rules)
    edb = edge_atoms(pairs)
    magic = evaluate_magic(program, query, edb=edb)
    full = evaluate(program, edb=edb)
    assert magic.answer_atoms() == full.answer_atoms(query)


@given(edges, st.integers(0, 8))
@settings(max_examples=40, deadline=None)
def test_right_linear_tc_bound_free(pairs, start):
    check(TC_RULES, pairs, Query(Atom("t", (Const(start), Var("Y")))))


@given(edges, st.integers(0, 8))
@settings(max_examples=40, deadline=None)
def test_left_linear_tc_bound_free(pairs, start):
    check(LEFT_TC_RULES, pairs, Query(Atom("t", (Const(start), Var("Y")))))


@given(edges, st.integers(0, 8))
@settings(max_examples=30, deadline=None)
def test_tc_free_bound(pairs, end):
    check(TC_RULES, pairs, Query(Atom("t", (Var("X"), Const(end)))))


@given(edges, st.integers(0, 8), st.integers(0, 8))
@settings(max_examples=30, deadline=None)
def test_tc_bound_bound(pairs, start, end):
    check(TC_RULES, pairs, Query(Atom("t", (Const(start), Const(end)))))


@given(edges)
@settings(max_examples=20, deadline=None)
def test_tc_free_free(pairs):
    check(TC_RULES, pairs, Query(Atom("t", (Var("X"), Var("Y")))))


@given(edges, st.integers(0, 8))
@settings(max_examples=25, deadline=None)
def test_negation_bound_free(pairs, start):
    check(
        NEG_RULES, pairs, Query(Atom("blocked_pair", (Const(start), Var("Y"))))
    )


@given(edges, st.integers(0, 8))
@settings(max_examples=25, deadline=None)
def test_grouping_bound_query(pairs, start):
    check(GROUP_RULES, pairs, Query(Atom("reachset", (Const(start), Var("S")))))


@given(edges)
@settings(max_examples=15, deadline=None)
def test_grouping_free_query(pairs):
    check(GROUP_RULES, pairs, Query(Atom("reachset", (Var("X"), Var("S")))))


# -- three-way equivalence: bottom-up, magic, top-down tabling ---------------


@given(edges, st.integers(0, 8))
@settings(max_examples=25, deadline=None)
def test_three_strategies_agree_tc(pairs, start):
    program = parse_rules(TC_RULES)
    edb = edge_atoms(pairs)
    query = Query(Atom("t", (Const(start), Var("Y"))))
    full = evaluate(program, edb=edb).answer_atoms(query)
    magic = evaluate_magic(program, query, edb=edb).answer_atoms()
    topdown, _ = evaluate_topdown(program, query, edb=edb)
    assert magic == full
    assert topdown == full


@given(edges, st.integers(0, 8))
@settings(max_examples=20, deadline=None)
def test_three_strategies_agree_grouping(pairs, start):
    program = parse_rules(GROUP_RULES)
    edb = edge_atoms(pairs)
    query = Query(Atom("reachset", (Const(start), Var("S"))))
    full = evaluate(program, edb=edb).answer_atoms(query)
    magic = evaluate_magic(program, query, edb=edb).answer_atoms()
    topdown, _ = evaluate_topdown(program, query, edb=edb)
    assert magic == full
    assert topdown == full


@given(edges, st.integers(0, 8))
@settings(max_examples=20, deadline=None)
def test_three_strategies_agree_negation(pairs, start):
    program = parse_rules(NEG_RULES)
    edb = edge_atoms(pairs)
    query = Query(Atom("blocked_pair", (Const(start), Var("Y"))))
    full = evaluate(program, edb=edb).answer_atoms(query)
    magic = evaluate_magic(program, query, edb=edb).answer_atoms()
    topdown, _ = evaluate_topdown(program, query, edb=edb)
    assert magic == full
    assert topdown == full


@given(edges, st.integers(0, 8))
@settings(max_examples=20, deadline=None)
def test_supplementary_rewrite_agrees(pairs, start):
    from repro.magic import supplementary_rewrite

    program = parse_rules(TC_RULES)
    edb = edge_atoms(pairs)
    query = Query(Atom("t", (Const(start), Var("Y"))))
    full = evaluate(program, edb=edb).answer_atoms(query)
    sup = evaluate_magic(
        program, query, edb=edb, rewrite=supplementary_rewrite
    ).answer_atoms()
    assert sup == full


@given(edges, st.integers(0, 8))
@settings(max_examples=20, deadline=None)
def test_bound_first_sip_agrees(pairs, start):
    from repro.magic import bound_first_sip, magic_rewrite

    program = parse_rules(LEFT_TC_RULES)
    edb = edge_atoms(pairs)
    query = Query(Atom("t", (Const(start), Var("Y"))))
    full = evaluate(program, edb=edb).answer_atoms(query)
    result = evaluate_magic(
        program,
        query,
        edb=edb,
        rewrite=lambda p, q: magic_rewrite(p, q, sip_strategy=bound_first_sip),
    ).answer_atoms()
    assert result == full
